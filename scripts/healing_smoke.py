#!/usr/bin/env python
"""Non-gating self-healing convergence smoke.

Runs the headline heal-without-restart scenario at reduced scale: a
node is fully isolated while the rest of the cluster commits, the
partition heals, and *background anti-entropy alone* (zero foreground
traffic) must converge the victim to the exact durable state of a
never-partitioned control run. Prints a JSON summary and exits non-zero
on divergence, so CI can surface a convergence regression without
gating merges on it.

Usage::

    PYTHONPATH=src python scripts/healing_smoke.py [--seeds 7,11] \
        [--nodes 4] [--periods 10]
"""

import argparse
import json
import sys

from repro import Cluster, ClusterConfig, HealingConfig, NetworkConfig, RpcConfig
from repro.cluster import ModuloDirectory
from repro.faults import Nemesis
from repro.faults.schedules import isolate_cycle
from repro.sim.rng import make_rng
from repro.storage.wal import store_fingerprint

NUM_KEYS = 16
VICTIM = 2
AE_INTERVAL = 4e-4
SETTLE = 1e-3
WINDOW = 20e-3


def build(seed, num_nodes):
    config = ClusterConfig(
        num_nodes=num_nodes,
        seed=seed,
        gc_enabled=False,
        network=NetworkConfig(
            jitter=5e-6,
            rpc=RpcConfig(request_timeout=1.5e-3, max_attempts=3),
        ),
        healing=HealingConfig(
            anti_entropy_interval=AE_INTERVAL, digest_timeout=5e-4
        ),
    )
    cluster = Cluster("fwkv", config, directory=ModuloDirectory(num_nodes))
    for i in range(NUM_KEYS):
        cluster.load(f"k{i}", 0)
    return cluster, Nemesis(cluster)


def drive(cluster, plan):
    outcomes = []

    def driver():
        for coordinator, keys in plan:
            node = cluster.node(coordinator)
            txn = node.begin(is_read_only=False)
            values = []
            for key in keys:
                values.append((yield from node.read(txn, key)))
            for key, value in zip(keys, values):
                node.write(txn, key, value + 1)
            outcomes.append((yield from node.commit(txn)))
            yield cluster.sim.timeout(SETTLE)

    cluster.spawn(driver(), name="smoke-driver")
    cluster.run(until=cluster.sim.now + len(plan) * (SETTLE + 1e-3) + 1e-3)
    return len(outcomes) == len(plan) and all(outcomes)


def fingerprint(node):
    return (
        store_fingerprint(node.store),
        node.site_vc.to_tuple(),
        node.curr_seq_no,
    )


def run_scenario(seed, num_nodes, periods, partition):
    cluster, nemesis = build(seed, num_nodes)
    rng = make_rng(seed, "healing-smoke")
    all_keys = [f"k{i}" for i in range(NUM_KEYS)]
    victim_keys = {
        key for key in all_keys if cluster.directory.site(key) == VICTIM
    }
    other_keys = sorted(set(all_keys) - victim_keys)
    others = [n for n in range(num_nodes) if n != VICTIM]

    plan_a = [(n % num_nodes, rng.sample(all_keys, 2)) for n in range(8)]
    if not drive(cluster, plan_a):
        return None, "phase A commit failed"

    cut_at = cluster.sim.now + 1e-4
    if partition:
        nemesis.start(isolate_cycle(VICTIM, range(num_nodes), cut_at, WINDOW))
    cluster.run(until=cut_at + 1e-5)

    plan_b = [
        (others[n % len(others)], rng.sample(other_keys, 2))
        for n in range(6)
    ]
    if not drive(cluster, plan_b):
        return None, "phase B commit failed"

    budget = periods * (AE_INTERVAL * 1.1 + 5e-4)
    cluster.run(until=cut_at + WINDOW + budget)
    result = fingerprint(cluster.nodes[VICTIM])
    metrics = cluster.metrics
    summary = {
        "anti_entropy_rounds": metrics.anti_entropy_rounds,
        "records_streamed": metrics.records_streamed,
        "catchup_advances": metrics.catchup_advances,
        "heal_reports": len(nemesis.heal_reports),
    }
    cluster.stop_healing()
    cluster.run()
    return (result, summary), None


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seeds", default="7,11")
    parser.add_argument("--nodes", type=int, default=4)
    parser.add_argument(
        "--periods", type=int, default=10,
        help="anti-entropy periods granted after the heal",
    )
    args = parser.parse_args()

    failures = 0
    for seed in (int(s) for s in args.seeds.split(",")):
        healed, err_h = run_scenario(seed, args.nodes, args.periods, True)
        control, err_c = run_scenario(seed, args.nodes, args.periods, False)
        if err_h or err_c:
            print(json.dumps({"seed": seed, "error": err_h or err_c}))
            failures += 1
            continue
        converged = healed[0] == control[0]
        report = {
            "seed": seed,
            "converged": converged,
            "periods": args.periods,
            **healed[1],
        }
        print(json.dumps(report))
        if not converged:
            failures += 1
    if failures:
        print(f"healing smoke: {failures} scenario(s) diverged", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
