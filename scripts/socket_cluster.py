#!/usr/bin/env python
"""Launch a multi-process loopback socket cluster and audit it.

Spawns one node-host process per node (``python -m repro.net.host``),
runs a seeded closed-loop PSI workload over real TCP connections
between them, merges every process's history and version catalog, and
runs the PSI checkers over the union.  Exit code 0 iff every child
exited cleanly, transactions committed, and the checkers found nothing.

Usage::

    PYTHONPATH=src python scripts/socket_cluster.py
    PYTHONPATH=src python scripts/socket_cluster.py \
        --nodes 4 --protocol walter --duration 2.0 --seed 3

See docs/networking.md for the transport and phase-protocol details.
"""

import argparse
import json
import sys

from repro import ClusterConfig, TransportConfig
from repro.net.host import launch_cluster


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="multi-process loopback socket cluster"
    )
    parser.add_argument("--nodes", type=int, default=3)
    parser.add_argument("--protocol", default="fwkv",
                        choices=("fwkv", "walter", "2pc"))
    parser.add_argument("--clients", type=int, default=2,
                        help="clients per node")
    parser.add_argument("--keys", type=int, default=48)
    parser.add_argument("--duration", type=float, default=1.0,
                        help="measured run, virtual seconds")
    parser.add_argument("--grace", type=float, default=0.5,
                        help="post-run drain, virtual seconds")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--time-scale", type=float, default=1.0,
                        help="virtual seconds per wall second")
    parser.add_argument("--base-port", type=int, default=0,
                        help="node i listens on base+i (0 = ephemeral)")
    args = parser.parse_args(argv)

    config = ClusterConfig(
        num_nodes=args.nodes,
        seed=args.seed,
        clients_per_node=args.clients,
        transport=TransportConfig(
            kind="socket",
            time_scale=args.time_scale,
            base_port=args.base_port,
        ),
    )
    try:
        summary = launch_cluster(
            args.protocol,
            config,
            num_keys=args.keys,
            duration=args.duration,
            grace=args.grace,
        )
    except (RuntimeError, AssertionError) as exc:
        print(json.dumps({"ok": False, "error": str(exc)}))
        return 1
    summary["ok"] = True
    print(json.dumps(summary, indent=2, sort_keys=True))
    return 0


if __name__ == "__main__":
    sys.exit(main())
