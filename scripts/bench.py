#!/usr/bin/env python
"""Wall-clock benchmark driver: the repo's perf trajectory, one JSON entry
per run.

Runs a mid-scale Figure-5 YCSB configuration (the same shape the benchmark
suite regenerates) and records *wall-clock* efficiency numbers -- committed
transactions per wall-second, simulator events per wall-second, and peak
heap -- as one labelled entry appended to a ``BENCH_<name>.json`` file.
Committing the file after each significant perf change builds the repo's
perf trajectory: the first entry is the pre-optimization baseline, later
entries show what each change bought.

Usage::

    PYTHONPATH=src python scripts/bench.py --label pre_opt
    PYTHONPATH=src python scripts/bench.py --label post_opt
    PYTHONPATH=src python scripts/bench.py --scale smoke --no-heap

The default output file is ``benchmarks/results/BENCH_fig5_midscale.json``
(``BENCH_fig5_smoke.json`` for ``--scale smoke``).  The driver prints a
comparison of every recorded entry against the first (baseline) entry.

Methodology notes:

* the timed run executes without any profiler or tracer attached;
* peak heap is measured by ``tracemalloc`` on a *separate* identical run
  (tracemalloc roughly doubles wall time, which would contaminate the
  throughput numbers if measured together); disable with ``--no-heap``;
* virtual-clock results (commits, throughput) are deterministic per seed,
  so only the wall-clock figures vary between machines and runs.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.config import (  # noqa: E402
    BatchingConfig,
    ClusterConfig,
    DurabilityConfig,
    ReplicationConfig,
    RunConfig,
    ShardingConfig,
    TransportConfig,
)
from repro.harness.runner import run_experiment  # noqa: E402
from repro.workloads.ycsb import YCSBConfig, YCSBWorkload  # noqa: E402

#: The benchmarked configurations.  ``mid`` is the mid-scale Figure-5 point
#: (10 nodes, 100k keys, 50% read-only -- the middle of the paper's grid);
#: ``smoke`` is a CI-sized reduction of the same shape.
SCALES = {
    "mid": dict(
        num_nodes=10,
        clients_per_node=5,
        num_keys=100_000,
        read_only_fraction=0.5,
        duration=0.03,
        warmup=0.01,
        seed=7,
    ),
    "smoke": dict(
        num_nodes=6,
        clients_per_node=4,
        num_keys=10_000,
        read_only_fraction=0.5,
        duration=0.01,
        warmup=0.003,
        seed=7,
    ),
}


def build_and_run(params: dict, protocol: str, batching: BatchingConfig,
                  durability: DurabilityConfig,
                  sharding: ShardingConfig = None,
                  distribution: str = "uniform", zipf_s: float = 1.1,
                  replication: ReplicationConfig = None,
                  transport: TransportConfig = None):
    workload = YCSBWorkload(
        YCSBConfig(
            num_keys=params["num_keys"],
            read_only_fraction=params["read_only_fraction"],
            distribution=distribution,
            zipf_s=zipf_s,
        )
    )
    cluster_config = ClusterConfig(
        num_nodes=params["num_nodes"],
        clients_per_node=params["clients_per_node"],
        seed=params["seed"],
        batching=batching or BatchingConfig(),
        durability=durability or DurabilityConfig(),
        sharding=sharding or ShardingConfig(),
        replication=replication or ReplicationConfig(),
        transport=transport or TransportConfig(),
    )
    run_config = RunConfig(
        duration=params["duration"], warmup=params["warmup"]
    )
    return run_experiment(protocol, workload, cluster_config, run_config)


def measure(params: dict, protocol: str, batching: BatchingConfig,
            durability: DurabilityConfig, with_heap: bool,
            sharding: ShardingConfig = None,
            distribution: str = "uniform", zipf_s: float = 1.1,
            replication: ReplicationConfig = None,
            transport: TransportConfig = None) -> dict:
    """One timed run (plus an optional tracemalloc run for peak heap)."""
    started = time.perf_counter()
    result = build_and_run(params, protocol, batching, durability,
                           sharding, distribution, zipf_s, replication,
                           transport)
    wall = time.perf_counter() - started
    result.cluster.close()

    sim = result.cluster.sim
    commits = result.metrics["commits"]
    entry = {
        "wall_seconds_total": wall,
        "wall_seconds_run": result.wall_seconds,
        "virtual_seconds": sim.now,
        "committed_txns": commits,
        "committed_per_wall_second": commits / wall if wall > 0 else 0.0,
        "events_executed": sim.executed_count,
        "events_per_second": sim.executed_count / wall if wall > 0 else 0.0,
        "throughput_ktps_virtual": result.throughput_ktps,
        "abort_rate": result.abort_rate,
        "wal_syncs": result.metrics.get("wal_syncs", 0),
        "wal_records_synced": result.metrics.get("wal_records_synced", 0),
        "shard_migrations": result.metrics.get("shard_migrations", 0),
        "shard_migration_keys": result.metrics.get("shard_migration_keys", 0),
        "replication_records_streamed": result.metrics.get(
            "replication_records_streamed", 0
        ),
        "backup_reads_served": result.metrics.get("backup_reads_served", 0),
        "backup_reads_forwarded": result.metrics.get(
            "backup_reads_forwarded", 0
        ),
    }

    if with_heap:
        import tracemalloc

        tracemalloc.start()
        build_and_run(params, protocol, batching, durability,
                      sharding, distribution, zipf_s, replication,
                      transport).cluster.close()
        _current, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        entry["peak_heap_bytes"] = peak
    return entry


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--label", default="run",
                        help="name of this perf point (e.g. pre_opt)")
    parser.add_argument("--scale", choices=sorted(SCALES), default="mid")
    parser.add_argument("--protocol", default="fwkv")
    parser.add_argument("--seed", type=int, default=None,
                        help="override the scale's default seed")
    parser.add_argument("--propagate-window", type=float, default=0.0,
                        help="BatchingConfig.propagate_window (0 = off)")
    parser.add_argument("--batching", choices=("off", "fixed", "adaptive"),
                        default=None,
                        help="batching regime: off, fixed (uses "
                             "--propagate-window), or adaptive (AIMD "
                             "per-destination windows)")
    parser.add_argument("--fsync-latency", type=float, default=0.0,
                        help="DurabilityConfig.fsync_latency in virtual "
                             "seconds per sync (0 = free syncs, WAL "
                             "unbuffered; >0 implies wal_enabled)")
    parser.add_argument("--group-commit-window", type=float, default=0.0,
                        help="DurabilityConfig.group_commit_window (0 = "
                             "per-record syncs when --fsync-latency > 0)")
    parser.add_argument("--distribution",
                        choices=("uniform", "zipfian", "zipf"),
                        default="uniform",
                        help="YCSB key distribution (zipf = rank-ordered "
                             "heavy tail, see --zipf-s)")
    parser.add_argument("--zipf-s", type=float, default=1.1,
                        help="Zipf exponent for --distribution zipf")
    parser.add_argument("--sharding", choices=("off", "on"), default="off",
                        help="on = ShardMap directory with the live "
                             "rebalancer migrating hot shards during the "
                             "run (see --rebalance-interval)")
    parser.add_argument("--num-shards", type=int, default=64,
                        help="ShardingConfig.num_shards when --sharding on")
    parser.add_argument("--rebalance-interval", type=float, default=2e-3,
                        help="rebalance loop period in virtual seconds "
                             "when --sharding on")
    parser.add_argument("--replication", choices=("off", "on"),
                        default="off",
                        help="on = per-shard primary-backup replication "
                             "(forces --sharding semantics: a ShardMap "
                             "directory with the rebalance loop off)")
    parser.add_argument("--replication-factor", type=int, default=2,
                        help="copies per shard when --replication on")
    parser.add_argument("--replication-mode", choices=("sync", "async"),
                        default="sync",
                        help="ReplicationConfig.mode when --replication on")
    parser.add_argument("--read-from-backups", choices=("off", "on"),
                        default="off",
                        help="spread read-only reads over the replica set "
                             "(requires --replication on)")
    parser.add_argument("--transport", choices=("sim", "socket"),
                        default="sim",
                        help="message fabric: sim (deterministic virtual "
                             "clock) or socket (real loopback TCP; wall "
                             "RTTs bound throughput, so pair it with a "
                             "wall-sized --duration)")
    parser.add_argument("--duration", type=float, default=None,
                        help="override the scale's measured virtual "
                             "seconds (socket runs map these 1:1 onto "
                             "the wall clock)")
    parser.add_argument("--warmup", type=float, default=None,
                        help="override the scale's warmup virtual seconds")
    parser.add_argument("--no-heap", action="store_true",
                        help="skip the tracemalloc peak-heap run")
    parser.add_argument("--out", default=None,
                        help="JSON file to append the entry to")
    args = parser.parse_args(argv)

    params = dict(SCALES[args.scale])
    if args.seed is not None:
        params["seed"] = args.seed
    if args.duration is not None:
        params["duration"] = args.duration
    if args.warmup is not None:
        params["warmup"] = args.warmup
    transport = TransportConfig(kind=args.transport)
    if args.batching == "off":
        batching = BatchingConfig()
    elif args.batching == "adaptive":
        batching = BatchingConfig(
            adaptive=True, propagate_window=args.propagate_window
        )
    else:
        # "fixed" or legacy default: the window flag alone decides.
        batching = BatchingConfig(propagate_window=args.propagate_window)
    durability = DurabilityConfig(
        wal_enabled=args.fsync_latency > 0,
        fsync_latency=args.fsync_latency,
        group_commit_window=args.group_commit_window,
    )
    sharding = (
        ShardingConfig(
            enabled=True,
            num_shards=args.num_shards,
            rebalance_interval=args.rebalance_interval,
        )
        if args.sharding == "on"
        else ShardingConfig()
    )
    if args.read_from_backups == "on" and args.replication == "off":
        parser.error("--read-from-backups requires --replication on")
    if args.replication == "on":
        if not sharding.enabled:
            # Replication rides the ShardMap directory; keep the
            # rebalance loop off so the measured overhead is the
            # streams, not shard migrations.
            sharding = ShardingConfig(
                enabled=True, num_shards=args.num_shards
            )
        replication = ReplicationConfig(
            enabled=True,
            replication_factor=args.replication_factor,
            mode=args.replication_mode,
            read_from_backups=args.read_from_backups == "on",
        )
    else:
        replication = ReplicationConfig()

    out = args.out or os.path.join(
        os.path.dirname(os.path.abspath(__file__)), "..", "benchmarks",
        "results",
        # Socket rows are wall-bound, not comparable to sim baselines:
        # they live in their own trajectory file.
        f"BENCH_transport_{args.scale}.json" if args.transport == "socket"
        else "BENCH_fig5_midscale.json" if args.scale == "mid"
        else f"BENCH_fig5_{args.scale}.json",
    )
    out = os.path.normpath(out)

    entry = measure(params, args.protocol, batching, durability,
                    with_heap=not args.no_heap, sharding=sharding,
                    distribution=args.distribution, zipf_s=args.zipf_s,
                    replication=replication, transport=transport)
    entry.update(
        label=args.label,
        protocol=args.protocol,
        transport=args.transport,
        python=platform.python_version(),
        platform=platform.platform(),
        propagate_window=args.propagate_window,
        batching=args.batching or ("fixed" if args.propagate_window else "off"),
        fsync_latency=args.fsync_latency,
        group_commit_window=args.group_commit_window,
        distribution=args.distribution,
        zipf_s=args.zipf_s if args.distribution == "zipf" else None,
        sharding=args.sharding,
        replication=args.replication,
        replication_factor=(
            args.replication_factor if args.replication == "on" else None
        ),
        read_from_backups=args.read_from_backups,
    )

    if os.path.exists(out):
        with open(out, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    else:
        doc = {"benchmark": f"fig5_ycsb_{args.scale}", "config": params,
               "entries": []}
    doc["entries"].append(entry)
    os.makedirs(os.path.dirname(out), exist_ok=True)
    with open(out, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2)
        fh.write("\n")

    print(f"recorded {args.label!r} -> {out}")
    base = doc["entries"][0]
    header = (
        f"{'label':<16} {'txns/wall-s':>12} {'events/s':>12} "
        f"{'wall s':>8} {'peak heap MB':>13} {'speedup':>8}"
    )
    print(header)
    print("-" * len(header))
    for row in doc["entries"]:
        speedup = (
            row["committed_per_wall_second"] / base["committed_per_wall_second"]
            if base["committed_per_wall_second"] else float("nan")
        )
        heap = row.get("peak_heap_bytes")
        heap_mb = f"{heap / 1e6:.1f}" if heap is not None else "-"
        print(
            f"{row['label']:<16} {row['committed_per_wall_second']:>12.0f} "
            f"{row['events_per_second']:>12.0f} "
            f"{row['wall_seconds_total']:>8.2f} {heap_mb:>13} "
            f"{speedup:>7.2f}x"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
