"""Node runtime: message dispatch and handler registration."""

from __future__ import annotations

import inspect
from typing import Callable, Dict, Optional

from repro.net.message import Envelope, MessageType
from repro.net.transport import Transport
from repro.sim import Simulator

Handler = Callable[[Envelope], object]


class Node:
    """One simulated machine.

    A node owns an RPC endpoint and a table of message handlers.  A handler
    may be a plain function (runs atomically at delivery time) or a
    generator function (spawned as a process, so it can wait on locks,
    timeouts, and condition variables mid-message).  Handlers for distinct
    messages interleave only at yield points, which models one mutual-
    exclusion domain per node with explicit fine-grained locks where the
    protocol requires them.
    """

    def __init__(self, sim: Simulator, node_id: int, network: Transport) -> None:
        self.sim = sim
        self.node_id = node_id
        self.network = network
        self.rpc = network.endpoint(node_id)
        # msg_type -> (handler, spawn_as_process, process_name); the
        # generator check is done once at registration, not per delivery.
        self._handlers: Dict[str, tuple] = {}
        #: Optional liveness tap: called with the source node id of every
        #: delivered envelope.  The failure detector installs itself here
        #: when armed; the default ``None`` keeps delivery on the fast
        #: path.
        self.arrival_hook: Optional[Callable[[int], None]] = None
        network.register(node_id, self.deliver)
        self.on(MessageType.RPC_REPLY, self.rpc.handle_reply)

    def on(self, msg_type: str, handler: Handler) -> None:
        """Register the handler for a message type (one per type)."""
        if msg_type in self._handlers:
            raise ValueError(f"handler for {msg_type!r} already registered")
        # Handler-process names are per (node, type), so build them once at
        # registration instead of formatting one per delivery.
        self._handlers[msg_type] = (
            handler,
            inspect.isgeneratorfunction(handler),
            f"n{self.node_id}:{msg_type}",
        )

    def deliver(self, envelope: Envelope) -> None:
        """Network delivery entry point."""
        if self.arrival_hook is not None:
            self.arrival_hook(envelope.src)
        entry = self._handlers.get(envelope.msg_type)
        if entry is None:
            raise KeyError(
                f"node {self.node_id} has no handler for {envelope.msg_type!r}"
            )
        handler, spawn, name = entry
        if spawn:
            self.sim.spawn(handler(envelope), name=name)
        else:
            handler(envelope)

    def send(self, dst: int, msg_type: str, payload) -> None:
        """Fire-and-forget message (used for Decide/Propagate/Remove)."""
        self.network.send(self.node_id, dst, msg_type, payload)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Node {self.node_id}>"
