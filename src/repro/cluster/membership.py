"""Elastic membership: epoch-numbered views and per-node view state.

The cluster's membership is an explicitly versioned *view*: the set of
member sites, each in one lifecycle state, plus the final commit
frontiers of decommissioned sites.  Views change through a two-phase,
epoch-gated protocol driven by the :class:`~repro.system.Cluster`
reconfiguration drivers:

``VIEW_PROPOSE``
    The view coordinator sends the complete proposed view (never a
    delta) to every member of the *new* view.  A member accepts iff the
    proposal's epoch is newer than its committed epoch -- and, for a
    clock-shrinking view, iff the shrink is locally safe -- then logs
    the pending view to its WAL and answers with a ``VIEW_ACK``.

``VIEW_COMMIT``
    Once every live member acked, the coordinator fans out the commit
    (one-way, idempotent).  Applying a commit widens or shrinks the
    node's ``siteVC`` to the view's clock width, lifts any handoff
    fences, resets the failure detector's memory of removed peers, and
    logs a committed :class:`~repro.storage.wal.ViewChangeRecord` so
    crash recovery restores the view.  Stale or duplicate commits are
    ignored, which lets the anti-entropy layer re-send the current view
    every gossip round for free.

Member lifecycle::

    JOINING ---> ACTIVE ---> DRAINING ---> (removed: absent + retired)

A ``JOINING`` member receives commit propagation (it is in the fan-out
set) but owns no keys yet; a ``DRAINING`` member still owns and serves
its keys while its shards stream out.  A removed member disappears from
the view; its ``retired`` entry pins the clock width until every
survivor's ``siteVC`` dominates its final frontier, after which a
follow-up view drops the entry and every node shrinks its clock in
place (see ``docs/membership.md``).
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Set, Tuple

from repro.core.wire import ViewAckBody, ViewCommitBody, ViewProposeBody
from repro.net.message import MessageType
from repro.sim import ConditionVariable
from repro.storage.wal import ViewChangeRecord

#: Member lifecycle states carried in a view.
JOINING = "joining"
ACTIVE = "active"
DRAINING = "draining"

#: States that own key ranges (consistent-hash ring membership).
_RING_STATES = frozenset({ACTIVE, DRAINING})
#: States included in commit propagation / gossip fan-out.
_FANOUT_STATES = frozenset({ACTIVE, DRAINING, JOINING})


class MembershipView:
    """An immutable epoch-numbered membership view."""

    __slots__ = ("epoch", "members", "retired", "_ring", "_fanout")

    def __init__(
        self,
        epoch: int,
        members: Dict[int, str],
        retired: Dict[int, int],
    ) -> None:
        self.epoch = epoch
        self.members: Dict[int, str] = dict(members)
        self.retired: Dict[int, int] = dict(retired)
        self._ring: Tuple[int, ...] = tuple(
            sorted(m for m, s in self.members.items() if s in _RING_STATES)
        )
        self._fanout: Tuple[int, ...] = tuple(
            sorted(m for m, s in self.members.items() if s in _FANOUT_STATES)
        )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def initial(cls, node_ids: Iterable[int]) -> "MembershipView":
        """Epoch zero: the static seed membership, everyone active."""
        return cls(0, {node_id: ACTIVE for node_id in node_ids}, {})

    @classmethod
    def from_wire(
        cls,
        epoch: int,
        members: Tuple[Tuple[int, str], ...],
        retired: Tuple[Tuple[int, int], ...],
    ) -> "MembershipView":
        return cls(epoch, dict(members), dict(retired))

    # ------------------------------------------------------------------
    # Derived sets
    # ------------------------------------------------------------------
    @property
    def ring_ids(self) -> Tuple[int, ...]:
        """Sites that own key ranges (directory placement domain)."""
        return self._ring

    @property
    def fanout_ids(self) -> Tuple[int, ...]:
        """Sites included in Propagate/gossip fan-out (ring + joining)."""
        return self._fanout

    @property
    def clock_width(self) -> int:
        """Vector-clock width this view requires.

        Retired sites hold the width until their final frontier is
        dominated everywhere and a follow-up view drops the entry.
        """
        ids = set(self.members) | set(self.retired)
        return (max(ids) + 1) if ids else 0

    def state_of(self, node_id: int) -> Optional[str]:
        return self.members.get(node_id)

    # ------------------------------------------------------------------
    # Wire / WAL encoding
    # ------------------------------------------------------------------
    def members_wire(self) -> Tuple[Tuple[int, str], ...]:
        return tuple(sorted(self.members.items()))

    def retired_wire(self) -> Tuple[Tuple[int, int], ...]:
        return tuple(sorted(self.retired.items()))

    def to_triple(self) -> Tuple[int, Tuple, Tuple]:
        """``(epoch, members, retired)`` -- the WAL/checkpoint encoding."""
        return (self.epoch, self.members_wire(), self.retired_wire())

    @classmethod
    def from_triple(cls, triple: Tuple[int, Tuple, Tuple]) -> "MembershipView":
        epoch, members, retired = triple
        return cls.from_wire(epoch, members, retired)

    # ------------------------------------------------------------------
    # Derivation (drivers build target views from the committed one)
    # ------------------------------------------------------------------
    def with_epoch(self, epoch: int) -> "MembershipView":
        return MembershipView(epoch, self.members, self.retired)

    def with_member(self, node_id: int, state: str) -> "MembershipView":
        members = dict(self.members)
        members[node_id] = state
        return MembershipView(self.epoch + 1, members, self.retired)

    def without_member(
        self, node_id: int, final_seq: Optional[int] = None
    ) -> "MembershipView":
        """Drop ``node_id``; record its final frontier when given.

        ``final_seq=None`` is the abandoned-join form: the site never
        committed anything, so no retired entry is needed and the clock
        width may shrink immediately.
        """
        members = dict(self.members)
        members.pop(node_id, None)
        retired = dict(self.retired)
        if final_seq is not None:
            retired[node_id] = final_seq
        return MembershipView(self.epoch + 1, members, retired)

    def without_retired(self, node_id: int) -> "MembershipView":
        retired = dict(self.retired)
        retired.pop(node_id, None)
        return MembershipView(self.epoch + 1, self.members, retired)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        states = ",".join(f"{m}:{s[0]}" for m, s in sorted(self.members.items()))
        return f"<View e{self.epoch} [{states}] retired={self.retired}>"


class NodeMembership:
    """One node's membership state machine and handoff fences.

    Owns the node-local side of the view-change protocol (propose/ack/
    commit handlers), the committed and pending views, and the *moving*
    fences that stall prepares on keys whose shard is mid-handoff.
    """

    def __init__(self, owner) -> None:
        self.owner = owner
        self.sim = owner.sim
        self.node_id = owner.node_id
        self.view = MembershipView.initial(owner.shared.config.node_ids)
        #: A proposed-but-uncommitted view this node acked (WAL-logged so
        #: recovery resumes the change instead of forgetting it).
        self.pending: Optional[MembershipView] = None
        #: Proposer-side ack collection: epoch -> member ids that acked ok.
        self.acks: Dict[int, Set[int]] = {}
        #: Notified on every commit apply and fence lift.
        self.changed = ConditionVariable(self.sim)
        #: Keys fenced for an outbound shard handoff: new prepares on them
        #: park until the fence lifts (at view commit), then re-check
        #: ownership and vote "moved" if the directory flipped.
        self.moving: Set = set()
        #: Drain fence: every local key is moving (decommission).
        self.moving_all = False
        #: Origins whose clock entry this node truncated at a shrink
        #: commit.  A straggling Propagate/Decide from one of them must
        #: be dropped (its full frontier was provably applied before the
        #: shrink), never re-widen the clock; a rejoin of the same id
        #: clears the entry.
        self.dropped: Set[int] = set()

    # ------------------------------------------------------------------
    # Fences
    # ------------------------------------------------------------------
    def fence(self, keys: Iterable) -> None:
        self.moving.update(keys)

    def fence_all(self) -> None:
        self.moving_all = True

    def is_fenced(self, keys: Iterable) -> bool:
        if self.moving_all:
            return True
        if not self.moving:
            return False
        return any(key in self.moving for key in keys)

    def unfence(self, keys: Iterable) -> None:
        """Lift the fence on exactly ``keys`` (shard-migration cutover).

        Unlike :meth:`lift_fences` -- the view-commit sledgehammer that
        clears every fence -- this is scoped: a rebalancer migrating one
        shard releases only that shard's keys, leaving any concurrent
        drain or migration fence intact.  Parked prepares wake, re-check
        ownership against the (possibly flipped) directory, and either
        proceed locally or vote "moved".
        """
        if not self.moving:
            return
        before = len(self.moving)
        self.moving.difference_update(keys)
        if len(self.moving) != before:
            self.changed.notify_all()

    def lift_fences(self) -> None:
        if self.moving or self.moving_all:
            self.moving.clear()
            self.moving_all = False
            self.changed.notify_all()

    # ------------------------------------------------------------------
    # Protocol: proposer side
    # ------------------------------------------------------------------
    def propose(self, view: MembershipView) -> None:
        """Accept ``view`` locally and fan the proposal out (one-way)."""
        self._accept(view)
        self.acks.setdefault(view.epoch, set()).add(self.node_id)
        body = ViewProposeBody(
            epoch=view.epoch,
            members=view.members_wire(),
            retired=view.retired_wire(),
            proposer=self.node_id,
        )
        for member in view.fanout_ids:
            if member != self.node_id:
                self.owner.node.send(member, MessageType.VIEW_PROPOSE, body)
        if self.owner.tracer._enabled:
            self.owner.tracer.emit(
                self.node_id, "view_propose", epoch=view.epoch,
                members=view.members_wire(),
            )

    def commit(self, view: MembershipView) -> None:
        """Fan out the commit (one-way, idempotent) and apply it locally."""
        body = ViewCommitBody(
            epoch=view.epoch,
            members=view.members_wire(),
            retired=view.retired_wire(),
        )
        for member in view.fanout_ids:
            if member != self.node_id:
                self.owner.node.send(member, MessageType.VIEW_COMMIT, body)
        self.apply_commit(view)

    def send_commit_to(self, peer: int) -> None:
        """Re-send the committed view to one peer (gossip piggyback)."""
        view = self.view
        body = ViewCommitBody(
            epoch=view.epoch,
            members=view.members_wire(),
            retired=view.retired_wire(),
        )
        self.owner.node.send(peer, MessageType.VIEW_COMMIT, body)

    # ------------------------------------------------------------------
    # Protocol: handlers (registered by the owning protocol node)
    # ------------------------------------------------------------------
    def on_view_propose(self, envelope) -> None:
        body = envelope.payload
        view = MembershipView.from_wire(body.epoch, body.members, body.retired)
        ok = body.epoch > self.view.epoch and self._shrink_acceptable(view)
        if ok:
            self._accept(view)
        ack = ViewAckBody(
            epoch=body.epoch,
            member=self.node_id,
            ok=ok,
            current_epoch=self.view.epoch,
        )
        self.owner.node.send(body.proposer, MessageType.VIEW_ACK, ack)

    def on_view_ack(self, envelope) -> None:
        body = envelope.payload
        if body.ok:
            self.acks.setdefault(body.epoch, set()).add(body.member)

    def on_view_commit(self, envelope) -> None:
        body = envelope.payload
        view = MembershipView.from_wire(body.epoch, body.members, body.retired)
        self.apply_commit(view)

    # ------------------------------------------------------------------
    # State transitions
    # ------------------------------------------------------------------
    def _accept(self, view: MembershipView) -> None:
        """Record ``view`` as pending and log it (crash-safe ack)."""
        self.pending = view
        wal = self.owner.wal
        if wal is not None:
            wal.append(
                ViewChangeRecord(
                    epoch=view.epoch,
                    members=view.members_wire(),
                    retired=view.retired_wire(),
                    committed=False,
                )
            )

    def apply_commit(self, view: MembershipView) -> bool:
        """Apply a committed view; stale/duplicate epochs are no-ops."""
        if view.epoch <= self.view.epoch:
            return False
        owner = self.owner
        width = view.clock_width
        clock = owner.site_vc
        if width > len(clock):
            clock.widen(width)
        elif width < len(clock) and self._shrink_safe(width, view):
            self.dropped.update(range(width, len(clock)))
            clock.shrink(width)
        self.dropped.difference_update(view.members)
        # Snapshot-completeness waits parked on a retired origin's entry
        # re-evaluate against the new width and ``dropped`` set.
        owner.site_vc_changed.notify_all()
        previous = self.view
        self.view = view
        if self.pending is not None and self.pending.epoch <= view.epoch:
            self.pending = None
        for epoch in [e for e in self.acks if e <= view.epoch]:
            del self.acks[epoch]
        wal = owner.wal
        if wal is not None:
            wal.append(
                ViewChangeRecord(
                    epoch=view.epoch,
                    members=view.members_wire(),
                    retired=view.retired_wire(),
                    committed=True,
                )
            )
        # Entering DRAINING raises the drain fence on every local key;
        # any other transition for this node lifts handoff fences (the
        # directory flipped before the commit was fanned out).
        if view.state_of(self.node_id) == DRAINING:
            self.fence_all()
        else:
            self.lift_fences()
        # Forget removed peers: the failure detector must not carry a
        # dead site's suspicion (or a rejoining site's stale history)
        # into the new view.
        healing = getattr(owner, "healing", None)
        if healing is not None and healing.detector is not None:
            for peer in previous.members:
                if peer != self.node_id and view.state_of(peer) is None:
                    healing.detector.forget(peer)
        owner.metrics.on_view_committed()
        if owner.tracer._enabled:
            owner.tracer.emit(
                self.node_id, "view_commit", epoch=view.epoch,
                members=view.members_wire(), retired=view.retired_wire(),
            )
        self.changed.notify_all()
        return True

    # ------------------------------------------------------------------
    # Clock-shrink safety
    # ------------------------------------------------------------------
    def _shrink_safe(self, width: int, new_view: MembershipView) -> bool:
        """May this node truncate its clock to ``width`` entries?

        Every dropped trailing position must be a retired site whose
        final frontier this node has applied (nothing above the frontier
        can ever arrive), or a site that never committed anything (the
        abandoned-join case: its entry is still zero).
        """
        clock = self.owner.site_vc
        old = self.view
        for site in range(width, len(clock)):
            final = old.retired.get(site)
            if final is None:
                final = new_view.retired.get(site)
            if final is None:
                if clock[site] != 0:
                    return False
            elif clock[site] < final:
                return False
        return True

    def _shrink_acceptable(self, view: MembershipView) -> bool:
        """Ack-time gate: reject a shrinking proposal we cannot honor yet.

        The commit path skips an unsafe shrink anyway (staying wide is
        always sound), but rejecting at ack time lets the coordinator
        retry later instead of committing a view some members cannot
        fully apply.
        """
        width = view.clock_width
        if width >= len(self.owner.site_vc):
            return True
        return self._shrink_safe(width, view)

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def restore(
        self,
        view_triple: Optional[Tuple[int, Tuple, Tuple]],
        pending_triple: Optional[Tuple[int, Tuple, Tuple]],
    ) -> None:
        """Reinstall replayed view state after a crash (no re-logging).

        The shared directory is live cluster state -- the survivors kept
        mutating it while this node was down -- so recovery only restores
        the node's *view knowledge*; gossip's commit piggyback delivers
        any epochs committed during the outage.
        """
        if view_triple is not None:
            view = MembershipView.from_triple(view_triple)
            if view.epoch > self.view.epoch:
                self.view = view
                width = view.clock_width
                if width > len(self.owner.site_vc):
                    self.owner.site_vc.widen(width)
        if pending_triple is not None:
            pending = MembershipView.from_triple(pending_triple)
            if pending.epoch > self.view.epoch:
                self.pending = pending
