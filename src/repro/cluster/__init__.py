"""Cluster substrate: node runtime and key-to-preferred-site directories."""

from repro.cluster.directory import (
    CallableDirectory,
    ConsistentHashDirectory,
    Directory,
    ExplicitDirectory,
    ModuloDirectory,
)
from repro.cluster.node import Node

__all__ = [
    "CallableDirectory",
    "ConsistentHashDirectory",
    "Directory",
    "ExplicitDirectory",
    "ModuloDirectory",
    "Node",
]
