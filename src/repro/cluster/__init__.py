"""Cluster substrate: node runtime and key-to-preferred-site directories."""

from repro.cluster.directory import (
    CallableDirectory,
    ConsistentHashDirectory,
    Directory,
    ExplicitDirectory,
    ModuloDirectory,
    ShardMap,
)
from repro.cluster.membership import (
    ACTIVE,
    DRAINING,
    JOINING,
    MembershipView,
    NodeMembership,
)
from repro.cluster.node import Node
from repro.cluster.rebalancer import Rebalancer, plan_moves

__all__ = [
    "ACTIVE",
    "CallableDirectory",
    "ConsistentHashDirectory",
    "DRAINING",
    "Directory",
    "ExplicitDirectory",
    "JOINING",
    "MembershipView",
    "ModuloDirectory",
    "NodeMembership",
    "Node",
    "Rebalancer",
    "ShardMap",
    "plan_moves",
]
