"""Online shard rebalancing: fence, drain, stream, flip.

A :class:`Rebalancer` moves one shard at a time between live nodes while
foreground PSI traffic keeps committing.  A migration reuses the exact
machinery the membership drivers built (docs/membership.md):

1. **Fence** the shard's keys at the donor (``NodeMembership.fence``):
   new prepares touching them park before taking locks.
2. **Drain** the keys' write locks (``Cluster._drain_write_locks``):
   prepares that already held locks finish through their Decide.
3. **Stream** the shard's version chains to the recipient over the
   PR-5 SNAPSHOT_OFFER/CHUNK/ACK protocol (``NodeHealing.ship_shard``)
   with fingerprint verification at the receiver.
4. **Flip** the single :class:`~repro.cluster.directory.ShardMap` owner
   entry atomically (one epoch bump), then **unfence** -- scoped, so a
   concurrent drain's fence stays up.  Parked prepares wake, re-check
   ownership, and vote "moved"; the coordinator regroups against the
   flipped map and re-prepares at the new owner.  Nothing aborts.

A failed transfer (crashed donor or recipient, partition, drain
timeout) unfences *without* flipping: ownership is unchanged, the
receiver installed nothing (installs are all-or-nothing at the final
chunk), and the parked prepares proceed locally -- so the failure is
invisible to foreground traffic and the migration can simply be
retried.

Which shard to move comes from :func:`plan_moves`, a pure greedy
planner over the per-shard access counters in
:class:`~repro.metrics.stats.MetricsRecorder` -- shared by the live
``rebalance_once`` path and the skew regression tests so the tests gate
the planner the cluster actually runs.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence, Tuple

from repro.cluster.directory import ShardMap


def plan_moves(
    loads: Mapping[int, int],
    owners: Sequence[int],
    node_ids: Sequence[int],
    *,
    threshold: float = 1.25,
    max_moves: int = 1,
) -> List[Tuple[int, int]]:
    """Greedy shard moves flattening per-node load: ``[(shard, dest)]``.

    While some node's tracked load exceeds ``threshold`` times the mean,
    move its hottest shard to the least-loaded node -- but only when the
    move strictly lowers the pair's maximum, so the plan can never
    oscillate.  Ties break toward lower node/shard ids, keeping the plan
    a pure deterministic function of its inputs.
    """
    if max_moves <= 0 or not node_ids:
        return []
    owners = list(owners)
    node_load: Dict[int, int] = {n: 0 for n in node_ids}
    for shard, owner in enumerate(owners):
        if owner in node_load:
            node_load[owner] += loads.get(shard, 0)
    total = sum(node_load.values())
    if total <= 0:
        return []
    mean = total / len(node_ids)
    moves: List[Tuple[int, int]] = []
    while len(moves) < max_moves:
        src = max(node_ids, key=lambda n: (node_load[n], -n))
        dst = min(node_ids, key=lambda n: (node_load[n], n))
        if src == dst or node_load[src] <= threshold * mean:
            break
        candidates = sorted(
            (
                shard
                for shard, owner in enumerate(owners)
                if owner == src and loads.get(shard, 0) > 0
            ),
            key=lambda shard: (-loads.get(shard, 0), shard),
        )
        best = None
        for shard in candidates:
            if node_load[dst] + loads[shard] < node_load[src]:
                best = shard
                break
        if best is None:
            break  # src's load is one indivisible hot shard; moving it
            # would just relocate the hotspot
        weight = loads[best]
        owners[best] = dst
        node_load[src] -= weight
        node_load[dst] += weight
        moves.append((best, dst))
    return moves


class Rebalancer:
    """Drives live shard migrations for a :class:`ShardMap` cluster.

    Constructed by :class:`repro.system.Cluster` whenever the directory
    is a ShardMap.  Migrations run as simulator processes; the optional
    background loop (``ShardingConfig.rebalance_interval``) periodically
    plans from the metrics counters and migrates, with the same
    generation-token idempotent start/stop protocol as the healing
    loops.  The loop should be stopped across membership changes: the
    join/leave drivers precompute ownership with ``with_nodes`` and a
    concurrent flip would skew that precomputation.
    """

    def __init__(self, cluster) -> None:
        self.cluster = cluster
        self.config = cluster.config.sharding
        self.sim = cluster.sim
        self.metrics = cluster.metrics
        #: Completed migrations, as ``(shard, donor, recipient)`` (probe).
        self.migrations: List[Tuple[int, int, int]] = []
        self._started = False
        self._generation = 0

    @property
    def shard_map(self) -> ShardMap:
        return self.cluster.directory

    # ------------------------------------------------------------------
    # One migration
    # ------------------------------------------------------------------
    def migrate_shard(self, shard: int, dest: int):
        """Spawn one live migration; the process's value is True on flip."""
        return self.cluster.spawn(
            self._migrate(shard, dest), name=f"migrate-s{shard}-to-{dest}"
        )

    def _migrate(self, shard: int, dest: int):
        shard_map = self.shard_map
        donor_id = shard_map.owner_of(shard)
        if donor_id == dest:
            return True  # already there; idempotent
        if dest not in shard_map.node_ids:
            raise ValueError(f"node {dest} is not a member")
        cluster = self.cluster
        tracer = cluster.tracer
        if cluster.network.is_crashed(donor_id) or cluster.network.is_crashed(
            dest
        ):
            self.metrics.on_shard_migration_failed()
            return False
        donor = cluster.nodes[donor_id]
        incarnation = donor._incarnation
        keys = sorted(
            (k for k in donor.store.keys() if shard_map.shard_of(k) == shard),
            key=repr,
        )
        donor.membership.fence(keys)
        if tracer._enabled:
            tracer.emit(
                donor_id, "shard_migrate_start", shard=shard, dest=dest,
                keys=len(keys), epoch=shard_map.epoch,
            )
        flipped = False
        try:
            drained = yield from cluster._drain_write_locks(donor, keys)
            if drained and donor._incarnation == incarnation:
                if keys:
                    installed = yield from donor.healing.ship_shard(
                        dest, keys, incarnation
                    )
                else:
                    installed = True  # nothing resident; flip is pure metadata
                if installed and shard_map.owner_of(shard) == donor_id:
                    # Cutover: single table write, one epoch bump.  The
                    # fence is still up, so no prepare can slip between
                    # the stream and the flip.
                    shard_map.assign(shard, dest)
                    flipped = True
        finally:
            # Scoped: wakes only this shard's parked prepares.  On the
            # success path they re-check ownership and vote "moved"; on
            # the failure path the map never flipped and they proceed
            # locally as if the migration had never started.
            donor.membership.unfence(keys)
        if flipped:
            self.migrations.append((shard, donor_id, dest))
            self.metrics.on_shard_migrated(len(keys))
            if tracer._enabled:
                tracer.emit(
                    donor_id, "shard_migrated", shard=shard, dest=dest,
                    keys=len(keys), epoch=shard_map.epoch,
                )
        else:
            self.metrics.on_shard_migration_failed()
            if tracer._enabled:
                tracer.emit(
                    donor_id, "shard_migrate_failed", shard=shard, dest=dest,
                )
        return flipped

    # ------------------------------------------------------------------
    # Planning from the live load signal
    # ------------------------------------------------------------------
    def rebalance_once(self):
        """Plan from the metrics counters and run the moves; returns the
        number of migrations that flipped."""
        cfg = self.config
        self.metrics.on_rebalance_round()
        loads = self.metrics.shard_loads
        if sum(loads.values()) < cfg.min_samples:
            return 0
        shard_map = self.shard_map
        live = [
            n
            for n in shard_map.node_ids
            if not self.cluster.network.is_crashed(n)
        ]
        moves = plan_moves(
            dict(loads),
            shard_map.owners(),
            live,
            threshold=cfg.imbalance_threshold,
            max_moves=cfg.max_moves_per_round,
        )
        done = 0
        for shard, dest in moves:
            flipped = yield from self._migrate(shard, dest)
            if flipped:
                done += 1
        if moves and cfg.load_decay < 1.0:
            self.metrics.decay_shard_loads(cfg.load_decay)
        return done

    # ------------------------------------------------------------------
    # Background loop (generation-token lifecycle, like NodeHealing)
    # ------------------------------------------------------------------
    def start(self) -> None:
        if self.config.rebalance_interval is None or self._started:
            return
        self._started = True
        self._generation += 1
        self.sim.spawn(self._loop(self._generation), name="rebalancer")

    def stop(self) -> None:
        self._started = False
        self._generation += 1

    def _loop(self, generation: int):
        interval = self.config.rebalance_interval
        while self._generation == generation:
            yield self.sim.timeout(interval)
            if self._generation != generation:
                return
            yield from self.rebalance_once()
