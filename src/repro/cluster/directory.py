"""Key-to-preferred-site lookup.

The paper (Section 2.2): "every shared key can be stored in an arbitrary
preferred site. For object reachability, FW-KV implements a local look-up
function using consistent hashing."  All directory variants below are pure
local functions of the key, exactly as in the paper -- no directory service
is contacted at runtime.
"""

from __future__ import annotations

import bisect
import zlib
from abc import ABC, abstractmethod
from typing import Callable, Dict, Hashable, Optional, Sequence


class Directory(ABC):
    """Maps every key to its preferred site (node id)."""

    @abstractmethod
    def site(self, key: Hashable) -> int:
        """The preferred node for ``key``."""

    def is_local(self, key: Hashable, node_id: int) -> bool:
        return self.site(key) == node_id

    def with_nodes(self, node_ids: Sequence[int]) -> "Directory":
        """A directory over a different node set (membership changes).

        Reconfigurable directories override this; the default refuses so
        elastic membership fails loudly on placement schemes that cannot
        express a changed site set.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support membership changes; "
            "use ConsistentHashDirectory for elastic clusters"
        )


def _stable_hash(value: str) -> int:
    """A hash stable across processes (unlike ``hash()`` with PYTHONHASHSEED).

    CRC32 is fast and deterministic; 32 bits of spread is ample for key
    placement.  A second pass decorrelates short sequential suffixes.
    """
    raw = value.encode("utf-8")
    return (zlib.crc32(raw) * 0x9E3779B1 + zlib.crc32(raw[::-1])) & 0xFFFFFFFF


class ConsistentHashDirectory(Directory):
    """Classic consistent-hash ring with virtual nodes.

    With the default 64 virtual nodes per physical node, key ownership is
    close to uniform, matching the paper's "keys are evenly distributed
    across nodes".
    """

    def __init__(self, node_ids: Sequence[int], virtual_nodes: int = 64) -> None:
        if not node_ids:
            raise ValueError("at least one node required")
        if virtual_nodes <= 0:
            raise ValueError("virtual_nodes must be positive")
        self.virtual_nodes = virtual_nodes
        self.node_ids: list = []
        # Each node's virtual points are a pure function of its id, so
        # they are hashed once and kept across remove/re-add cycles (and
        # shared with every with_nodes() clone).
        self._points_by_node: Dict[int, list] = {}
        self._ring: list = []
        self._ring_positions: list = []
        self._ring_owners: list = []
        # Placement is a pure function of the key, so lookups are memoised;
        # the cache is bounded by the workload's keyspace and turns two
        # CRC32 passes plus a bisect into one dict hit on the hot path.
        self._cache: Dict[Hashable, int] = {}
        for node_id in node_ids:
            self.add_node(node_id)

    def _node_points(self, node_id: int) -> list:
        points = self._points_by_node.get(node_id)
        if points is None:
            points = [
                _stable_hash(f"node:{node_id}:{replica}")
                for replica in range(self.virtual_nodes)
            ]
            self._points_by_node[node_id] = points
        return points

    def add_node(self, node_id: int) -> None:
        """Splice one node's virtual points into the ring.

        Incremental: only the joining node's points are hashed (memoised
        across re-adds); existing points keep their positions, so only the
        keyspace arcs in front of the new points change owner.
        """
        if node_id in self.node_ids:
            raise ValueError(f"node {node_id} is already in the ring")
        self.node_ids.append(node_id)
        ring = self._ring
        for position in self._node_points(node_id):
            bisect.insort(ring, (position, node_id))
        self._reindex()

    def remove_node(self, node_id: int) -> None:
        """Drop one node's virtual points from the ring (no re-hashing)."""
        if node_id not in self.node_ids:
            raise ValueError(f"node {node_id} is not in the ring")
        if len(self.node_ids) == 1:
            raise ValueError("cannot remove the last node from the ring")
        self.node_ids.remove(node_id)
        self._ring = [entry for entry in self._ring if entry[1] != node_id]
        self._reindex()

    def _reindex(self) -> None:
        self._ring_positions = [position for position, _ in self._ring]
        self._ring_owners = [owner for _, owner in self._ring]
        self._cache.clear()

    def with_nodes(self, node_ids: Sequence[int]) -> "ConsistentHashDirectory":
        """A ring over ``node_ids``, sharing this ring's hashed points.

        The drain path uses this to compute post-reconfiguration ownership
        (which keys move, and to whom) without touching the live ring.
        """
        clone = ConsistentHashDirectory.__new__(ConsistentHashDirectory)
        clone.virtual_nodes = self.virtual_nodes
        clone._points_by_node = self._points_by_node
        clone.node_ids = []
        clone._ring = []
        clone._ring_positions = []
        clone._ring_owners = []
        clone._cache = {}
        if not node_ids:
            raise ValueError("at least one node required")
        for node_id in node_ids:
            clone.add_node(node_id)
        return clone

    def site(self, key: Hashable) -> int:
        owner = self._cache.get(key)
        if owner is None:
            position = _stable_hash(f"key:{key!r}")
            index = bisect.bisect_right(self._ring_positions, position)
            if index == len(self._ring_positions):
                index = 0
            owner = self._ring_owners[index]
            self._cache[key] = owner
        return owner


class ShardMap(Directory):
    """Key → shard → owner placement with epoch-versioned atomic flips.

    Where :class:`ConsistentHashDirectory` derives ownership from ring
    geometry, a shard map makes it explicit state: the keyspace is
    partitioned into ``num_shards`` fixed shards by stable hash, and an
    owner table maps each shard to one node.  Ownership then moves at
    shard granularity -- a rebalancer streams one shard's chains to a new
    owner and flips a single table entry -- instead of whatever arcs a
    ring splice happens to cut.  Every flip bumps ``epoch``, mirroring
    membership views, so tests and traces can name the placement version
    a lookup was served under.

    All mutations keep two invariants the property suite pins down:
    ownership is total and unique (every shard has exactly one owner,
    always drawn from ``node_ids``), and no lookup ever returns a
    retired node -- ``remove_node`` reassigns every shard before the
    node leaves the table.
    """

    def __init__(self, node_ids: Sequence[int], num_shards: int = 64) -> None:
        if not node_ids:
            raise ValueError("at least one node required")
        if num_shards <= 0:
            raise ValueError("num_shards must be positive")
        if len(set(node_ids)) != len(node_ids):
            raise ValueError("duplicate node ids")
        self.num_shards = num_shards
        self.epoch = 0
        self.node_ids: list = list(node_ids)
        self.retired: set = set()
        # Initial placement strides shards across the given node order --
        # exact balance (counts differ by at most one), no hashing needed.
        self._owners: list = [
            node_ids[shard % len(node_ids)] for shard in range(num_shards)
        ]
        # key -> shard is a pure function of the key (ownership flips
        # never invalidate it), so it is memoised unconditionally.
        self._shard_cache: Dict[Hashable, int] = {}

    def shard_of(self, key: Hashable) -> int:
        shard = self._shard_cache.get(key)
        if shard is None:
            shard = _stable_hash(f"key:{key!r}") % self.num_shards
            self._shard_cache[key] = shard
        return shard

    def owner_of(self, shard: int) -> int:
        return self._owners[shard]

    def site(self, key: Hashable) -> int:
        return self._owners[self.shard_of(key)]

    def owners(self) -> tuple:
        """The full owner table (index = shard id), as an immutable copy."""
        return tuple(self._owners)

    def shards_of(self, node_id: int) -> tuple:
        return tuple(
            shard
            for shard, owner in enumerate(self._owners)
            if owner == node_id
        )

    def assign(self, shard: int, owner: int) -> bool:
        """Atomically flip one shard's owner; bump the epoch.

        This is the cutover instant of a live migration: the caller has
        already streamed the shard's chains to ``owner`` and holds the
        fence, so the flip is a single table write.  Assigning a shard
        to its current owner is a no-op (no epoch bump) so retried
        cutovers stay idempotent.
        """
        if not 0 <= shard < self.num_shards:
            raise ValueError(f"shard {shard} out of range")
        if owner not in self.node_ids:
            raise ValueError(f"node {owner} is not a member")
        if self._owners[shard] == owner:
            return False
        self._owners[shard] = owner
        self.epoch += 1
        return True

    def add_node(self, node_id: int) -> None:
        """Admit a node and steal it a fair share of shards.

        Deterministic greedy: while the newcomer holds fewer than
        ``num_shards // n`` shards, take the highest-numbered shard from
        the currently most-loaded owner (ties broken toward the lowest
        node id).  One epoch bump covers the whole membership change,
        like a view commit.
        """
        if node_id in self.node_ids:
            raise ValueError(f"node {node_id} is already a member")
        self.node_ids.append(node_id)
        self.retired.discard(node_id)
        counts = {n: 0 for n in self.node_ids}
        for owner in self._owners:
            counts[owner] += 1
        target = self.num_shards // len(self.node_ids)
        while counts[node_id] < target:
            donor = max(
                (n for n in self.node_ids if n != node_id),
                key=lambda n: (counts[n], -n),
            )
            if counts[donor] <= counts[node_id] + 1:
                break  # already balanced to within one shard
            shard = max(
                s for s, owner in enumerate(self._owners) if owner == donor
            )
            self._owners[shard] = node_id
            counts[donor] -= 1
            counts[node_id] += 1
        self.epoch += 1

    def remove_node(self, node_id: int) -> None:
        """Retire a node, handing each of its shards to the least-loaded
        survivor (ties toward the lowest id) in ascending shard order."""
        if node_id not in self.node_ids:
            raise ValueError(f"node {node_id} is not a member")
        if len(self.node_ids) == 1:
            raise ValueError("cannot remove the last node")
        self.node_ids.remove(node_id)
        self.retired.add(node_id)
        counts = {n: 0 for n in self.node_ids}
        for owner in self._owners:
            if owner != node_id:
                counts[owner] += 1
        for shard, owner in enumerate(self._owners):
            if owner != node_id:
                continue
            heir = min(self.node_ids, key=lambda n: (counts[n], n))
            self._owners[shard] = heir
            counts[heir] += 1
        self.epoch += 1

    def with_nodes(self, node_ids: Sequence[int]) -> "ShardMap":
        """A shard map over a different node set, derived from this one.

        Applies removals then additions in sorted order via the same
        incremental ops the live map uses, so the membership drivers'
        precomputed ownership (``with_nodes`` before the handoff) agrees
        exactly with the later in-place ``add_node``/``remove_node``
        flip.  When the target set is disjoint from the current one,
        additions run first so the map is never empty mid-derivation.
        """
        target = list(node_ids)
        if not target:
            raise ValueError("at least one node required")
        if len(set(target)) != len(target):
            raise ValueError("duplicate node ids")
        clone = ShardMap.__new__(ShardMap)
        clone.num_shards = self.num_shards
        clone.epoch = self.epoch
        clone.node_ids = list(self.node_ids)
        clone.retired = set(self.retired)
        clone._owners = list(self._owners)
        clone._shard_cache = self._shard_cache  # pure function of the key
        wanted = set(target)
        to_remove = sorted(set(clone.node_ids) - wanted)
        to_add = sorted(wanted - set(clone.node_ids))
        if len(to_remove) == len(clone.node_ids):
            for node_id in to_add:
                clone.add_node(node_id)
            for node_id in to_remove:
                clone.remove_node(node_id)
        else:
            for node_id in to_remove:
                clone.remove_node(node_id)
            for node_id in to_add:
                clone.add_node(node_id)
        return clone


class ExplicitDirectory(Directory):
    """Fixed key placement, for scenario tests that script exact layouts."""

    def __init__(
        self,
        placement: Dict[Hashable, int],
        fallback: Optional[Directory] = None,
    ) -> None:
        self._placement = dict(placement)
        self._fallback = fallback

    def site(self, key: Hashable) -> int:
        if key in self._placement:
            return self._placement[key]
        if self._fallback is not None:
            return self._fallback.site(key)
        raise KeyError(f"no placement for key {key!r}")


class CallableDirectory(Directory):
    """Placement computed by an arbitrary function of the key.

    Used by the TPC-C port to give every warehouse's object tree a single
    preferred site (the paper's hierarchical access pattern).
    """

    def __init__(self, fn: Callable[[Hashable], int]) -> None:
        self._fn = fn

    def site(self, key: Hashable) -> int:
        return self._fn(key)


class ModuloDirectory(Directory):
    """Round-robin placement of integer-indexed keys; simple and exact."""

    def __init__(self, num_nodes: int) -> None:
        if num_nodes <= 0:
            raise ValueError("num_nodes must be positive")
        self.num_nodes = num_nodes
        self._cache: Dict[Hashable, int] = {}

    def site(self, key: Hashable) -> int:
        owner = self._cache.get(key)
        if owner is None:
            owner = _stable_hash(f"key:{key!r}") % self.num_nodes
            self._cache[key] = owner
        return owner
