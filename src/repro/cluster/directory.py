"""Key-to-preferred-site lookup.

The paper (Section 2.2): "every shared key can be stored in an arbitrary
preferred site. For object reachability, FW-KV implements a local look-up
function using consistent hashing."  All directory variants below are pure
local functions of the key, exactly as in the paper -- no directory service
is contacted at runtime.
"""

from __future__ import annotations

import bisect
import zlib
from abc import ABC, abstractmethod
from typing import Callable, Dict, Hashable, Optional, Sequence


class Directory(ABC):
    """Maps every key to its preferred site (node id)."""

    @abstractmethod
    def site(self, key: Hashable) -> int:
        """The preferred node for ``key``."""

    def is_local(self, key: Hashable, node_id: int) -> bool:
        return self.site(key) == node_id


def _stable_hash(value: str) -> int:
    """A hash stable across processes (unlike ``hash()`` with PYTHONHASHSEED).

    CRC32 is fast and deterministic; 32 bits of spread is ample for key
    placement.  A second pass decorrelates short sequential suffixes.
    """
    raw = value.encode("utf-8")
    return (zlib.crc32(raw) * 0x9E3779B1 + zlib.crc32(raw[::-1])) & 0xFFFFFFFF


class ConsistentHashDirectory(Directory):
    """Classic consistent-hash ring with virtual nodes.

    With the default 64 virtual nodes per physical node, key ownership is
    close to uniform, matching the paper's "keys are evenly distributed
    across nodes".
    """

    def __init__(self, node_ids: Sequence[int], virtual_nodes: int = 64) -> None:
        if not node_ids:
            raise ValueError("at least one node required")
        if virtual_nodes <= 0:
            raise ValueError("virtual_nodes must be positive")
        self.node_ids = list(node_ids)
        points = []
        for node_id in self.node_ids:
            for replica in range(virtual_nodes):
                points.append((_stable_hash(f"node:{node_id}:{replica}"), node_id))
        points.sort()
        self._ring_positions = [position for position, _ in points]
        self._ring_owners = [owner for _, owner in points]
        # Placement is a pure function of the key, so lookups are memoised;
        # the cache is bounded by the workload's keyspace and turns two
        # CRC32 passes plus a bisect into one dict hit on the hot path.
        self._cache: Dict[Hashable, int] = {}

    def site(self, key: Hashable) -> int:
        owner = self._cache.get(key)
        if owner is None:
            position = _stable_hash(f"key:{key!r}")
            index = bisect.bisect_right(self._ring_positions, position)
            if index == len(self._ring_positions):
                index = 0
            owner = self._ring_owners[index]
            self._cache[key] = owner
        return owner


class ExplicitDirectory(Directory):
    """Fixed key placement, for scenario tests that script exact layouts."""

    def __init__(
        self,
        placement: Dict[Hashable, int],
        fallback: Optional[Directory] = None,
    ) -> None:
        self._placement = dict(placement)
        self._fallback = fallback

    def site(self, key: Hashable) -> int:
        if key in self._placement:
            return self._placement[key]
        if self._fallback is not None:
            return self._fallback.site(key)
        raise KeyError(f"no placement for key {key!r}")


class CallableDirectory(Directory):
    """Placement computed by an arbitrary function of the key.

    Used by the TPC-C port to give every warehouse's object tree a single
    preferred site (the paper's hierarchical access pattern).
    """

    def __init__(self, fn: Callable[[Hashable], int]) -> None:
        self._fn = fn

    def site(self, key: Hashable) -> int:
        return self._fn(key)


class ModuloDirectory(Directory):
    """Round-robin placement of integer-indexed keys; simple and exact."""

    def __init__(self, num_nodes: int) -> None:
        if num_nodes <= 0:
            raise ValueError("num_nodes must be positive")
        self.num_nodes = num_nodes
        self._cache: Dict[Hashable, int] = {}

    def site(self, key: Hashable) -> int:
        owner = self._cache.get(key)
        if owner is None:
            owner = _stable_hash(f"key:{key!r}") % self.num_nodes
            self._cache[key] = owner
        return owner
