"""The top-level facade: build a cluster, load data, run transactions.

:class:`Cluster` wires together the simulator, network, directory, metrics,
and one protocol node per simulated machine.  Tests, examples, and the
benchmark harness all drive the system through this class.

Typical scripted use::

    cluster = Cluster("fwkv", ClusterConfig(num_nodes=3))
    cluster.load("x", 0)

    def increment(txn):
        value = yield from txn.read("x")
        txn.write("x", value + 1)

    assert cluster.run_txn(increment)

:meth:`Cluster.run_txn` begins the transaction, hands the body a
:class:`TxnHandle`, drives the generator, auto-commits, and runs the
simulator to quiescence -- the full ``begin``/``yield from read``/
``commit``/``run_process`` plumbing remains available underneath for
scripts that interleave several transactions in one process.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Optional, Tuple

from repro.cluster.directory import ConsistentHashDirectory, Directory
from repro.cluster.node import Node
from repro.config import ClusterConfig
from repro.core.fwkv import FWKVNode
from repro.core.interfaces import BaseProtocolNode, SharedState
from repro.core.mvcc_node import MVCCNode
from repro.core.twopc import TwoPCNode
from repro.core.walter import WalterNode
from repro.metrics.history import History, OpRecord
from repro.metrics.psi_checker import VersionCatalog
from repro.metrics.stats import MetricsRecorder
from repro.net.network import Network
from repro.sim import Simulator, Tracer

PROTOCOLS = {
    "fwkv": FWKVNode,
    "walter": WalterNode,
    "2pc": TwoPCNode,
}


class TxnResult:
    """Outcome of one :meth:`Cluster.run_txn` invocation.

    Truthy iff the transaction committed, so existing assertion styles
    (``assert cluster.run_txn(fn)``) keep working; ``value`` carries
    whatever the transaction body returned.
    """

    __slots__ = ("committed", "value", "txn_id")

    def __init__(self, committed: bool, value: object, txn_id: int) -> None:
        self.committed = committed
        self.value = value
        self.txn_id = txn_id

    def __bool__(self) -> bool:
        return self.committed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "committed" if self.committed else "aborted"
        return f"<TxnResult txn={self.txn_id} {state} value={self.value!r}>"


class TxnHandle:
    """One in-flight transaction, without the generator plumbing.

    Wraps a protocol node's ``begin``/``read``/``write``/``commit``
    into a single object the transaction body receives, so user code
    reads ``value = yield from txn.read(key)`` instead of threading the
    node and the raw :class:`~repro.core.transaction.Transaction` pair
    through every call.  ``read``/``read_many``/``commit`` stay
    generator subroutines -- they go over the simulated wire -- while
    ``write`` buffers locally and is plain.
    """

    __slots__ = ("_node", "txn", "finished", "committed")

    def __init__(self, node: BaseProtocolNode, txn) -> None:
        self._node = node
        #: The underlying Transaction (escape hatch for advanced use).
        self.txn = txn
        #: True once commit or rollback ran; run_txn then skips its
        #: auto-commit.
        self.finished = False
        self.committed = False

    @property
    def txn_id(self) -> int:
        return self.txn.txn_id

    def read(self, key: Hashable):
        """Generator subroutine: the value visible to this transaction."""
        value = yield from self._node.read(self.txn, key)
        return value

    def read_many(self, keys: Iterable[Hashable]):
        """Generator subroutine: parallel multi-get (read-only txns)."""
        values = yield from self._node.read_many(self.txn, keys)
        return values

    def write(self, key: Hashable, value: object) -> None:
        """Buffer a write (visible at commit only)."""
        self._node.write(self.txn, key, value)

    def commit(self):
        """Generator subroutine: drive 2PC; True iff committed."""
        ok = yield from self._node.commit(self.txn)
        self.finished = True
        self.committed = bool(ok)
        return self.committed

    def rollback(self) -> None:
        """Client-initiated abort: discard buffers, nothing to undo."""
        self._node.abort(self.txn)
        self.finished = True


class Cluster:
    """A complete simulated deployment of one protocol."""

    def __init__(
        self,
        protocol: str,
        config: ClusterConfig,
        directory: Optional[Directory] = None,
        record_history: bool = False,
    ) -> None:
        if protocol not in PROTOCOLS:
            raise ValueError(
                f"unknown protocol {protocol!r}; choose from {sorted(PROTOCOLS)}"
            )
        self.protocol = protocol
        self.config = config
        self.sim = Simulator()
        self.network = Network(self.sim, config.network, seed=config.seed)
        self.metrics = MetricsRecorder(self.sim)
        self.tracer = Tracer(self.sim)
        self.directory = directory or ConsistentHashDirectory(list(config.node_ids))
        self.history: Optional[History] = History() if record_history else None
        self.shared = SharedState(
            sim=self.sim,
            config=config,
            directory=self.directory,
            metrics=self.metrics,
            tracer=self.tracer,
            history=self.history,
        )
        node_cls = PROTOCOLS[protocol]
        self.nodes = [
            node_cls(Node(self.sim, node_id, self.network), self.shared)
            for node_id in config.node_ids
        ]
        # Arm the self-healing loops (heartbeats, anti-entropy, WAL
        # checkpoints) on every MVCC node.  With the default HealingConfig
        # no loop is configured, so this spawns nothing; when periods are
        # configured the loops run forever -- drive such clusters with
        # run(until=...) or call stop_healing() before a quiescence run.
        self.start_healing()

    # ------------------------------------------------------------------
    # Data loading
    # ------------------------------------------------------------------
    def load(self, key: Hashable, value: object) -> None:
        """Install initial data at the key's preferred site."""
        self.nodes[self.directory.site(key)].load(key, value)

    def load_many(self, items: Iterable[Tuple[Hashable, object]]) -> int:
        """Install many (key, value) pairs; returns the count loaded.

        Items are bucketed by preferred site and handed to each node's
        bulk loader, so a large keyspace pays one placement lookup per key
        and nothing else per item at the Python-call level.
        """
        site = self.directory.site
        buckets: Dict[int, list] = {}
        for item in items:
            owner = site(item[0])
            bucket = buckets.get(owner)
            if bucket is None:
                buckets[owner] = [item]
            else:
                bucket.append(item)
        nodes = self.nodes
        return sum(
            nodes[owner].load_many(bucket) for owner, bucket in buckets.items()
        )

    # ------------------------------------------------------------------
    # Self-healing lifecycle
    # ------------------------------------------------------------------
    def start_healing(self) -> None:
        """Spawn the configured healing loops on every MVCC node."""
        for node in self.nodes:
            if isinstance(node, MVCCNode):
                node.healing.start()

    def stop_healing(self) -> None:
        """Wind the healing loops down so the simulator can quiesce."""
        for node in self.nodes:
            if isinstance(node, MVCCNode):
                node.healing.stop()

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def node(self, node_id: int) -> BaseProtocolNode:
        """The protocol node with the given id."""
        return self.nodes[node_id]

    def spawn(self, gen, name: Optional[str] = None):
        """Start a simulated process on this cluster; returns it (joinable)."""
        return self.sim.spawn(gen, name=name)

    def run(self, until: Optional[float] = None) -> float:
        """Run the simulation until quiescence or ``until`` virtual seconds."""
        return self.sim.run(until)

    def run_process(self, gen, name: Optional[str] = None):
        """Spawn ``gen``, run to quiescence, and return the process's value."""
        return self.sim.run_process(gen, name=name)

    # ------------------------------------------------------------------
    # Transaction facade
    # ------------------------------------------------------------------
    def txn(
        self,
        fn,
        node: int = 0,
        read_only: bool = False,
        profile: Optional[str] = None,
    ):
        """Generator subroutine running ``fn`` as one transaction.

        ``fn`` receives a :class:`TxnHandle`; a generator body is driven
        to completion (so it can ``yield from txn.read(...)``), a plain
        function body may only ``txn.write``.  Unless the body already
        committed or rolled back, the transaction is committed on the
        way out.  Returns a :class:`TxnResult`.  Use this form to
        compose several transactions inside one simulated process;
        :meth:`run_txn` is the run-to-quiescence wrapper around it.
        """
        protocol_node = self.nodes[node]
        handle = TxnHandle(
            protocol_node,
            protocol_node.begin(is_read_only=read_only, profile=profile),
        )
        value = fn(handle)
        if hasattr(value, "__next__"):
            value = yield from value
        if not handle.finished:
            yield from handle.commit()
        return TxnResult(handle.committed, value, handle.txn_id)

    def run_txn(
        self,
        fn,
        node: int = 0,
        read_only: bool = False,
        profile: Optional[str] = None,
    ) -> TxnResult:
        """Run one transaction to quiescence and return its result.

        The quickstart path::

            def transfer(txn):
                balance = yield from txn.read("alice")
                txn.write("alice", balance - 10)
                txn.write("bob", 10)

            result = cluster.run_txn(transfer)
            assert result.committed
        """
        return self.run_process(
            self.txn(fn, node=node, read_only=read_only, profile=profile),
            name=f"run_txn:n{node}",
        )

    # ------------------------------------------------------------------
    # Post-run analysis
    # ------------------------------------------------------------------
    def version_catalog(self) -> VersionCatalog:
        """(key, vid) -> (origin, seq, writer txn) across all nodes."""
        catalog: VersionCatalog = {}
        for node in self.nodes:
            if isinstance(node, MVCCNode):
                for key in node.store.keys():
                    for version in node.store.chain(key):
                        catalog[(key, version.vid)] = (
                            version.origin,
                            version.seq,
                            version.writer_txn,
                        )
            elif isinstance(node, TwoPCNode):
                catalog.update(node.catalog)
        return catalog

    def finalized_history(self) -> History:
        """The recorded history with write vids resolved from the catalog.

        Coordinators never learn the vids their writes received at remote
        nodes, so update-transaction write operations are reconstructed
        here from each version's ``writer_txn`` stamp.  2PC records write
        vids inline at commit and needs no resolution.
        """
        if self.history is None:
            raise RuntimeError("history recording was not enabled")
        writes_by_txn: Dict[int, list] = {}
        for (key, vid), (_origin, _seq, writer) in self.version_catalog().items():
            if writer is not None:
                writes_by_txn.setdefault(writer, []).append((key, vid))
        for record in self.history:
            if record.is_read_only or record.writes():
                continue
            for key, vid in sorted(writes_by_txn.get(record.txn_id, []), key=repr):
                record.ops.append(OpRecord("w", key, vid))
        return self.history

    # ------------------------------------------------------------------
    # Invariant probes (tests)
    # ------------------------------------------------------------------
    def total_vas_entries(self) -> int:
        """Version-access-set entries across all nodes (invariant probe)."""
        total = 0
        for node in self.nodes:
            if isinstance(node, MVCCNode):
                total += node.store.vas_total_entries()
        return total

    def any_locks_held(self) -> bool:
        """True if any per-key lock is held anywhere (invariant probe)."""
        return any(node.locks.any_locked() for node in self.nodes)

    def cpu_utilization(self, elapsed: Optional[float] = None):
        """Per-node mean CPU utilisation over ``elapsed`` virtual seconds
        (defaults to the whole run so far)."""
        window = elapsed if elapsed is not None else self.sim.now
        return [node.cpu.utilization(window) for node in self.nodes]

    def site_clocks(self):
        """Per-node siteVC tuples (MVCC protocols only), for assertions."""
        return [
            node.site_vc.to_tuple()
            for node in self.nodes
            if isinstance(node, MVCCNode)
        ]
