"""The top-level facade: build a cluster, load data, run transactions.

:class:`Cluster` wires together the simulator, network, directory, metrics,
and one protocol node per simulated machine.  Tests, examples, and the
benchmark harness all drive the system through this class.

Typical scripted use::

    cluster = Cluster("fwkv", ClusterConfig(num_nodes=3))
    cluster.load("x", 0)

    def increment(txn):
        value = yield from txn.read("x")
        txn.write("x", value + 1)

    assert cluster.run_txn(increment)

:meth:`Cluster.run_txn` begins the transaction, hands the body a
:class:`TxnHandle`, drives the generator, auto-commits, and runs the
simulator to quiescence -- the full ``begin``/``yield from read``/
``commit``/``run_process`` plumbing remains available underneath for
scripts that interleave several transactions in one process.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Optional, Tuple

from repro.cluster.directory import ConsistentHashDirectory, Directory, ShardMap
from repro.cluster.membership import ACTIVE, DRAINING, JOINING, MembershipView
from repro.cluster.node import Node
from repro.cluster.rebalancer import Rebalancer
from repro.config import ClusterConfig
from repro.core.fwkv import FWKVNode
from repro.core.interfaces import BaseProtocolNode, SharedState
from repro.core.mvcc_node import MVCCNode
from repro.core.twopc import TwoPCNode
from repro.core.walter import WalterNode
from repro.metrics.history import History, OpRecord
from repro.metrics.psi_checker import VersionCatalog
from repro.metrics.stats import MetricsRecorder
from repro.net.transport import Transport, build_transport
from repro.replication.shard import ClusterReplication
from repro.sim import Simulator, Tracer

PROTOCOLS = {
    "fwkv": FWKVNode,
    "walter": WalterNode,
    "2pc": TwoPCNode,
}


class TxnResult:
    """Outcome of one :meth:`Cluster.run_txn` invocation.

    Truthy iff the transaction committed, so existing assertion styles
    (``assert cluster.run_txn(fn)``) keep working; ``value`` carries
    whatever the transaction body returned.
    """

    __slots__ = ("committed", "value", "txn_id")

    def __init__(self, committed: bool, value: object, txn_id: int) -> None:
        self.committed = committed
        self.value = value
        self.txn_id = txn_id

    def __bool__(self) -> bool:
        return self.committed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "committed" if self.committed else "aborted"
        return f"<TxnResult txn={self.txn_id} {state} value={self.value!r}>"


class TxnHandle:
    """One in-flight transaction, without the generator plumbing.

    Wraps a protocol node's ``begin``/``read``/``write``/``commit``
    into a single object the transaction body receives, so user code
    reads ``value = yield from txn.read(key)`` instead of threading the
    node and the raw :class:`~repro.core.transaction.Transaction` pair
    through every call.  ``read``/``read_many``/``commit`` stay
    generator subroutines -- they go over the simulated wire -- while
    ``write`` buffers locally and is plain.
    """

    __slots__ = ("_node", "txn", "finished", "committed")

    def __init__(self, node: BaseProtocolNode, txn) -> None:
        self._node = node
        #: The underlying Transaction (escape hatch for advanced use).
        self.txn = txn
        #: True once commit or rollback ran; run_txn then skips its
        #: auto-commit.
        self.finished = False
        self.committed = False

    @property
    def txn_id(self) -> int:
        return self.txn.txn_id

    def read(self, key: Hashable):
        """Generator subroutine: the value visible to this transaction."""
        value = yield from self._node.read(self.txn, key)
        return value

    def read_many(self, keys: Iterable[Hashable]):
        """Generator subroutine: parallel multi-get (read-only txns)."""
        values = yield from self._node.read_many(self.txn, keys)
        return values

    def write(self, key: Hashable, value: object) -> None:
        """Buffer a write (visible at commit only)."""
        self._node.write(self.txn, key, value)

    def commit(self):
        """Generator subroutine: drive 2PC; True iff committed."""
        ok = yield from self._node.commit(self.txn)
        self.finished = True
        self.committed = bool(ok)
        return self.committed

    def rollback(self) -> None:
        """Client-initiated abort: discard buffers, nothing to undo."""
        self._node.abort(self.txn)
        self.finished = True


class Cluster:
    """A complete simulated deployment of one protocol."""

    def __init__(
        self,
        protocol: str,
        config: ClusterConfig,
        directory: Optional[Directory] = None,
        record_history: bool = False,
    ) -> None:
        if protocol not in PROTOCOLS:
            raise ValueError(
                f"unknown protocol {protocol!r}; choose from {sorted(PROTOCOLS)}"
            )
        self.protocol = protocol
        self.config = config
        self.sim = Simulator()
        #: The message fabric, selected by ``config.transport.kind`` --
        #: the only place the backend choice is made (docs/networking.md).
        self.network: Transport = build_transport(self.sim, config)
        self.metrics = MetricsRecorder(self.sim)
        self.tracer = Tracer(self.sim)
        if directory is None:
            # Sharded clusters place keys through an explicit owner table
            # (shard granularity, epoch-versioned flips); everything else
            # keeps the classic ring and its exact historical placement.
            if config.sharding.enabled:
                directory = ShardMap(
                    list(config.node_ids), config.sharding.num_shards
                )
            else:
                directory = ConsistentHashDirectory(list(config.node_ids))
        self.directory = directory
        self.history: Optional[History] = History() if record_history else None
        self.shared = SharedState(
            sim=self.sim,
            config=config,
            directory=self.directory,
            metrics=self.metrics,
            tracer=self.tracer,
            history=self.history,
        )
        node_cls = PROTOCOLS[protocol]
        self.nodes = [
            node_cls(Node(self.sim, node_id, self.network), self.shared)
            for node_id in config.node_ids
        ]
        #: Sites decommissioned (or abandoned mid-join) by the elastic
        #: membership drivers; they keep their slot in ``nodes`` so ids
        #: stay dense, but no driver or healing pass touches them.
        self._removed: set = set()
        #: Live shard migration driver; present iff the directory is a
        #: ShardMap (its background loop only spawns when
        #: ``sharding.rebalance_interval`` is set -- see start_healing).
        self.rebalancer: Optional[Rebalancer] = (
            Rebalancer(self) if isinstance(self.directory, ShardMap) else None
        )
        #: Per-shard primary-backup replication (docs/replication.md):
        #: deterministic backup placement over the ShardMap, record
        #: streams from every primary, and the failover driver.  ``None``
        #: unless ``config.replication.enabled``.
        self.replication: Optional[ClusterReplication] = None
        if config.replication.enabled:
            if not isinstance(self.directory, ShardMap):
                raise ValueError(
                    "replication requires the sharded directory; set "
                    "sharding.enabled (replication placement and failover "
                    "operate at shard granularity)"
                )
            if not self.nodes or not isinstance(self.nodes[0], MVCCNode):
                raise ValueError(
                    f"protocol {protocol!r} does not support replication"
                )
            self.replication = ClusterReplication(self)
        # Arm the self-healing loops (heartbeats, anti-entropy, WAL
        # checkpoints) on every MVCC node.  With the default HealingConfig
        # no loop is configured, so this spawns nothing; when periods are
        # configured the loops run forever -- drive such clusters with
        # run(until=...) or call stop_healing() before a quiescence run.
        self.start_healing()

    # ------------------------------------------------------------------
    # Data loading
    # ------------------------------------------------------------------
    def load(self, key: Hashable, value: object) -> None:
        """Install initial data at the key's preferred site.

        With replication enabled the baseline version is mirrored to the
        key's backups as well -- every replica's chain starts identical,
        so stream installs keep vids aligned forever after.
        """
        self.nodes[self.directory.site(key)].load(key, value)
        if self.replication is not None:
            for backup in self.replication.backups_for_key(key):
                self.nodes[backup].load(key, value)

    def load_many(self, items: Iterable[Tuple[Hashable, object]]) -> int:
        """Install many (key, value) pairs; returns the count loaded.

        Items are bucketed by preferred site and handed to each node's
        bulk loader, so a large keyspace pays one placement lookup per key
        and nothing else per item at the Python-call level.
        """
        site = self.directory.site
        buckets: Dict[int, list] = {}
        for item in items:
            owner = site(item[0])
            bucket = buckets.get(owner)
            if bucket is None:
                buckets[owner] = [item]
            else:
                bucket.append(item)
        nodes = self.nodes
        loaded = sum(
            nodes[owner].load_many(bucket) for owner, bucket in buckets.items()
        )
        if self.replication is not None:
            # Mirror the baseline to every backup (identical chains from
            # vid 0 on); the returned count stays the primary-copy count.
            backups_for_key = self.replication.backups_for_key
            mirror: Dict[int, list] = {}
            for bucket in buckets.values():
                for item in bucket:
                    for backup in backups_for_key(item[0]):
                        mirror.setdefault(backup, []).append(item)
            for backup, bucket in mirror.items():
                nodes[backup].load_many(bucket)
        return loaded

    # ------------------------------------------------------------------
    # Self-healing lifecycle
    # ------------------------------------------------------------------
    def start_healing(self) -> None:
        """Spawn the configured healing loops on every current member.

        Idempotent: nodes already running their loops are left alone
        (the per-node daemon guards itself), and decommissioned sites
        are skipped.
        """
        for node in self.nodes:
            if isinstance(node, MVCCNode) and node.node_id not in self._removed:
                node.healing.start()
        if self.rebalancer is not None:
            self.rebalancer.start()
        if self.replication is not None:
            self.replication.start()

    def stop_healing(self) -> None:
        """Wind the healing loops down so the simulator can quiesce.

        Idempotent: stopping twice (or with nothing running) is a no-op.
        The rebalance loop (when configured) winds down with the healing
        loops -- both are the cluster's periodic background machinery.
        """
        for node in self.nodes:
            if isinstance(node, MVCCNode):
                node.healing.stop()
        if self.rebalancer is not None:
            self.rebalancer.stop()
        if self.replication is not None:
            self.replication.stop()

    # ------------------------------------------------------------------
    # Elastic membership (online reconfiguration)
    # ------------------------------------------------------------------
    def add_node(self, node_id: Optional[int] = None):
        """Join a new site online; returns the joinable driver process.

        The driver commits a ``JOINING`` view (the newcomer enters the
        propagation fan-out but owns nothing), bootstraps the joiner's
        vector clock from the peers' frontiers, streams it the shards
        the widened consistent-hash ring assigns it, flips the shared
        directory, and commits the ``ACTIVE`` view.  The process's value
        is True iff the join completed; a joiner that crashes mid-way is
        abandoned with a member-removal view and can be re-added later
        under the same id.

        ``node_id`` defaults to the next dense id (a brand-new site is
        built and wired to the network); passing the id of a previously
        removed site re-joins it.
        """
        if not self.nodes or not isinstance(self.nodes[0], MVCCNode):
            raise ValueError(
                f"protocol {self.protocol!r} does not support elastic membership"
            )
        if not hasattr(self.directory, "add_node"):
            raise ValueError(
                "elastic membership requires a directory with incremental "
                "add_node/remove_node (ConsistentHashDirectory)"
            )
        if node_id is None:
            node_id = len(self.nodes)
        if node_id < len(self.nodes):
            if node_id not in self._removed:
                raise ValueError(f"node {node_id} is already a member")
        elif node_id == len(self.nodes):
            node_cls = PROTOCOLS[self.protocol]
            self.nodes.append(
                node_cls(Node(self.sim, node_id, self.network), self.shared)
            )
            if self.replication is not None:
                self.replication.attach(self.nodes[node_id])
        else:
            raise ValueError(
                f"node ids must stay dense: the next id is {len(self.nodes)}"
            )
        self._removed.discard(node_id)
        return self.sim.spawn(
            self._join_driver(node_id), name=f"join:n{node_id}"
        )

    def remove_node(self, node_id: int):
        """Decommission a member gracefully; returns the driver process.

        The driver commits a ``DRAINING`` view (new prepares on the
        victim's keys park on the drain fence), waits for in-flight
        write locks to drain, streams every shard to its new owner,
        waits for the survivors to dominate the victim's final commit
        frontier, flips the shared directory, and commits the removal
        view carrying the victim's retired frontier.  The victim's keys
        stay readable at the victim until the flip and at their new
        owners after it.  The process's value is True iff the
        decommission completed (on failure the member reverts to
        ``ACTIVE``).
        """
        if node_id in self._removed or node_id >= len(self.nodes):
            raise ValueError(f"node {node_id} is not a member")
        if not isinstance(self.nodes[node_id], MVCCNode):
            raise ValueError(
                f"protocol {self.protocol!r} does not support elastic membership"
            )
        return self.sim.spawn(
            self._leave_driver(node_id), name=f"leave:n{node_id}"
        )

    # -- view-change plumbing ------------------------------------------
    def _current_view(self) -> MembershipView:
        """The newest committed view across live, non-removed members."""
        best = None
        for node in self.nodes:
            if not isinstance(node, MVCCNode):
                continue
            if node.node_id in self._removed:
                continue
            if self.network.is_crashed(node.node_id):
                continue
            view = node.membership.view
            if best is None or view.epoch > best.epoch:
                best = view
        if best is None:
            raise RuntimeError("no live member to read the current view from")
        return best

    def _live_proposer(self, view: MembershipView, exclude=()):
        """The lowest live ACTIVE member -- the view-change coordinator.

        Falls back to any live member so a cluster mid-transition (all
        survivors DRAINING/JOINING) can still finish its view change.
        """
        def usable(member: int) -> bool:
            return (
                member not in exclude
                and member not in self._removed
                and member < len(self.nodes)
                and not self.network.is_crashed(member)
            )

        for member, state in sorted(view.members.items()):
            if state == ACTIVE and usable(member):
                return self.nodes[member]
        for member in sorted(view.members):
            if usable(member):
                return self.nodes[member]
        return None

    def _drive_view(self, derive, exclude=()):
        """Propose-and-collect-acks, retrying across proposer crashes.

        ``derive(current)`` builds the target view from the newest
        committed view (returning None when the change is moot).  Each
        attempt re-reads the current view and re-picks a live proposer,
        so a proposer that crashes mid-round is simply routed around.
        Returns the acked view, or None after ``max_attempts``.
        """
        cfg = self.config.membership
        for _attempt in range(max(1, cfg.max_attempts)):
            current = self._current_view()
            target = derive(current)
            if target is None:
                return None
            proposer = self._live_proposer(current, exclude=exclude)
            if proposer is None:
                return None
            proposer.membership.propose(target)
            yield self.sim.timeout(cfg.ack_timeout)
            required = {
                member for member in target.fanout_ids
                if member < len(self.nodes)
                and not self.network.is_crashed(member)
            }
            if required <= proposer.membership.acks.get(target.epoch, set()):
                return target
        return None

    def _commit_view(self, view: MembershipView, exclude=()) -> bool:
        """Fan out a commit through a live proposer (one-way, idempotent)."""
        proposer = self._live_proposer(view, exclude=exclude)
        if proposer is None:
            return False
        proposer.membership.commit(view)
        return True

    def _drain_write_locks(self, node, keys):
        """Wait until no listed key's write lock is held at ``node``.

        Prepares already holding locks finish through their Decide;
        fenced prepares park *before* locking, so the wait terminates.
        Returns False if the handoff deadline passes first.
        """
        cfg = self.config.membership
        deadline = self.sim.now + cfg.handoff_timeout
        locks = node.locks
        while any(locks.lock_for(key).write_held for key in keys):
            if self.sim.now >= deadline:
                return False
            yield self.sim.timeout(cfg.ack_timeout)
        return True

    # -- join ----------------------------------------------------------
    def _join_driver(self, joiner_id: int):
        cfg = self.config.membership
        tick = cfg.ack_timeout
        joiner = self.nodes[joiner_id]

        def derive_joining(current: MembershipView):
            if current.state_of(joiner_id) is not None:
                return None  # already a member: duplicate add
            return current.with_member(joiner_id, JOINING)

        acked = yield from self._drive_view(derive_joining)
        if acked is None:
            self._removed.add(joiner_id)
            return False
        self._commit_view(acked, exclude=(joiner_id,))
        # The joiner is in the fan-out: wait for it to apply the view.
        deadline = self.sim.now + cfg.handoff_timeout
        while joiner.membership.view.epoch < acked.epoch:
            if self.network.is_crashed(joiner_id) or self.sim.now >= deadline:
                yield from self._abandon_join(joiner_id)
                return False
            yield self.sim.timeout(tick)
        joiner.healing.start()
        # Bootstrap and handoff run in a subprocess so a joiner crash
        # cannot strand the driver on an RPC that will never settle.
        worker = self.sim.spawn(
            self._join_work(joiner_id, acked), name=f"join-work:n{joiner_id}"
        )
        while not worker.triggered:
            if self.network.is_crashed(joiner_id) or self.sim.now >= deadline:
                yield from self._abandon_join(joiner_id)
                return False
            yield self.sim.timeout(tick)
        if worker.value is not True:
            yield from self._abandon_join(joiner_id)
            return False

        def derive_active(current: MembershipView):
            if current.state_of(joiner_id) != JOINING:
                return None
            members = dict(current.members)
            members[joiner_id] = ACTIVE
            retired = dict(current.retired)
            retired.pop(joiner_id, None)
            return MembershipView(current.epoch + 1, members, retired)

        acked = yield from self._drive_view(derive_active)
        if acked is None:
            # Undo the ownership flip before abandoning: the joiner must
            # not keep key ranges outside the committed membership.
            self.directory.remove_node(joiner_id)
            yield from self._abandon_join(joiner_id)
            return False
        self._commit_view(acked)
        if self.tracer._enabled:
            self.tracer.emit(joiner_id, "join_complete", epoch=acked.epoch)
        return True

    def _join_work(self, joiner_id: int, view: MembershipView):
        """Bootstrap a JOINING member: clock catch-up, then shard handoff."""
        joiner = self.nodes[joiner_id]
        incarnation = joiner._incarnation
        # Clock-only bootstrap: adopt every origin's committed frontier
        # (the joiner owns no keys yet, so frontiers are all it needs).
        targets, _ = yield from joiner.healing.collect_frontiers()
        for origin, target in enumerate(targets):
            if origin == joiner_id or target <= 0:
                continue
            if origin >= len(joiner.site_vc.entries):
                joiner.site_vc.widen(origin + 1)
            if target > joiner.site_vc[origin]:
                yield from joiner._catch_up_origin(origin, target, frozenset())
        # Symmetric catch-up for a *re*-join: peers whose clocks shrank
        # past this origin's retirement must re-learn its final frontier
        # (the data behind it was shipped out at decommission and kept),
        # or they would wait forever below the rejoiner's next commit.
        own = joiner.curr_seq_no
        if own > 0:
            for member in view.fanout_ids:
                if member == joiner_id or self.network.is_crashed(member):
                    continue
                peer = self.nodes[member]
                if joiner_id >= len(peer.site_vc.entries):
                    peer.site_vc.widen(joiner_id + 1)
                if peer.site_vc[joiner_id] < own:
                    yield from peer._catch_up_origin(
                        joiner_id, own, frozenset()
                    )
        joiner.metrics.on_join_bootstrapped()
        if self.tracer._enabled:
            self.tracer.emit(
                joiner_id, "join_bootstrap", clock=joiner.site_vc.to_tuple()
            )
        # Shard handoff: fence, drain, and ship every key the widened
        # ring moves from an old owner to the joiner.
        ring = list(view.ring_ids)
        new_dir = self.directory.with_nodes(sorted(set(ring) | {joiner_id}))
        for owner_id in ring:
            owner = self.nodes[owner_id]
            moved = sorted(
                (
                    key for key in owner.store.keys()
                    if new_dir.site(key) == joiner_id
                ),
                key=repr,
            )
            if not moved:
                continue
            owner.membership.fence(moved)
            drained = yield from self._drain_write_locks(owner, moved)
            if not drained:
                return False
            installed = yield from owner.healing.ship_shard(
                joiner_id, moved, owner._incarnation
            )
            if not installed or joiner._incarnation != incarnation:
                return False
        if joiner_id in self._removed:
            return False  # the driver abandoned this join meanwhile
        # Atomic ownership flip: every node routes through this shared
        # directory, so the in-place widen is the cut-over point.
        self.directory.add_node(joiner_id)
        return True

    def _abandon_join(self, joiner_id: int):
        """Remove a part-way joiner (abandoned join: no retired entry)."""
        self._removed.add(joiner_id)
        self.nodes[joiner_id].healing.stop()

        def derive(current: MembershipView):
            if current.state_of(joiner_id) is None:
                return None
            return current.without_member(joiner_id, final_seq=None)

        acked = yield from self._drive_view(derive, exclude=(joiner_id,))
        if acked is None:
            # Force the removal through anyway: commit is one-way and
            # idempotent, and a member that cannot shrink simply stays
            # wide (always sound).
            current = self._current_view()
            if current.state_of(joiner_id) is not None:
                acked = current.without_member(joiner_id, final_seq=None)
        if acked is not None:
            self._commit_view(acked, exclude=(joiner_id,))
        if self.tracer._enabled:
            self.tracer.emit(joiner_id, "join_abandoned")

    # -- leave ---------------------------------------------------------
    def _leave_driver(self, victim_id: int):
        cfg = self.config.membership
        tick = cfg.ack_timeout
        victim = self.nodes[victim_id]

        def derive_draining(current: MembershipView):
            if current.state_of(victim_id) != ACTIVE:
                return None
            if len(current.ring_ids) <= 1:
                return None  # refuse to drain the last key owner
            return current.with_member(victim_id, DRAINING)

        acked = yield from self._drive_view(derive_draining, exclude=(victim_id,))
        if acked is None:
            return False
        self._commit_view(acked)
        deadline = self.sim.now + cfg.handoff_timeout
        while victim.membership.view.epoch < acked.epoch:
            if self.sim.now >= deadline:
                yield from self._revert_drain(victim_id)
                return False
            yield self.sim.timeout(tick)
        # Drain: in-flight prepares on the victim's keys settle through
        # their Decides; new ones park on the drain fence.  Reads keep
        # being served here throughout.
        keys = sorted(victim.store.keys(), key=repr)
        drained = yield from self._drain_write_locks(victim, keys)
        if not drained:
            yield from self._revert_drain(victim_id)
            return False
        # Shard handoff to the shrunken ring's new owners.
        ring = [m for m in acked.ring_ids if m != victim_id]
        new_dir = self.directory.with_nodes(ring)
        by_owner: Dict[int, list] = {}
        for key in sorted(victim.store.keys(), key=repr):
            by_owner.setdefault(new_dir.site(key), []).append(key)
        for new_owner in sorted(by_owner):
            installed = yield from victim.healing.ship_shard(
                new_owner, by_owner[new_owner], victim._incarnation
            )
            if not installed:
                yield from self._revert_drain(victim_id)
                return False
        final_seq = victim.curr_seq_no
        # Dominance wait: every live survivor should hold the victim's
        # full commit frontier before the removal view, so the retired
        # entry is immediately shrinkable.  On timeout we proceed --
        # the retired entry pins the clock width, which is always sound.
        deadline = self.sim.now + cfg.handoff_timeout
        while self.sim.now < deadline:
            survivors = [
                self.nodes[m] for m in ring if not self.network.is_crashed(m)
            ]
            if all(
                victim_id < len(s.site_vc.entries)
                and s.site_vc[victim_id] >= final_seq
                for s in survivors
            ):
                break
            yield self.sim.timeout(tick)
        # Atomic ownership flip, then the removal view.  The commit
        # lifts the survivors' fences; the victim is no longer in the
        # fan-out, so the driver lifts its fences by hand -- parked
        # prepares wake, re-check the flipped directory, and vote
        # "moved", sending their coordinators to the new owners.
        self.directory.remove_node(victim_id)

        def derive_removed(current: MembershipView):
            if current.state_of(victim_id) is None:
                return None
            return current.without_member(victim_id, final_seq=final_seq)

        acked2 = yield from self._drive_view(derive_removed, exclude=(victim_id,))
        if acked2 is None:
            current = self._current_view()
            if current.state_of(victim_id) is not None:
                acked2 = current.without_member(victim_id, final_seq=final_seq)
        if acked2 is not None:
            self._commit_view(acked2, exclude=(victim_id,))
        victim.membership.lift_fences()
        victim.healing.stop()
        self._removed.add(victim_id)
        self.metrics.on_drain_completed()
        if self.tracer._enabled:
            self.tracer.emit(victim_id, "drain_complete", final_seq=final_seq)
        # Optional clock shrink once the retired entry tops the clock:
        # members ack only when their own shrink is provably safe.
        if cfg.shrink_clocks:

            def derive_shrink(current: MembershipView):
                if victim_id not in current.retired:
                    return None
                shrunk = current.without_retired(victim_id)
                if shrunk.clock_width >= current.clock_width:
                    return None
                return shrunk

            acked3 = yield from self._drive_view(derive_shrink, exclude=(victim_id,))
            if acked3 is not None:
                self._commit_view(acked3, exclude=(victim_id,))
        return True

    def _revert_drain(self, victim_id: int):
        """Put a draining member back to ACTIVE (decommission failed)."""

        def derive(current: MembershipView):
            if current.state_of(victim_id) != DRAINING:
                return None
            return current.with_member(victim_id, ACTIVE)

        acked = yield from self._drive_view(derive)
        if acked is not None:
            self._commit_view(acked)

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def node(self, node_id: int) -> BaseProtocolNode:
        """The protocol node with the given id."""
        return self.nodes[node_id]

    def spawn(self, gen, name: Optional[str] = None):
        """Start a simulated process on this cluster; returns it (joinable)."""
        return self.sim.spawn(gen, name=name)

    def run(self, until: Optional[float] = None) -> float:
        """Run the cluster until quiescence or ``until`` virtual seconds.

        Delegates to the transport's pump: the simulator backend is
        exactly ``sim.run(until)``; the socket backend interleaves the
        simulator with real network I/O until the virtual deadline.
        """
        return self.network.pump(until=until)

    def run_process(self, gen, name: Optional[str] = None):
        """Spawn ``gen``, run until it finishes, and return its value."""
        proc = self.sim.spawn(gen, name=name)
        # Register as a joiner so a failure re-raises below as the original
        # exception instead of surfacing as an unhandled SimulationCrash.
        proc.add_callback(lambda _event: None)
        self.network.pump(stop=proc)
        if not proc.triggered:
            raise RuntimeError(
                f"process {proc.name!r} never finished: simulation deadlocked"
            )
        return proc.value

    def close(self) -> None:
        """Release the transport's external resources (sockets, threads).

        A no-op on the simulator backend; socket clusters must be closed
        (or used as a context manager) so the I/O thread and listener
        shut down cleanly.  Idempotent.
        """
        self.network.close()

    def __enter__(self) -> "Cluster":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Transaction facade
    # ------------------------------------------------------------------
    def txn(
        self,
        fn,
        node: int = 0,
        read_only: bool = False,
        profile: Optional[str] = None,
    ):
        """Generator subroutine running ``fn`` as one transaction.

        ``fn`` receives a :class:`TxnHandle`; a generator body is driven
        to completion (so it can ``yield from txn.read(...)``), a plain
        function body may only ``txn.write``.  Unless the body already
        committed or rolled back, the transaction is committed on the
        way out.  Returns a :class:`TxnResult`.  Use this form to
        compose several transactions inside one simulated process;
        :meth:`run_txn` is the run-to-quiescence wrapper around it.
        """
        protocol_node = self.nodes[node]
        handle = TxnHandle(
            protocol_node,
            protocol_node.begin(is_read_only=read_only, profile=profile),
        )
        value = fn(handle)
        if hasattr(value, "__next__"):
            value = yield from value
        if not handle.finished:
            yield from handle.commit()
        return TxnResult(handle.committed, value, handle.txn_id)

    def run_txn(
        self,
        fn,
        node: int = 0,
        read_only: bool = False,
        profile: Optional[str] = None,
    ) -> TxnResult:
        """Run one transaction to quiescence and return its result.

        The quickstart path::

            def transfer(txn):
                balance = yield from txn.read("alice")
                txn.write("alice", balance - 10)
                txn.write("bob", 10)

            result = cluster.run_txn(transfer)
            assert result.committed
        """
        return self.run_process(
            self.txn(fn, node=node, read_only=read_only, profile=profile),
            name=f"run_txn:n{node}",
        )

    # ------------------------------------------------------------------
    # Post-run analysis
    # ------------------------------------------------------------------
    def version_catalog(self) -> VersionCatalog:
        """(key, vid) -> (origin, seq, writer txn) across all nodes."""
        catalog: VersionCatalog = {}
        for node in self.nodes:
            if isinstance(node, MVCCNode):
                for key in node.store.keys():
                    for version in node.store.chain(key):
                        catalog[(key, version.vid)] = (
                            version.origin,
                            version.seq,
                            version.writer_txn,
                        )
            elif isinstance(node, TwoPCNode):
                catalog.update(node.catalog)
        return catalog

    def finalized_history(self) -> History:
        """The recorded history with write vids resolved from the catalog.

        Coordinators never learn the vids their writes received at remote
        nodes, so update-transaction write operations are reconstructed
        here from each version's ``writer_txn`` stamp.  2PC records write
        vids inline at commit and needs no resolution.
        """
        if self.history is None:
            raise RuntimeError("history recording was not enabled")
        writes_by_txn: Dict[int, list] = {}
        for (key, vid), (_origin, _seq, writer) in self.version_catalog().items():
            if writer is not None:
                writes_by_txn.setdefault(writer, []).append((key, vid))
        for record in self.history:
            if record.is_read_only or record.writes():
                continue
            for key, vid in sorted(writes_by_txn.get(record.txn_id, []), key=repr):
                record.ops.append(OpRecord("w", key, vid))
        return self.history

    # ------------------------------------------------------------------
    # Invariant probes (tests)
    # ------------------------------------------------------------------
    def total_vas_entries(self) -> int:
        """Version-access-set entries across all nodes (invariant probe)."""
        total = 0
        for node in self.nodes:
            if isinstance(node, MVCCNode):
                total += node.store.vas_total_entries()
        return total

    def any_locks_held(self) -> bool:
        """True if any per-key lock is held anywhere (invariant probe)."""
        return any(node.locks.any_locked() for node in self.nodes)

    def cpu_utilization(self, elapsed: Optional[float] = None):
        """Per-node mean CPU utilisation over ``elapsed`` virtual seconds
        (defaults to the whole run so far)."""
        window = elapsed if elapsed is not None else self.sim.now
        return [node.cpu.utilization(window) for node in self.nodes]

    def site_clocks(self):
        """Per-node siteVC tuples (MVCC protocols only), for assertions."""
        return [
            node.site_vc.to_tuple()
            for node in self.nodes
            if isinstance(node, MVCCNode)
        ]
