"""Replicated state machines: the interface and a key-value example."""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Dict, Hashable


class StateMachine(ABC):
    """Deterministic state machine driven by an ordered command log.

    Replicas apply the same commands in the same order, so any
    deterministic implementation stays consistent across the group.
    """

    @abstractmethod
    def apply(self, command: Any) -> Any:
        """Apply one committed command; returns the command's result."""

    @abstractmethod
    def snapshot(self) -> Any:
        """A deep, comparable snapshot of the full state (for tests)."""


class KVStateMachine(StateMachine):
    """A dictionary driven by ``("put", k, v)`` / ``("delete", k)`` commands."""

    def __init__(self) -> None:
        self._data: Dict[Hashable, Any] = {}

    def apply(self, command: Any) -> Any:
        op = command[0]
        if op == "put":
            _op, key, value = command
            self._data[key] = value
            return value
        if op == "delete":
            _op, key = command
            return self._data.pop(key, None)
        if op == "get":
            _op, key = command
            return self._data.get(key)
        raise ValueError(f"unknown command {command!r}")

    def get(self, key: Hashable) -> Any:
        return self._data.get(key)

    def snapshot(self) -> Dict[Hashable, Any]:
        return dict(self._data)
