"""A replica group plus the client stub that finds the primary.

.. deprecated::
    ``ReplicaGroup`` was the standalone site-availability substrate from
    before replication was folded under the transactional core.  New code
    should enable :class:`repro.config.ReplicationConfig` on a sharded
    :class:`repro.system.Cluster` instead -- per-shard primary-backup
    streams, live failover, and read-forwarding all run inside the same
    node abstraction (see ``repro.replication.shard`` and
    ``docs/replication.md``).  This shim keeps the old API importable and
    functional but emits a :class:`DeprecationWarning` on construction.
"""

from __future__ import annotations

import warnings
from typing import Any, Callable, List, Optional

from repro.config import NetworkConfig
from repro.net.message import Envelope
from repro.net.network import Network
from repro.replication.replica import (
    SUBMIT,
    SUBMIT_REPLY,
    Replica,
    ReplicaRole,
)
from repro.replication.state_machine import KVStateMachine, StateMachine
from repro.sim import Simulator


class ReplicaGroup:
    """Builds ``num_replicas`` replicas and a retrying client stub.

    Replicas get ids ``0..n-1``; the client stub registers as id ``n``.
    ``submit`` is a generator subroutine: it targets the believed primary,
    follows redirects, and retries after a timeout when the primary has
    crashed -- returning only once the command is *committed* (applied
    under the replication guarantee).
    """

    def __init__(
        self,
        sim: Simulator,
        num_replicas: int = 3,
        state_machine_factory: Callable[[], StateMachine] = KVStateMachine,
        network: Optional[Network] = None,
        heartbeat_interval: float = 2e-3,
        heartbeat_timeout: float = 6e-3,
        submit_timeout: float = 10e-3,
    ) -> None:
        warnings.warn(
            "ReplicaGroup is deprecated: enable "
            "ClusterConfig(replication=ReplicationConfig(enabled=True)) on a "
            "sharded Cluster instead (repro.replication.shard integrates "
            "primary-backup replication under the transactional core).",
            DeprecationWarning,
            stacklevel=2,
        )
        if num_replicas < 1:
            raise ValueError("need at least one replica")
        self.sim = sim
        self.network = network or Network(sim, NetworkConfig(jitter=0.0))
        self.submit_timeout = submit_timeout
        ids = list(range(num_replicas))
        self.replicas: List[Replica] = [
            Replica(
                sim,
                self.network,
                replica_id,
                ids,
                state_machine_factory(),
                heartbeat_interval=heartbeat_interval,
                heartbeat_timeout=heartbeat_timeout,
            )
            for replica_id in ids
        ]
        self._client_id = num_replicas
        self._next_request = 0
        self._pending = {}
        self.network.register(self._client_id, self._client_deliver)
        self._believed_primary = 0

    # ------------------------------------------------------------------
    # Client side
    # ------------------------------------------------------------------
    def _client_deliver(self, envelope: Envelope) -> None:
        assert envelope.msg_type == SUBMIT_REPLY
        request_id, ok, payload = envelope.payload
        event = self._pending.pop(request_id, None)
        if event is not None and not event.triggered:
            event.succeed((ok, payload))

    def submit(self, command: Any):
        """Generator subroutine: replicate one command, return its result."""
        while True:
            request_id = self._next_request
            self._next_request += 1
            event = self.sim.event()
            self._pending[request_id] = event
            self.network.send(
                self._client_id,
                self._believed_primary,
                SUBMIT,
                (request_id, command),
            )
            deadline = self.sim.timeout(self.submit_timeout, ("timeout", None))
            from repro.sim import AnyOf

            which, value = yield AnyOf(self.sim, [event, deadline])
            if which == 0:
                ok, payload = value
                if ok:
                    return payload
                # Redirected: payload is the responder's primary hint.
                self._believed_primary = payload
            else:
                # Timed out (crashed primary?): try the next replica.
                self._pending.pop(request_id, None)
                self._believed_primary = (
                    self._believed_primary + 1
                ) % len(self.replicas)

    # ------------------------------------------------------------------
    # Introspection & control
    # ------------------------------------------------------------------
    def primary(self) -> Optional[Replica]:
        for replica in self.replicas:
            if not replica.crashed and replica.role is ReplicaRole.PRIMARY:
                return replica
        return None

    def crash_primary(self) -> Replica:
        primary = self.primary()
        assert primary is not None, "no live primary to crash"
        primary.crash()
        return primary

    def live_replicas(self) -> List[Replica]:
        return [r for r in self.replicas if not r.crashed]

    def shutdown(self) -> None:
        """Cancel the periodic timers so the simulation can drain."""
        for replica in self.replicas:
            if replica._timer is not None:
                replica._timer.cancel()
