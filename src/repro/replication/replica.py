"""One replica of a site's primary-backup group."""

from __future__ import annotations

import enum
from typing import Any, Dict, List, Optional, Set

from repro.net.message import Envelope
from repro.net.network import Network
from repro.sim import Simulator
from repro.replication.state_machine import StateMachine

APPEND = "RepAppend"
APPEND_ACK = "RepAppendAck"
HEARTBEAT = "RepHeartbeat"
SUBMIT = "RepSubmit"
SUBMIT_REPLY = "RepSubmitReply"


class ReplicaRole(enum.Enum):
    PRIMARY = "primary"
    BACKUP = "backup"


class _LogEntry:
    __slots__ = ("index", "epoch", "command")

    def __init__(self, index: int, epoch: int, command: Any) -> None:
        self.index = index
        self.epoch = epoch
        self.command = command


class Replica:
    """A crash-stop replica with synchronous log shipping.

    Succession is deterministic: the live replica with the lowest id is
    primary.  Only the primary heartbeats; a backup that misses heartbeats
    suspects every lower-id replica it has not heard from and takes over
    when it becomes the lowest unsuspected id.  Because the primary
    commits an entry only after every unsuspected backup acknowledged it,
    any successor's log contains every committed entry -- no committed
    write is lost across a failover (asserted by the tests).
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        replica_id: int,
        group_ids: List[int],
        state_machine: StateMachine,
        heartbeat_interval: float = 2e-3,
        heartbeat_timeout: float = 6e-3,
        ack_timeout: float = 4e-3,
    ) -> None:
        self.sim = sim
        self.network = network
        self.replica_id = replica_id
        self.group_ids = sorted(group_ids)
        self.sm = state_machine
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_timeout = heartbeat_timeout
        self.ack_timeout = ack_timeout

        self.log: List[_LogEntry] = []
        self.commit_index = 0  # entries [0, commit_index) are applied
        self.epoch = 0
        self.suspected: Set[int] = set()
        self.crashed = False

        self._last_heartbeat = sim.now
        self._pending_acks: Dict[int, Set[int]] = {}  # log index -> awaited ids
        self._commit_waiters: Dict[int, list] = {}  # log index -> events
        self._results: Dict[int, Any] = {}
        self._timer = None

        network.register(replica_id, self._deliver)
        self._schedule_tick()

    # ------------------------------------------------------------------
    # Roles
    # ------------------------------------------------------------------
    @property
    def role(self) -> ReplicaRole:
        if self.replica_id == self._believed_primary():
            return ReplicaRole.PRIMARY
        return ReplicaRole.BACKUP

    def _believed_primary(self) -> int:
        for candidate in self.group_ids:
            if candidate not in self.suspected:
                return candidate
        return self.replica_id

    # ------------------------------------------------------------------
    # Fault injection
    # ------------------------------------------------------------------
    def crash(self) -> None:
        """Crash-stop: stop timers and drop all traffic."""
        self.crashed = True
        self.network.crash(self.replica_id)
        if self._timer is not None:
            self._timer.cancel()

    # ------------------------------------------------------------------
    # Periodic work
    # ------------------------------------------------------------------
    def _schedule_tick(self) -> None:
        self._timer = self.sim.call_later(self.heartbeat_interval, self._tick)

    def _tick(self) -> None:
        if self.crashed:
            return
        if self.role is ReplicaRole.PRIMARY:
            for peer in self.group_ids:
                if peer != self.replica_id and peer not in self.suspected:
                    self.network.send(
                        self.replica_id,
                        peer,
                        HEARTBEAT,
                        (self.epoch, self.commit_index),
                    )
        else:
            elapsed = self.sim.now - self._last_heartbeat
            if elapsed > self.heartbeat_timeout:
                # Suspect every lower-id replica we have not heard from;
                # if that makes us the lowest live id, take over.
                for candidate in self.group_ids:
                    if candidate == self.replica_id:
                        break
                    self.suspected.add(candidate)
                if self.role is ReplicaRole.PRIMARY:
                    self._become_primary()
        self._schedule_tick()

    def _become_primary(self) -> None:
        self.epoch += 1
        # Commit everything inherited: our log holds every entry the old
        # primary committed (sync replication), plus possibly a tail the
        # old primary never finished -- committing it is safe (the client
        # simply observes a success it may have timed out on).
        self._advance_commit(len(self.log))

    # ------------------------------------------------------------------
    # Message handling
    # ------------------------------------------------------------------
    def _deliver(self, envelope: Envelope) -> None:
        if self.crashed:
            return
        handler = {
            SUBMIT: self._on_submit,
            APPEND: self._on_append,
            APPEND_ACK: self._on_append_ack,
            HEARTBEAT: self._on_heartbeat,
        }[envelope.msg_type]
        handler(envelope)

    def _on_submit(self, envelope: Envelope) -> None:
        request_id, command = envelope.payload
        if self.role is not ReplicaRole.PRIMARY:
            self.network.send(
                self.replica_id,
                envelope.src,
                SUBMIT_REPLY,
                (request_id, False, self._believed_primary()),
            )
            return

        index = len(self.log)
        entry = _LogEntry(index, self.epoch, command)
        self.log.append(entry)
        peers = [
            p for p in self.group_ids
            if p != self.replica_id and p not in self.suspected
        ]
        self._pending_acks[index] = set(peers)
        self._commit_waiters.setdefault(index, []).append((envelope.src, request_id))
        for peer in peers:
            self.network.send(
                self.replica_id,
                peer,
                APPEND,
                (self.epoch, index, command, self.commit_index),
            )
        if not peers:
            self._advance_commit(index + 1)
        else:
            self.sim.call_later(self.ack_timeout, self._ack_deadline, index)

    def _ack_deadline(self, index: int) -> None:
        """Peers that never acked are suspected; the entry commits anyway."""
        if self.crashed:
            return
        missing = self._pending_acks.get(index)
        if missing:
            self.suspected.update(missing)
            missing.clear()
        self._try_commit(index)

    def _on_append(self, envelope: Envelope) -> None:
        epoch, index, command, primary_commit = envelope.payload
        if epoch < self.epoch:
            return  # stale primary
        self.epoch = epoch
        self._last_heartbeat = self.sim.now
        if index < len(self.log):
            self.log[index] = _LogEntry(index, epoch, command)
            del self.log[index + 1 :]
        else:
            # Sync shipping over FIFO channels keeps indexes dense.
            assert index == len(self.log), "replication log gap"
            self.log.append(_LogEntry(index, epoch, command))
        self.network.send(
            self.replica_id, envelope.src, APPEND_ACK, (epoch, index)
        )
        # Piggybacked commit progress lets backups apply without waiting
        # for the next heartbeat.
        self._advance_commit(min(primary_commit, len(self.log)))

    def _on_append_ack(self, envelope: Envelope) -> None:
        epoch, index = envelope.payload
        if epoch != self.epoch:
            return
        pending = self._pending_acks.get(index)
        if pending is not None:
            pending.discard(envelope.src)
            self._try_commit(index)

    def _try_commit(self, index: int) -> None:
        # Entries commit in order; scan forward from commit_index.
        next_index = self.commit_index
        while next_index < len(self.log):
            pending = self._pending_acks.get(next_index)
            if pending:
                break
            next_index += 1
        self._advance_commit(next_index)

    def _on_heartbeat(self, envelope: Envelope) -> None:
        epoch, commit_index = envelope.payload
        if epoch < self.epoch:
            return
        self.epoch = epoch
        self._last_heartbeat = self.sim.now
        self.suspected.discard(envelope.src)
        self._advance_commit(min(commit_index, len(self.log)))

    # ------------------------------------------------------------------
    # Commit & apply
    # ------------------------------------------------------------------
    def _advance_commit(self, new_commit_index: int) -> None:
        while self.commit_index < new_commit_index:
            index = self.commit_index
            entry = self.log[index]
            result = self.sm.apply(entry.command)
            self._results[index] = result
            self.commit_index += 1
            self._pending_acks.pop(index, None)
            for client, request_id in self._commit_waiters.pop(index, []):
                self.network.send(
                    self.replica_id,
                    client,
                    SUBMIT_REPLY,
                    (request_id, True, result),
                )
