"""Per-shard primary-backup replication under the transactional core.

Where :mod:`repro.replication.group` replicated a standalone state
machine behind a client stub, this module folds replication *under* the
cluster's one-node-per-site abstraction (the ROADMAP's "replication
integration" item): every :class:`~repro.cluster.directory.ShardMap`
shard keeps its primary -- the preferred site the directory already
names -- plus ``replication_factor - 1`` backups chosen
deterministically from the directory, and the primary streams its
transactional state changes to them over per-(primary, backup) FIFO
record streams (``docs/replication.md``).

The stream carries five record kinds (:class:`~repro.core.wire.
ReplicationEntry`): ``prepare`` stages an in-flight 2PC participant's
writes, ``abort`` drops a staged entry, ``decision`` records a commit
this primary coordinated, ``apply`` installs a commit's versions
verbatim, and ``frontier`` is a clock-only freshness update (coalesced
in the outbox).  Acknowledgements are cumulative -- the backup applies
strictly in sequence order and replies with its applied high-water mark
-- so an unacknowledged suffix simply retransmits after a partition or
a lost reply, and duplicates are dropped by sequence comparison.

In ``sync`` mode the primary defers its externally visible effects on
the stream acks: a participant's yes-vote waits for the ``prepare``
record, the coordinator's commit acknowledgement for the ``decision``
record (both bounded by ``sync_timeout``; on expiry the commit
*degrades* to asynchronous replication and proceeds -- availability
over redundancy, counted in ``replication_sync_degraded``).  ``async``
mode never waits and only tracks the per-backup replicated frontier.

Failover is driven by :class:`FailoverDriver`: when a majority of live
armed failure detectors classify a shard owner dead, the freshest
backup (highest applied stream sequence) is promoted behind the
membership fence -- staged prepares are resolved through the decision
log (or a TXN_STATUS query to a live coordinator), the dead
coordinator's decisions are re-announced so wedged participants apply
instead of presuming abort, the shard-map entries flip, and the
surviving backups are re-bootstrapped from the new primary.  Racing
prepares park on the fence and re-prepare against the new owner ("moved"
votes), so a failover costs foreground traffic round trips, never
aborts.

Read-forwarding (``read_from_backups``) lets backups serve *frozen*
read-only requests Walter-style -- against the carried snapshot, with no
clock merge -- but only when the backup's replicated frontier dominates
the request's snapshot; otherwise the request is forwarded to the
current primary.  See ``docs/replication.md`` for the freshness
soundness argument.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Sequence, Set, Tuple

from repro.config import ReplicationConfig, RpcConfig
from repro.core.vector_clock import VectorClock
from repro.core.walter.visibility import select_walter_version
from repro.core.wire import (
    DecideBody,
    ReadRequestBody,
    ReadReturnBody,
    ReplicateAckBody,
    ReplicateBody,
    ReplicationEntry,
    TxnStatusRequestBody,
)
from repro.net.message import MessageType
from repro.sim import AnyOf, ConditionVariable


def backups_for_shard(
    shard_map,
    shard: int,
    factor: int,
    down: Optional[Set[int]] = None,
) -> Tuple[int, ...]:
    """The deterministic backup set for one shard.

    Candidates are the member ids minus the shard's owner and any
    ``down`` sites, in sorted order rotated by the shard index -- so
    backup load spreads evenly across the cluster and the placement is
    a pure function of the directory (any node, or a test, can
    recompute it without coordination).  Returns at most
    ``factor - 1`` backups; a cluster smaller than the replication
    factor simply gets every other live member.
    """
    owner = shard_map.owner_of(shard)
    excluded = down if down is not None else ()
    candidates = sorted(
        n for n in shard_map.node_ids if n != owner and n not in excluded
    )
    if not candidates:
        return ()
    rotation = shard % len(candidates)
    rotated = candidates[rotation:] + candidates[:rotation]
    return tuple(rotated[: max(0, factor - 1)])


class ReplicationStream:
    """Primary-side state of one primary -> backup FIFO stream."""

    __slots__ = (
        "backup", "next_seq", "acked", "inflight_hi", "outbox", "closed",
        "pumping", "acked_cv",
    )

    def __init__(self, sim, backup: int) -> None:
        self.backup = backup
        #: Next sequence number to assign (dense, starting at 1).
        self.next_seq = 1
        #: Cumulative ack: every record at or below this was applied.
        self.acked = 0
        #: Highest sequence number ever handed to the wire; frontier
        #: coalescing may only mutate entries above it.
        self.inflight_hi = 0
        #: Unacknowledged suffix, in sequence order.
        self.outbox: List[ReplicationEntry] = []
        #: Closed streams accept no records: the sender was deposed by a
        #: failover, or the backup lost its stream state and must be
        #: re-bootstrapped before streaming can resume.
        self.closed = False
        self.pumping = False
        #: Notified whenever ``acked`` advances or the stream closes.
        self.acked_cv = ConditionVariable(sim)

    @property
    def lag(self) -> int:
        """Records streamed but not yet acknowledged."""
        return self.next_seq - 1 - self.acked


class BackupState:
    """Backup-side state of one primary's stream at this node."""

    __slots__ = (
        "applied", "frontier", "staged", "decisions", "buffer", "closed",
    )

    def __init__(
        self,
        applied: int = 0,
        frontier: Optional[Tuple[int, ...]] = None,
    ) -> None:
        #: Cumulative applied high-water mark (the ack we return).
        self.applied = applied
        #: The primary's ``siteVC`` as of the newest applied apply/
        #: frontier record -- the freshness bound for frozen reads.
        self.frontier = frontier
        #: txn_id -> prepare entry for staged, undecided participants.
        self.staged: Dict[int, ReplicationEntry] = {}
        #: txn_id -> decision entry (commits the primary coordinated).
        self.decisions: Dict[int, ReplicationEntry] = {}
        #: Out-of-order arrivals waiting for their predecessors.
        self.buffer: Dict[int, ReplicationEntry] = {}
        #: Closed after the primary was failed over: any straggling
        #: retransmission from a deposed (restarted) primary is refused
        #: with ``applied = -1`` instead of double-installing versions
        #: the promotion already resolved.
        self.closed = False


class NodeReplication:
    """The per-node half of the replication substrate.

    Lives on every MVCC protocol node of a replication-enabled cluster
    (``node.replication``); owns the primary-side streams to this
    node's backups and the backup-side state for every primary this
    node backs.  The protocol node calls in at four points: prepare
    (stage), commit decision (log), decide-apply (install + frontier),
    and propagate (frontier); the REPLICATE message handler is the
    backup side.
    """

    def __init__(self, owner, cluster_rep: "ClusterReplication") -> None:
        self.owner = owner
        self.cluster_rep = cluster_rep
        self.config: ReplicationConfig = cluster_rep.config
        self.sim = owner.sim
        self.node_id = owner.node_id
        self.metrics = owner.metrics
        self.tracer = owner.tracer
        #: backup id -> primary-side stream state.
        self.streams: Dict[int, ReplicationStream] = {}
        #: primary id -> backup-side stream state.
        self.backup_state: Dict[int, BackupState] = {}
        #: A deposed (failed-over) primary stops pumping forever; its
        #: retransmissions must not race the promoted successor.
        self._retired = False
        self._backup_cache: Tuple[int, ...] = ()
        self._backup_cache_key: Optional[Tuple[int, int]] = None
        # Stream RPCs must never hang a pump on a crashed backup: under
        # the reliable-channel default they get a private single-attempt
        # deadline (the daemon's gossip pattern); with a global timeout
        # configured they use the endpoint's detector-capped policy.
        if owner.node.rpc.config.request_timeout is None:
            self._rpc_config: Optional[RpcConfig] = RpcConfig(
                request_timeout=self.config.retry_interval, max_attempts=1
            )
        else:
            self._rpc_config = None

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------
    def _all_backups(self) -> Tuple[int, ...]:
        """Every backup of every shard this node currently owns."""
        rep = self.cluster_rep
        key = (rep.shard_map.epoch, rep.version)
        if self._backup_cache_key != key:
            backups: Set[int] = set()
            for shard in rep.shard_map.shards_of(self.node_id):
                backups.update(rep.placement.get(shard, ()))
            backups.discard(self.node_id)
            backups.difference_update(rep.down)
            self._backup_cache = tuple(sorted(backups))
            self._backup_cache_key = key
        return self._backup_cache

    # ------------------------------------------------------------------
    # Primary side: enqueue + pump
    # ------------------------------------------------------------------
    def _stream(self, backup: int) -> ReplicationStream:
        stream = self.streams.get(backup)
        if stream is None:
            stream = ReplicationStream(self.sim, backup)
            self.streams[backup] = stream
        return stream

    def _enqueue(self, backup: int, kind: str, **fields) -> Optional[int]:
        """Append one record to a backup's stream; returns its seq."""
        if self._retired:
            return None
        stream = self._stream(backup)
        if stream.closed:
            return None
        if kind == "frontier" and stream.outbox:
            last = stream.outbox[-1]
            if last.kind == "frontier" and last.seq > stream.inflight_hi:
                # Coalesce: the trailing un-sent frontier record absorbs
                # the newer snapshot instead of growing the outbox.
                last.frontier = fields["frontier"]
                return last.seq
        entry = ReplicationEntry(seq=stream.next_seq, kind=kind, **fields)
        stream.next_seq += 1
        stream.outbox.append(entry)
        if not stream.pumping:
            stream.pumping = True
            self.sim.spawn(
                self._pump(stream, self.owner._incarnation),
                name=f"n{self.node_id}:replicate-{backup}",
            )
        return entry.seq

    def _enqueue_by_key(
        self, writes: Dict[Hashable, object], kind: str, **fields
    ) -> List[Tuple[ReplicationStream, int]]:
        """One record per backup stream, carrying that backup's keys."""
        rep = self.cluster_rep
        shard_of = rep.shard_map.shard_of
        by_backup: Dict[int, list] = {}
        for key, value in writes.items():
            for backup in rep.placement.get(shard_of(key), ()):
                if backup == self.node_id or backup in rep.down:
                    continue
                by_backup.setdefault(backup, []).append((key, value))
        targets: List[Tuple[ReplicationStream, int]] = []
        for backup in sorted(by_backup):
            entry_writes = tuple(
                sorted(by_backup[backup], key=lambda kv: repr(kv[0]))
            )
            seq = self._enqueue(backup, kind, writes=entry_writes, **fields)
            if seq is not None:
                targets.append((self.streams[backup], seq))
        return targets

    def _pump(self, stream: ReplicationStream, incarnation: int):
        """Drain one stream's outbox (lazily spawned, exits when empty)."""
        config = self.config
        owner = self.owner
        rep = self.cluster_rep
        try:
            while True:
                if (
                    self._retired
                    or owner._incarnation != incarnation
                    or stream.closed
                    or not stream.outbox
                ):
                    return
                if rep.is_excluded(stream.backup):
                    # The backup crashed or was failed over: stop
                    # streaming and close -- the driver re-bootstraps it
                    # from scratch if it ever comes back.
                    self._close_stream(stream)
                    return
                batch = tuple(stream.outbox[: config.batch_records])
                hi = batch[-1].seq
                if hi > stream.inflight_hi:
                    stream.inflight_hi = hi
                ok, reply = yield from owner.node.rpc.call_settled(
                    stream.backup,
                    MessageType.REPLICATE,
                    ReplicateBody(self.node_id, batch),
                    config=self._rpc_config,
                )
                if self._retired or owner._incarnation != incarnation:
                    return
                if ok and reply.applied < 0:
                    self._close_stream(stream)  # deposed by a failover
                    return
                if ok and reply.applied > stream.acked:
                    advanced = reply.applied - stream.acked
                    stream.acked = reply.applied
                    outbox = stream.outbox
                    while outbox and outbox[0].seq <= stream.acked:
                        outbox.pop(0)
                    stream.acked_cv.notify_all()
                    self.metrics.on_replication_records(advanced)
                    self.metrics.on_replication_lag(stream.lag)
                    continue
                if ok and 0 <= reply.applied < stream.acked:
                    # The backup's applied mark regressed: it restarted
                    # and lost its stream state.  Records below our ack
                    # are gone from the outbox, so streaming cannot
                    # resume -- close and let the driver re-bootstrap.
                    self._close_stream(stream)
                    return
                # Timed out, or a retransmission made no progress: keep
                # the suffix and retry after a pacing interval.
                yield self.sim.timeout(config.retry_interval)
        finally:
            stream.pumping = False

    def _close_stream(self, stream: ReplicationStream) -> None:
        stream.closed = True
        stream.outbox.clear()
        stream.acked_cv.notify_all()

    def _await_acks(self, targets: List[Tuple[ReplicationStream, int]]):
        """Sync mode: wait (bounded) for the listed records' acks.

        Returns True when every target stream acknowledged, False when
        ``sync_timeout`` expired first -- the caller proceeds anyway
        (degrade to async; the records stay queued and retransmit), so
        a partitioned backup costs latency and redundancy, never
        availability.  Closed streams count as satisfied: their backup
        is gone and holding the commit hostage would buy nothing.
        """
        if not targets or self.config.mode != "sync":
            return True
        sim = self.sim
        deadline = sim.now + self.config.sync_timeout
        while True:
            pending = [
                stream for stream, seq in targets
                if not stream.closed and stream.acked < seq
            ]
            if not pending:
                return True
            now = sim.now
            if now >= deadline:
                self.metrics.on_replication_sync_degraded()
                if self.tracer._enabled:
                    self.tracer.emit(
                        self.node_id, "replication_degraded",
                        backups=tuple(s.backup for s in pending),
                    )
                return False
            timer = sim.timeout(deadline - now)
            yield AnyOf(
                sim,
                [stream.acked_cv.wait() for stream in pending] + [timer],
            )
            if not timer.triggered:
                timer.cancel()

    # ------------------------------------------------------------------
    # Hooks called by the protocol node
    # ------------------------------------------------------------------
    def replicate_prepare(self, request):
        """Stream a participant's staged writes; sync-gate the yes-vote.

        Self-coordinated prepares skip the wait: their vote never
        leaves the node, and the later ``decision`` record on the same
        FIFO streams (higher seq, cumulative ack) covers this one
        before the commit acknowledgement escapes.
        """
        targets = self._enqueue_by_key(
            request.writes,
            "prepare",
            txn_id=request.txn_id,
            coordinator=request.coordinator,
            round=request.round,
        )
        if request.coordinator != self.node_id:
            yield from self._await_acks(targets)

    def note_abort(self, txn_id: int, writes, round_no: int = 0) -> None:
        """Stream the unstaging of an aborted prepare (asynchronous)."""
        self._enqueue_by_key(
            dict(writes) if not isinstance(writes, dict) else writes,
            "abort",
            txn_id=txn_id,
            round=round_no,
        )

    def replicate_decision(self, txn_id: int, seq_no: int, commit_vc, collected):
        """Stream a coordinator's commit decision; sync-gate the ack.

        Decision records go to *every* stream this node keeps (not just
        the written keys' backups): the promotion protocol re-announces
        them, so each backup must hold the contiguous decision prefix.
        """
        targets: List[Tuple[ReplicationStream, int]] = []
        for backup in self._all_backups():
            seq = self._enqueue(
                backup,
                "decision",
                txn_id=txn_id,
                origin=self.node_id,
                seq_no=seq_no,
                commit_vc=commit_vc,
                collected=collected,
            )
            if seq is not None:
                targets.append((self.streams[backup], seq))
        yield from self._await_acks(targets)

    def note_apply(self, body: DecideBody, writes: Dict[Hashable, object]) -> None:
        """Stream an installed commit's versions, plus the new frontier.

        Called right after the install and clock advance, so the
        carried frontier provably covers every version a backed key
        holds below it (the read-forwarding soundness invariant).
        Backups not touched by these writes get a coalesced
        clock-only frontier record instead.
        """
        frontier = self.owner.site_vc.to_tuple()
        targets = self._enqueue_by_key(
            writes,
            "apply",
            txn_id=body.txn_id,
            origin=body.origin,
            seq_no=body.seq_no,
            commit_vc=body.commit_vc,
            collected=body.collected,
            frontier=frontier,
        )
        touched = {stream.backup for stream, _seq in targets}
        for backup in self._all_backups():
            if backup not in touched:
                self._enqueue(backup, "frontier", frontier=frontier)

    def note_frontier(self) -> None:
        """Stream a clock-only freshness update (coalesced per stream)."""
        frontier = self.owner.site_vc.to_tuple()
        for backup in self._all_backups():
            self._enqueue(backup, "frontier", frontier=frontier)

    # ------------------------------------------------------------------
    # Backup side: the REPLICATE handler
    # ------------------------------------------------------------------
    def on_replicate(self, envelope) -> None:
        """Apply a stream batch in order; reply the cumulative ack.

        Plain (non-generator) handler: applies are synchronous verbatim
        installs, so a whole batch lands atomically at delivery time.
        Records at or below the applied mark are duplicates from a
        retransmission and are dropped; out-of-order records (an
        earlier batch lost) wait in the buffer until the gap closes.
        """
        rpc = self.owner.node.rpc
        body: ReplicateBody = rpc.body_of(envelope)
        state = self.backup_state.get(body.primary)
        if state is None:
            state = BackupState()
            self.backup_state[body.primary] = state
        if state.closed:
            rpc.reply(envelope, ReplicateAckBody(-1))
            return
        for entry in body.entries:
            if entry.seq <= state.applied:
                continue
            state.buffer[entry.seq] = entry
        while state.applied + 1 in state.buffer:
            entry = state.buffer.pop(state.applied + 1)
            self._apply_stream_entry(body.primary, state, entry)
            state.applied += 1
        rpc.reply(envelope, ReplicateAckBody(state.applied))

    def _apply_stream_entry(
        self, primary: int, state: BackupState, entry: ReplicationEntry
    ) -> None:
        kind = entry.kind
        if kind == "prepare":
            state.staged[entry.txn_id] = entry
        elif kind == "abort":
            staged = state.staged.get(entry.txn_id)
            if staged is not None and staged.round == entry.round:
                del state.staged[entry.txn_id]
        elif kind == "decision":
            state.decisions[entry.txn_id] = entry
        elif kind == "apply":
            state.staged.pop(entry.txn_id, None)
            commit_vc = VectorClock(entry.commit_vc)
            store = self.owner.store
            now = self.sim.now
            for key, value in entry.writes:
                # Verbatim install, in stream order: per-key conflicts
                # were lock-serialized at the primary, so the backup's
                # chains -- including their vids -- replay the
                # primary's exactly.  The backup's own clock is never
                # touched; it advances through the normal Propagate/
                # Decide traffic like any other node.
                store.install(
                    key,
                    value,
                    commit_vc.copy(),
                    origin=entry.origin,
                    seq=entry.seq_no,
                    writer_txn=entry.txn_id,
                    installed_at=now,
                )
            if entry.frontier is not None:
                state.frontier = entry.frontier
        elif kind == "frontier":
            state.frontier = entry.frontier
        wal = self.owner.wal
        if wal is not None:
            from repro.storage.wal import ReplicationRecord

            wal.append(
                ReplicationRecord(
                    primary=primary,
                    seq=entry.seq,
                    kind=entry.kind,
                    txn_id=entry.txn_id,
                    coordinator=entry.coordinator,
                    origin=entry.origin,
                    seq_no=entry.seq_no,
                    commit_vc=entry.commit_vc,
                    writes=tuple(entry.writes),
                    collected=entry.collected,
                    frontier=entry.frontier,
                    round=entry.round,
                )
            )

    # ------------------------------------------------------------------
    # Read-forwarding (backup side of a frozen read)
    # ------------------------------------------------------------------
    def _frontier_dominates(
        self, frontier: Optional[Sequence[int]], vc: Sequence[int]
    ) -> bool:
        if frontier is None:
            return False
        dropped = self.owner.membership.dropped
        for origin, target in enumerate(vc):
            if target <= 0 or origin in dropped:
                continue
            if origin >= len(frontier) or frontier[origin] < target:
                return False
        return True

    def serve_or_forward(self, envelope, request: ReadRequestBody):
        """Serve a frozen read locally, or forward it to the primary.

        Generator subroutine called from ``on_read_request``.  Returns
        True when the request was fully handled (replied, or
        deliberately dropped so the requester's own retry re-routes it)
        and False when this node turns out to *own* the key -- a
        failover promoted it mid-flight -- in which case the caller
        falls through to the normal read path.

        The local serve is Walter's rule against the carried snapshot
        (``max_vc=None``: the requester's clock never advances), gated
        on the replicated frontier dominating the snapshot: every
        version of a backed key at or below the frontier is provably in
        the local chains, so "freshest visible" here equals "freshest
        visible at the primary" for this snapshot.
        """
        owner = self.owner
        key = request.key
        shard_map = self.cluster_rep.shard_map
        primary = shard_map.site(key)
        if primary == self.node_id:
            return False
        state = self.backup_state.get(primary)
        store = owner.store
        if (
            state is not None
            and not state.closed
            and self._frontier_dominates(state.frontier, request.vc)
            and key in store
        ):
            chain = store.chain(key)
            try:
                version, _ = select_walter_version(
                    chain, request.vc, owner.membership.dropped
                )
            except RuntimeError:
                version = None
            if version is not None:
                latest_vid = chain.latest.vid
                cost = (
                    owner.costs.read_handler
                    + owner.costs.version_scan_item
                    * (latest_vid - version.vid + 1)
                )
                yield from owner.cpu.consume(cost)
                self.metrics.on_backup_read_served()
                if self.tracer._enabled:
                    self.tracer.emit(
                        self.node_id, "backup_read", txn=request.txn_id,
                        key=key, vid=version.vid, primary=primary,
                    )
                owner.node.rpc.reply(
                    envelope,
                    ReadReturnBody(version.value, None, version.vid, latest_vid),
                )
                return True
        # Forward: re-read the directory each attempt so a concurrent
        # failover re-routes the read to the promoted primary.
        body = ReadRequestBody(
            txn_id=request.txn_id,
            is_read_only=request.is_read_only,
            key=key,
            vc=request.vc,
            has_read=request.has_read,
        )
        for _attempt in range(8):
            target = shard_map.site(key)
            if target == self.node_id:
                return False  # promoted meanwhile: serve it ourselves
            ok, reply = yield from owner.node.rpc.call_settled(
                target, MessageType.READ_REQUEST, body
            )
            if ok:
                self.metrics.on_backup_read_forwarded()
                owner.node.rpc.reply(envelope, reply)
                return True
            yield self.sim.timeout(self.config.retry_interval)
        # Give up silently: the requester's own RPC timeout re-routes
        # the read (possibly to the promoted primary) -- replying a
        # stale value here would be the one unsound option.
        return True

    # ------------------------------------------------------------------
    # Failover support
    # ------------------------------------------------------------------
    def applied_from(self, primary: int) -> int:
        """Freshness of this node's stream from ``primary`` (-1: none)."""
        state = self.backup_state.get(primary)
        if state is None or state.closed:
            return -1
        return state.applied

    def retire(self) -> None:
        """Depose this node as a replication primary (it was failed
        over): every stream closes and no record is ever enqueued or
        pumped again, so a restart cannot retransmit stale records into
        a promoted successor."""
        self._retired = True
        for stream in self.streams.values():
            self._close_stream(stream)

    def close_backup_state(self, primary: int) -> None:
        """Refuse future stream traffic from a failed-over primary."""
        state = self.backup_state.get(primary)
        if state is not None:
            state.closed = True
            state.buffer.clear()

    def reset_stream(self, backup: int) -> None:
        """Reopen a stream after a verbatim re-bootstrap of the backup.

        The shipped chains already reflect everything this primary ever
        streamed, so the outbox clears and the ack jumps to the stream
        head -- the next record continues the dense numbering.
        """
        stream = self._stream(backup)
        stream.outbox.clear()
        stream.closed = False
        stream.acked = stream.next_seq - 1
        stream.inflight_hi = stream.acked
        stream.acked_cv.notify_all()

    def adopt_stream(
        self, primary: int, applied: int, frontier: Optional[Tuple[int, ...]]
    ) -> None:
        """Install fresh backup-side state after a verbatim bootstrap."""
        self.backup_state[primary] = BackupState(
            applied=applied, frontier=frontier
        )

    def on_recovered(self, replayed: Dict[int, dict]) -> None:
        """Durable-crash restart: the volatile stream state died.

        Primary-side outboxes are gone, so every stream closes -- the
        failover driver re-bootstraps live backups with a verbatim
        re-ship.  Backup-side state is re-adopted from the WAL replay
        (the rebuilt store already holds the replayed installs).
        """
        for stream in self.streams.values():
            self._close_stream(stream)
        self.backup_state.clear()
        self.restore(replayed)

    def restore(self, replayed: Dict[int, dict]) -> None:
        """Reinstall backup-side stream state rebuilt by WAL replay."""
        for primary, snapshot in replayed.items():
            state = BackupState(
                applied=snapshot.get("applied", 0),
                frontier=snapshot.get("frontier"),
            )
            state.staged = dict(snapshot.get("staged", {}))
            state.decisions = dict(snapshot.get("decisions", {}))
            self.backup_state[primary] = state


class ClusterReplication:
    """Cluster-wide replication state: placement, routing, failover.

    Constructed by :class:`repro.system.Cluster` when
    ``ReplicationConfig.enabled`` is set (requires a ShardMap
    directory); attaches a :class:`NodeReplication` to every MVCC node
    and registers the REPLICATE handlers.  The explicit ``placement``
    table is seeded deterministically from the directory
    (:func:`backups_for_shard`) and mutated only by failover --
    mirroring how the ShardMap itself is deterministic state mutated by
    migrations.
    """

    def __init__(self, cluster) -> None:
        self.cluster = cluster
        self.config: ReplicationConfig = cluster.config.replication
        self.sim = cluster.sim
        self.metrics = cluster.metrics
        self.tracer = cluster.tracer
        self.shard_map = cluster.directory
        #: Sites deposed by a failover (or crashed beyond repair); they
        #: receive no stream traffic and serve no backup reads.
        self.down: Set[int] = set()
        #: Bumped on every placement mutation (cache invalidation).
        self.version = 0
        #: shard -> backup ids (never contains the shard's owner).
        self.placement: Dict[int, Tuple[int, ...]] = {
            shard: backups_for_shard(
                self.shard_map, shard, self.config.replication_factor
            )
            for shard in range(self.shard_map.num_shards)
        }
        self.driver = FailoverDriver(self)
        for node in cluster.nodes:
            self.attach(node)

    def attach(self, node) -> None:
        """Wire one protocol node into the replication substrate."""
        node.replication = NodeReplication(node, self)
        node.node.on(MessageType.REPLICATE, node.replication.on_replicate)

    # ------------------------------------------------------------------
    # Placement queries
    # ------------------------------------------------------------------
    def backups_for_key(self, key: Hashable) -> Tuple[int, ...]:
        return self.placement.get(self.shard_map.shard_of(key), ())

    def is_excluded(self, node_id: int) -> bool:
        return (
            node_id in self.down
            or node_id in self.cluster._removed
            or self.cluster.network.is_crashed(node_id)
        )

    def read_targets(self, key: Hashable) -> List[int]:
        """Candidate servers for a read-only read of ``key``: the owner
        first, then every live backup (``read_from_backups`` only)."""
        owner = self.shard_map.site(key)
        targets = [owner]
        if self.config.read_from_backups:
            for backup in self.backups_for_key(key):
                if backup != owner and not self.is_excluded(backup):
                    targets.append(backup)
        return targets

    # ------------------------------------------------------------------
    # Foreground failover waits
    # ------------------------------------------------------------------
    def failover_armed(self) -> bool:
        return self.config.failover_timeout is not None

    def wait_for_failover(self, sites):
        """Park until every listed site owns no shards (failed over).

        Generator subroutine used by the commit retry loop: instead of
        aborting on a dead participant, the coordinator waits (bounded
        by ten failover timeouts) for the promotion to flip the dead
        site's shards, then re-prepares against the new owners.
        Returns True when the flip happened in time.
        """
        if not self.failover_armed():
            return False
        timeout = self.config.failover_timeout
        deadline = self.sim.now + timeout * 10
        tick = timeout / 2
        sites = list(sites)
        while True:
            if all(not self.shard_map.shards_of(site) for site in sites):
                return True
            if self.sim.now >= deadline:
                return False
            yield self.sim.timeout(tick)

    def wait_for_site_flip(self, key: Hashable, stale_owner: int):
        """Park until ``key`` routes away from ``stale_owner`` (bounded)."""
        if not self.failover_armed():
            return False
        timeout = self.config.failover_timeout
        deadline = self.sim.now + timeout * 10
        tick = timeout / 2
        while True:
            if self.shard_map.site(key) != stale_owner:
                return True
            if self.sim.now >= deadline:
                return False
            yield self.sim.timeout(tick)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        self.driver.start()

    def stop(self) -> None:
        self.driver.stop()


class FailoverDriver:
    """Detector-driven promotion of backups over dead shard owners.

    Runs as a cluster-level background loop (the Rebalancer's
    generation-token lifecycle) when ``failover_timeout`` is set.  Each
    scan asks the *live* nodes' armed accrual detectors for a majority
    verdict on every shard owner -- a node partitioned away sees
    everyone dead, but cannot out-vote the connected majority, so a
    pairwise partition never triggers a spurious failover.  A dead
    owner's shards are promoted to the freshest live backup of each
    (highest applied stream sequence, ties to the lowest id), and the
    scan also repairs broken streams by re-bootstrapping restarted
    backups from their primaries.
    """

    def __init__(self, rep: ClusterReplication) -> None:
        self.rep = rep
        self.cluster = rep.cluster
        self.sim = rep.sim
        self.config = rep.config
        self.metrics = rep.metrics
        self.tracer = rep.tracer
        self._started = False
        self._generation = 0

    # ------------------------------------------------------------------
    # Lifecycle (generation-token idempotent start/stop)
    # ------------------------------------------------------------------
    def start(self) -> None:
        if self.config.failover_timeout is None or self._started:
            return
        self._started = True
        self._generation += 1
        self.sim.spawn(self._loop(self._generation), name="failover-driver")

    def stop(self) -> None:
        self._started = False
        self._generation += 1

    def _loop(self, generation: int):
        interval = self.config.failover_timeout / 2
        while self._generation == generation:
            yield self.sim.timeout(interval)
            if self._generation != generation:
                return
            yield from self._scan()

    # ------------------------------------------------------------------
    # Scan
    # ------------------------------------------------------------------
    def _live(self, node_id: int) -> bool:
        return (
            node_id not in self.rep.down
            and node_id not in self.cluster._removed
            and not self.cluster.network.is_crashed(node_id)
        )

    def _majority_dead(self, target: int) -> bool:
        """Do a majority of live armed detectors classify ``target`` dead?

        Crashed voters are excluded (their silent detectors would see
        everyone dead); so are deposed and removed sites.  With no
        armed detectors anywhere the answer is always False -- failover
        requires the healing layer's detector to be configured.
        """
        votes = 0
        voters = 0
        for node in self.cluster.nodes:
            node_id = node.node_id
            if node_id == target or not self._live(node_id):
                continue
            healing = getattr(node, "healing", None)
            if healing is None or not healing.armed:
                continue
            voters += 1
            if healing.detector.is_dead(target):
                votes += 1
        return voters > 0 and votes * 2 > voters

    def _scan(self):
        rep = self.rep
        for primary in list(rep.shard_map.node_ids):
            if primary in self.cluster._removed:
                continue
            if not rep.shard_map.shards_of(primary):
                continue
            # A site already deposed but still owning shards is a
            # partially-failed promotion (its successor crashed
            # mid-promotion): retry until every shard flips.
            if primary in rep.down or self._majority_dead(primary):
                yield from self.fail_over(primary)
        yield from self._repair_backups()

    # ------------------------------------------------------------------
    # Failover
    # ------------------------------------------------------------------
    def fail_over(self, dead: int):
        """Depose ``dead`` and promote the freshest backup per shard."""
        rep = self.rep
        nodes = self.cluster.nodes
        first = dead not in rep.down
        rep.down.add(dead)
        rep.version += 1
        dead_rep = getattr(nodes[dead], "replication", None)
        if dead_rep is not None:
            dead_rep.retire()
        if first and self.tracer._enabled:
            self.tracer.emit(dead, "failover_start", shards=len(rep.shard_map.shards_of(dead)))
        shards = rep.shard_map.shards_of(dead)
        by_successor: Dict[int, List[int]] = {}
        orphaned: List[int] = []
        for shard in shards:
            live_backups = [
                b for b in rep.placement.get(shard, ()) if self._live(b)
            ]
            if not live_backups:
                orphaned.append(shard)
                continue
            successor = max(
                live_backups,
                key=lambda b: (nodes[b].replication.applied_from(dead), -b),
            )
            by_successor.setdefault(successor, []).append(shard)
        promoted = 0
        for successor in sorted(by_successor):
            done = yield from self._promote(
                dead, successor, by_successor[successor]
            )
            if done:
                promoted += len(by_successor[successor])
        if promoted and not rep.shard_map.shards_of(dead):
            # The deposed site owns nothing anymore: refuse any
            # straggling stream traffic from it, everywhere.
            for node in nodes:
                node_rep = getattr(node, "replication", None)
                if node_rep is not None and node.node_id != dead:
                    node_rep.close_backup_state(dead)
            self.metrics.on_failover_completed(promoted)
            if self.tracer._enabled:
                self.tracer.emit(
                    dead, "failover_complete", shards=promoted,
                )
        if orphaned and self.tracer._enabled:
            self.tracer.emit(dead, "failover_orphaned", shards=tuple(orphaned))

    def _promote(self, dead: int, successor: int, shards: List[int]):
        """Promote ``successor`` to own ``shards`` of the dead primary.

        Behind the membership fence: (1) resolve every staged prepare
        through the replicated decision log, a TXN_STATUS query to its
        live coordinator, or -- when the coordinator is unreachable --
        a transplant into the prepared table so the re-announced Decide
        or the termination protocol finishes the job; (2) re-announce
        the dead coordinator's decisions (a contiguous seq prefix, in
        order) to every live peer, unwedging participants that would
        otherwise presume abort and advancing ``siteVC[dead]``
        everywhere; (3) flip the shard-map entries.  Afterwards the
        shard's backup set is recomputed and re-bootstrapped from the
        new primary.
        """
        rep = self.rep
        cluster = self.cluster
        shard_map = rep.shard_map
        successor_node = cluster.nodes[successor]
        incarnation = successor_node._incarnation
        shard_set = set(shards)
        shard_of = shard_map.shard_of
        state = successor_node.replication.backup_state.get(dead)
        staged: List = []
        decisions: List = []
        if state is not None and not state.closed:
            # Stream order for staged installs: per-key conflicts were
            # lock-serialized at the dead primary, so prepare-stream
            # order is install order.  Decisions re-announce in commit
            # (seq_no) order for the in-order apply rule.
            staged = sorted(state.staged.values(), key=lambda e: e.seq)
            decisions = sorted(state.decisions.values(), key=lambda e: e.seq_no)
        keys = {
            key for key in successor_node.store.keys()
            if shard_of(key) in shard_set
        }
        for entry in staged:
            keys.update(
                key for key, _value in entry.writes
                if shard_of(key) in shard_set
            )
        keys = sorted(keys, key=repr)
        successor_node.membership.fence(keys)
        flipped = False
        installed = 0
        try:
            for entry in staged:
                writes = tuple(
                    (key, value) for key, value in entry.writes
                    if shard_of(key) in shard_set
                )
                if not writes:
                    continue
                resolved = None
                decision = state.decisions.get(entry.txn_id)
                if decision is not None:
                    resolved = (
                        decision.origin, decision.seq_no, decision.commit_vc,
                    )
                elif entry.coordinator == dead:
                    # The dead primary coordinated it and logged no
                    # decision on this stream: by decision-before-
                    # Decide, no participant installed it.  Presumed
                    # abort is exact, not a guess.
                    resolved = False
                elif self._live(entry.coordinator):
                    ok, reply = yield from successor_node.node.rpc.call_settled(
                        entry.coordinator,
                        MessageType.TXN_STATUS,
                        TxnStatusRequestBody(entry.txn_id),
                    )
                    if (
                        successor_node._incarnation != incarnation
                        or not self._live(successor)
                    ):
                        return False
                    if ok:
                        if reply.committed:
                            resolved = (
                                reply.origin, reply.seq_no, reply.commit_vc,
                            )
                        else:
                            resolved = False
                if resolved is False:
                    continue
                if resolved is None:
                    # Coordinator unreachable (it may be mid-failover
                    # itself): park the writes in the prepared table --
                    # no locks held -- so its successor's re-announced
                    # Decide, or the termination query, resolves them.
                    self._transplant_staged(successor_node, entry, writes)
                    continue
                origin, seq_no, commit_vc = resolved
                vc = VectorClock(commit_vc)
                for key, value in writes:
                    if not self._has_version(
                        successor_node, key, origin, seq_no
                    ):
                        successor_node.store.install(
                            key,
                            value,
                            vc.copy(),
                            origin=origin,
                            seq=seq_no,
                            writer_txn=entry.txn_id,
                            installed_at=self.sim.now,
                        )
                        installed += 1
            peers = [
                node.node_id for node in cluster.nodes
                if self._live(node.node_id)
            ]
            for entry in decisions:
                body = DecideBody(
                    txn_id=entry.txn_id,
                    outcome=True,
                    origin=dead,
                    seq_no=entry.seq_no,
                    commit_vc=entry.commit_vc,
                    collected=entry.collected,
                    round=entry.round,
                )
                for peer in peers:
                    successor_node.node.send(peer, MessageType.DECIDE, body)
            if state is not None:
                state.staged.clear()
            # Cutover: flip each shard's owner entry under the fence.
            for shard in shards:
                shard_map.assign(shard, successor)
            flipped = True
        finally:
            successor_node.membership.unfence(keys)
        if not flipped:
            return False
        if self.tracer._enabled:
            self.tracer.emit(
                successor, "failover_promoted", dead=dead,
                shards=tuple(shards), staged_installed=installed,
                decisions=len(decisions),
            )
        # Recompute the flipped shards' backup sets (keep live
        # survivors, top up deterministically) and re-bootstrap each
        # from the new primary -- a verbatim re-ship also restarts the
        # record streams from a clean, provably consistent point.
        wanted = self.config.replication_factor - 1
        for shard in shards:
            survivors = [
                b for b in rep.placement.get(shard, ())
                if b != successor and self._live(b)
            ]
            if len(survivors) < wanted:
                pool = [
                    n for n in sorted(shard_map.node_ids)
                    if self._live(n) and n != successor and n not in survivors
                ]
                rotation = shard % len(pool) if pool else 0
                pool = pool[rotation:] + pool[:rotation]
                for candidate in pool:
                    if len(survivors) >= wanted:
                        break
                    survivors.append(candidate)
            rep.placement[shard] = tuple(survivors)
        rep.version += 1
        backups = sorted(
            {b for shard in shards for b in rep.placement[shard]}
        )
        for backup in backups:
            backed = [s for s in shards if backup in rep.placement[s]]
            yield from self._bootstrap_backup(successor, backup, backed)
        return True

    @staticmethod
    def _has_version(node, key: Hashable, origin: int, seq_no: int) -> bool:
        if key not in node.store:
            return False
        for version in node.store.chain(key).newest_first():
            if version.origin == origin and version.seq == seq_no:
                return True
            if version.origin == origin and version.seq < seq_no:
                break
        return False

    def _transplant_staged(self, node, entry, writes) -> None:
        """Park unresolved staged writes in the node's prepared table."""
        from repro.core.mvcc_node import _PreparedTxn
        from repro.core.wire import VoteBody

        if entry.txn_id in node._prepared:
            return
        transplanted = _PreparedTxn(
            dict(writes),
            [],  # no locks: the dead primary's locks died with it
            VoteBody(True),
            entry.coordinator,
            round=entry.round,
        )
        node._prepared[entry.txn_id] = transplanted
        lease = node.shared.config.prepared_lease
        if lease is not None:
            node.sim.call_later(
                lease, node._expire_prepared, entry.txn_id, transplanted
            )

    # ------------------------------------------------------------------
    # Backup repair / bootstrap
    # ------------------------------------------------------------------
    def _repair_backups(self):
        """Re-bootstrap live backups whose streams closed.

        A stream closes when its backup crashed or restarted with lost
        stream state; once both ends are live again, a verbatim re-ship
        from the primary resumes replication from a consistent point.
        """
        rep = self.rep
        for node in self.cluster.nodes:
            node_rep = getattr(node, "replication", None)
            if (
                node_rep is None
                or node_rep._retired
                or not self._live(node.node_id)
            ):
                continue
            for backup, stream in list(node_rep.streams.items()):
                if not stream.closed or not self._live(backup):
                    continue
                shards = [
                    shard
                    for shard in rep.shard_map.shards_of(node.node_id)
                    if backup in rep.placement.get(shard, ())
                ]
                if not shards:
                    continue
                yield from self._bootstrap_backup(node.node_id, backup, shards)

    def _bootstrap_backup(
        self, primary_id: int, backup_id: int, shards: List[int]
    ):
        """Verbatim-ship ``shards`` to a backup and restart its stream.

        The Rebalancer's fence/drain/ship discipline without the
        ownership flip: chains are stable for the transfer, and the
        frontier snapshot is taken before the unfence, so every backed
        version at or below it is provably in the shipped chains.
        """
        rep = self.rep
        cluster = self.cluster
        if not self._live(primary_id) or not self._live(backup_id):
            return False
        primary = cluster.nodes[primary_id]
        backup = cluster.nodes[backup_id]
        shard_map = rep.shard_map
        shard_set = set(shards)
        incarnation = primary._incarnation
        keys = sorted(
            (
                key for key in primary.store.keys()
                if shard_map.shard_of(key) in shard_set
            ),
            key=repr,
        )
        primary.membership.fence(keys)
        shipped = False
        frontier: Optional[Tuple[int, ...]] = None
        try:
            drained = yield from cluster._drain_write_locks(primary, keys)
            if (
                drained
                and primary._incarnation == incarnation
                and self._live(backup_id)
            ):
                if keys:
                    shipped = yield from primary.healing.ship_shard(
                        backup_id, keys, incarnation
                    )
                else:
                    shipped = True
                frontier = primary.site_vc.to_tuple()
        finally:
            primary.membership.unfence(keys)
        if not shipped or primary._incarnation != incarnation:
            return False
        primary.replication.reset_stream(backup_id)
        backup.replication.adopt_stream(
            primary_id,
            applied=primary.replication.streams[backup_id].acked,
            frontier=frontier,
        )
        self.metrics.on_backup_bootstrapped()
        if self.tracer._enabled:
            self.tracer.emit(
                primary_id, "backup_bootstrap", backup=backup_id,
                shards=tuple(shards), keys=len(keys),
            )
        return True
