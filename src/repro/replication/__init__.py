"""Site availability substrate: primary-backup replication.

The paper's system model (Section 2.2) assumes "each preferred site is
highly available, meaning the site is expected to implement a replication
technique to resist faults", and leaves that technique out of the
concurrency-control description.  This package supplies it: a
primary-backup replicated state machine with synchronous log shipping,
heartbeat failure detection, and deterministic failover, built on the
same simulation substrate as the transactional protocols.

Scope notes, mirroring the paper's:

* crash-stop failures, no network partitions (real deployments use a
  consensus protocol -- the paper cites Paxos [19] -- for partition
  tolerance; view changes here are heartbeat-driven and deterministic);
* the transactional core treats a preferred site as one logical node;
  this package shows how that logical node survives replica crashes with
  no committed write lost.
"""

from repro.replication.state_machine import KVStateMachine, StateMachine
from repro.replication.replica import Replica, ReplicaRole
from repro.replication.group import ReplicaGroup

__all__ = [
    "KVStateMachine",
    "Replica",
    "ReplicaGroup",
    "ReplicaRole",
    "StateMachine",
]
