"""Site availability substrate: per-shard primary-backup replication.

The paper's system model (Section 2.2) assumes "each preferred site is
highly available, meaning the site is expected to implement a replication
technique to resist faults", and leaves that technique out of the
concurrency-control description.  This package supplies it, integrated
under the transactional core: with
:class:`repro.config.ReplicationConfig` enabled on a sharded cluster,
every shard's owner streams its prepare/decision/apply records to
deterministically placed backups (``repro.replication.shard``), sync mode
gates commit acknowledgment on backup acknowledgment, the accrual
failure detector drives live failover behind the shard fence machinery,
and read-only FW-KV reads can be served straight from backups when the
replicated frontier dominates the requested snapshot (see
``docs/replication.md``).

Scope notes, mirroring the paper's:

* crash-stop failures plus network partitions handled by majority
  failure attestation (real deployments use a consensus protocol -- the
  paper cites Paxos [19] -- for full partition tolerance);
* the transactional core treats a preferred site as one logical node;
  this package shows how that logical node survives replica crashes with
  no acknowledged commit lost and its keys readable throughout.
"""

from repro.replication.shard import (
    ClusterReplication,
    FailoverDriver,
    NodeReplication,
    backups_for_shard,
)

__all__ = [
    "ClusterReplication",
    "FailoverDriver",
    "NodeReplication",
    "backups_for_shard",
]
