"""Configuration objects shared across the FW-KV reproduction.

Three layers of configuration mirror the paper's testbed description
(Section 5): the network (CloudLab's 10 Gb/s fabric, ~20 microseconds per
message), per-operation CPU costs (our substitution for real protocol code
executing on 28-core c6320 machines), and the cluster/run shape (nodes,
closed-loop clients, lock timeout, seed).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import ClassVar, Dict, Mapping, Optional

#: Message-type label for Walter/FW-KV asynchronous propagation, used by
#: :class:`NetworkConfig.message_delays` to inject congestion.
PROPAGATE = "Propagate"


class ConfigSerde:
    """Plain-dict round-trip shared by every config dataclass.

    ``to_dict()`` produces a JSON-serialisable nested dict (every config
    field is a scalar, a string-keyed dict of scalars, or another config
    dataclass), and ``from_dict()`` rebuilds an equal instance, recursing
    into the nested configs named by ``_nested``.  The harness and CLI
    use this to persist experiment configurations without per-class
    ad-hoc serialisation code; the invariant is::

        cls.from_dict(cfg.to_dict()) == cfg

    for every config class, including through a ``json.dumps``/``loads``
    round trip.  Unknown keys raise ``ValueError`` (a misspelled knob in
    a config file must fail loudly, not silently fall back to defaults).
    """

    #: field name -> nested config class to recurse into on from_dict.
    _nested: ClassVar[Mapping[str, type]] = {}

    def to_dict(self) -> Dict[str, object]:
        """This config (and every nested config) as a plain nested dict."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, object]):
        """Rebuild an instance from :meth:`to_dict` output.

        Missing keys keep their dataclass defaults, so a hand-written
        partial dict is a valid overlay on the default configuration.
        """
        names = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(data) - names)
        if unknown:
            raise ValueError(
                f"{cls.__name__}.from_dict: unknown keys {unknown}"
            )
        kwargs = {}
        for key, value in data.items():
            nested = cls._nested.get(key)
            if nested is not None and isinstance(value, Mapping):
                value = nested.from_dict(value)
            kwargs[key] = value
        return cls(**kwargs)


@dataclass
class RpcConfig(ConfigSerde):
    """Timeout/retry policy for request/reply RPCs.

    The defaults (``request_timeout=None``) reproduce the paper's system
    model of reliable asynchronous channels: a request waits forever for
    its reply.  Setting a timeout departs from that model -- see DESIGN.md
    "Failure model & recovery" -- and arms the full retry machinery:
    seeded-deterministic exponential backoff with jitter, capped attempts,
    and stale-reply dropping at the endpoint.
    """

    #: Per-attempt reply deadline; ``None`` waits forever (paper model).
    request_timeout: Optional[float] = None
    #: Total attempts (first try plus retries) before the caller gives up
    #: with :class:`~repro.net.rpc.RpcTimeoutError`.
    max_attempts: int = 3
    #: Backoff before retry ``n`` is ``backoff_base * backoff_factor**(n-1)``
    #: capped at ``backoff_cap``, plus up to ``backoff_jitter`` of itself
    #: drawn from the endpoint's seeded RNG (deterministic per seed).
    backoff_base: float = 100e-6
    backoff_factor: float = 2.0
    backoff_cap: float = 2e-3
    backoff_jitter: float = 0.5


@dataclass
class NetworkConfig(ConfigSerde):
    """Latency model for the simulated message fabric.

    ``base_latency`` matches the paper's testbed ("a 10Gb/s network, which
    delivers a message in about 20 microseconds").  ``message_delays`` maps a
    message type to extra one-way delay, the mechanism behind the paper's
    delayed-propagation experiments (Figures 7 and 9a add 1 ms to Propagate
    messages, "around 5x slowdown of network delay ... due to congestion").

    ``loss_rate``/``duplicate_rate`` inject probabilistic message loss and
    duplication (seeded, non-loopback traffic only); directed partitions are
    driven at runtime via :meth:`repro.net.network.Network.partition`.
    """

    base_latency: float = 20e-6
    jitter: float = 2e-6
    self_latency: float = 1e-6
    message_delays: Dict[str, float] = field(default_factory=dict)
    #: Probability a non-loopback message is silently dropped in flight.
    loss_rate: float = 0.0
    #: Probability a delivered non-loopback message arrives a second time.
    duplicate_rate: float = 0.0
    #: Request/reply timeout and retry policy for every node's endpoint.
    rpc: RpcConfig = field(default_factory=RpcConfig)

    _nested = {"rpc": RpcConfig}

    def with_propagate_delay(self, delay: float) -> "NetworkConfig":
        """A copy of this config with ``delay`` added to Propagate messages."""
        delays = dict(self.message_delays)
        delays[PROPAGATE] = delay
        return dataclasses.replace(self, message_delays=delays)


@dataclass
class TransportConfig(ConfigSerde):
    """Which message fabric the cluster runs on (see docs/networking.md).

    ``kind="sim"`` (default) keeps the deterministic simulated network --
    the home for correctness work, bit-identical to the pre-seam
    behaviour.  ``kind="socket"`` runs the identical protocol code over
    real asyncio TCP sockets with the canonical byte serde on every
    message: virtual time is mapped onto the wall clock, latency comes
    from the real network stack, and runs are no longer deterministic.
    Every knob except ``kind`` concerns only the socket backend.
    """

    #: ``"sim"`` or ``"socket"``.
    kind: str = "sim"
    #: Bind address for the socket backend's listener.
    host: str = "127.0.0.1"
    #: Listener port; ``0`` (default) binds an ephemeral port, reported
    #: via ``SocketTransport.listen_address`` for the launcher handshake.
    base_port: int = 0
    #: Virtual seconds the socket pump advances per wall second.  ``1.0``
    #: maps virtual time 1:1 onto the wall clock; below 1 dilates every
    #: protocol timer (lock timeouts, leases) to give real-network
    #: latency more headroom per virtual second.
    time_scale: float = 1.0
    #: Wall-second deadline for one TCP connect attempt.
    connect_timeout: float = 5.0
    #: Connect attempts per link before queued frames are dropped
    #: (counted as ``unreachable`` in ``NetworkStats.drops_by_reason``).
    max_connect_attempts: int = 8
    #: Reconnect backoff reuses the :class:`RpcConfig` ladder
    #: (``backoff_base``/``factor``/``cap``/``jitter``) scaled by this
    #: factor -- the simulator's microsecond-scale defaults would
    #: busy-spin a real TCP reconnect loop.
    reconnect_backoff_scale: float = 500.0
    #: Wall seconds the socket pump tolerates with *nothing* happening
    #: (no events executed, no frames arriving) while waiting on a
    #: ``stop`` process before declaring the run stalled.
    idle_timeout: float = 10.0
    #: Wall seconds of inbound silence after the local schedule drains
    #: that an unbounded pump treats as cluster quiescence.
    drain_grace: float = 0.05
    #: Waits shorter than this (wall seconds) spin through the pump loop
    #: instead of sleeping; microsecond-scale virtual timers would
    #: otherwise pay an OS-wakeup per event.
    spin_threshold: float = 500e-6

    def __post_init__(self) -> None:
        if self.kind not in ("sim", "socket"):
            raise ValueError("transport kind must be 'sim' or 'socket'")
        if self.time_scale <= 0:
            raise ValueError("time_scale must be positive")
        if not 0 <= self.base_port <= 65535:
            raise ValueError("base_port must be a valid TCP port (or 0)")
        if self.max_connect_attempts < 1:
            raise ValueError("max_connect_attempts must be >= 1")
        if self.connect_timeout <= 0:
            raise ValueError("connect_timeout must be positive")


@dataclass
class BatchingConfig(ConfigSerde):
    """Batching of background protocol traffic (Propagate / Remove fan-out).

    Every committed update transaction fans out one Propagate envelope per
    uninvolved node (Alg. 4 line 27), and every committed read-only
    transaction contributes Remove identifiers per destination; at scale
    these background messages dominate the event count.  This config
    coalesces them.  The defaults preserve the unbatched behaviour
    bit-for-bit: ``propagate_window=0.0`` sends one Propagate per commit
    per uninvolved node at commit time, exactly as before.
    """

    #: Virtual-seconds window for Propagate fan-out batching.  ``0.0``
    #: (default) sends immediately, one message per (commit, uninvolved
    #: node).  ``> 0`` buffers the origin's committed sequence numbers per
    #: destination and flushes them as one Propagate carrying the whole
    #: window (``PropagateBody.seq_nos``), delaying remote snapshot
    #: advancement by at most the window.
    propagate_window: float = 0.0
    #: FW-KV Remove coalescing interval: identifiers are batched per
    #: destination and flushed on this timer.  ``None`` (default) falls
    #: back to :attr:`ClusterConfig.remove_flush_interval`, the historical
    #: location of this knob.
    remove_flush_interval: Optional[float] = None
    #: Adaptive windows: instead of the fixed ``propagate_window`` /
    #: Remove interval, each destination's window is driven by observed
    #: queue depth -- a flush that carried more than a small target depth
    #: grows the window additively by ``adaptive_step`` (backlog: batching
    #: pays), a flush that carried one item decays it multiplicatively by
    #: ``adaptive_decay`` toward zero (idle: send immediately), and
    #: depths in between hold it, so windows converge a few
    #: inter-arrivals wide.  A closed (zero) window sends immediately and
    #: reopens only once consecutive sends to that destination arrive
    #: within ``adaptive_step`` of each other.  Windows never exceed
    #: ``max_window``, bounding snapshot staleness.
    adaptive: bool = False
    #: Hard cap on any adaptive window (virtual seconds).
    max_window: float = 1e-3
    #: Additive window growth per backlogged flush.
    adaptive_step: float = 50e-6
    #: Multiplicative window decay per single-item flush.
    adaptive_decay: float = 0.5


@dataclass
class CheckpointConfig(ConfigSerde):
    """WAL checkpointing and truncation (see docs/self_healing.md).

    A checkpoint is a fingerprinted snapshot of the node's durable state
    (store chains, ``siteVC``, ``CurrSeqNo``, in-doubt prepares, decision
    log) appended to the WAL; recovery replays snapshot-then-suffix, so
    replay cost stops growing with history length.  Records below the
    newest checkpoint are truncated once the anti-entropy digests show the
    node's own commit frontier at checkpoint time applied at *every* peer
    -- the precise-GC condition under which no peer can ever again need a
    truncated decision or prepare.
    """

    #: Virtual-seconds period between checkpoint attempts by the healing
    #: daemon; ``None`` (default) disables automatic checkpointing
    #: (tests may still call ``MVCCNode.checkpoint_now`` directly).
    interval: Optional[float] = None
    #: Skip an automatic checkpoint unless at least this many WAL records
    #: accumulated since the previous one (avoids checkpoint spam on idle
    #: nodes).
    min_records: int = 32
    #: Truncate records below the newest stable checkpoint.  Requires the
    #: per-peer frontier tracking fed by anti-entropy digests and
    #: heartbeats; with no frontier evidence the log is never truncated.
    truncate: bool = True
    #: Bounded retention: a peer whose own-origin frontier evidence lags
    #: this node's frontier by more than ``max_peer_lag`` (or has never
    #: been heard from at all) is *stranded* -- excluded from the
    #: stable-floor evidence, so truncation proceeds without it and the
    #: peer becomes repairable only by checkpoint snapshot transfer
    #: (:class:`SnapshotTransferConfig`).  ``None`` (default) keeps the
    #: strict rule: every peer must prove the checkpoint frontier
    #: applied before anything is truncated, so no peer is ever left
    #: beyond record-by-record repair.
    max_peer_lag: Optional[int] = None


@dataclass
class SnapshotTransferConfig(ConfigSerde):
    """Checkpoint snapshot shipping for far-behind peers.

    Anti-entropy repairs a lagging peer record by record, streaming the
    full Decides above the peer's applied frontier.  WAL truncation
    breaks that for a peer whose gap predates the sender's truncated
    history: the decisions at or below the truncation floor survive only
    inside the newest checkpoint.  When a gossip digest reveals such a
    peer, the sender ships that fingerprinted
    :class:`~repro.storage.wal.CheckpointRecord` over the wire in
    bounded chunks (``SNAPSHOT_OFFER`` / ``SNAPSHOT_CHUNK`` /
    ``SNAPSHOT_ACK``); the receiver installs it behind its read/prepare
    fence, verifies the fingerprint, and the ordinary Decide push tops
    up the suffix.  See docs/self_healing.md.

    Enabled by default: a transfer can only trigger after a truncation
    has actually created an unrepairable gap, so runs that never
    truncate (including every tier-1 configuration) are bit-identical
    with the feature on or off.
    """

    #: Master switch for offering snapshots to truncation-gapped peers.
    enabled: bool = True
    #: Store chains per ``SNAPSHOT_CHUNK`` message (flow control: the
    #: snapshot is streamed, never shipped as one unbounded payload).
    chunk_records: int = 64
    #: Extra own-origin lag (beyond simply sitting below the truncation
    #: floor) required before a snapshot is offered.  ``0`` (default)
    #: offers as soon as record-by-record repair is impossible; raising
    #: it delays the offer, e.g. to let a flapping peer answer digests
    #: first.  A peer below the floor cannot converge without either a
    #: snapshot or a restart, so nonzero values only postpone repair.
    offer_threshold: int = 0
    #: Gossip peer-selection bias toward the most-lagging peer: each
    #: peer's selection weight is ``1 + lag_bias * lag`` where ``lag``
    #: is its own-origin digest gap.  ``0.0`` (default) keeps the
    #: historical seeded-uniform choice bit for bit; when every known
    #: frontier is equal the choice also falls back to uniform, drawing
    #: from the same RNG stream in the same way.
    lag_bias: float = 0.0


@dataclass
class HealingConfig(ConfigSerde):
    """Self-healing layer: failure detection, anti-entropy, checkpoints.

    Three independently toggleable pieces (see docs/self_healing.md):

    * the **failure detector** (default on) classifies peers
      alive/suspect/dead from message arrivals and RPC timeouts, caps the
      retry budget of calls to suspect/dead peers, and lets coordinators
      fail commits fast instead of burning the full timeout ladder on a
      participant that is known dead.  With the paper-model defaults
      (``rpc.request_timeout=None``, no heartbeats) the detector receives
      no evidence and is completely inert -- tier-1 behaviour is
      bit-identical;
    * the **anti-entropy gossip loop** (default off) periodically
      exchanges ``siteVC`` digests with a seeded-random peer and streams
      exactly the missing per-origin sequence numbers both ways, closing
      healed-partition gaps without a restart and without foreground
      traffic;
    * **checkpointing** (:class:`CheckpointConfig`, default off) bounds
      WAL replay cost.
    """

    #: Master switch for the accrual failure detector.
    detector_enabled: bool = True
    #: Active heartbeat period; ``None`` (default) relies purely on
    #: passive evidence (foreground arrivals and RPC timeouts).
    heartbeat_interval: Optional[float] = None
    #: Seeded jitter fraction applied to each heartbeat period (desyncs
    #: the per-node loops, like production gossip implementations).
    heartbeat_jitter: float = 0.1
    #: Skip a heartbeat to a peer the node already messaged within the
    #: last interval -- foreground traffic is itself liveness evidence.
    heartbeat_suppression: bool = True
    #: Accrual (phi) thresholds, in units of the observed mean
    #: inter-arrival time, used only when heartbeats are active.
    phi_suspect: float = 3.0
    phi_dead: float = 8.0
    #: Passive thresholds: consecutive RPC timeouts against a peer before
    #: it is classified suspect / dead.
    suspect_after_timeouts: int = 2
    dead_after_timeouts: int = 5
    #: Retry-budget caps fed into :meth:`repro.net.rpc.RpcEndpoint.call`:
    #: calls to a DEAD peer get one attempt, calls to a SUSPECT peer at
    #: most ``suspect_max_attempts``.
    suspect_max_attempts: int = 2
    #: Coordinator fail-fast: an update commit with a known-dead
    #: participant aborts immediately (``AbortReason.PEER_DEAD``) instead
    #: of paying the prepare timeout ladder.
    fail_fast_commits: bool = True
    #: Anti-entropy gossip period; ``None`` (default) disables the loop.
    anti_entropy_interval: Optional[float] = None
    #: Per-attempt reply deadline for gossip digest RPCs when the global
    #: ``rpc.request_timeout`` is ``None`` (the loop must never hang on a
    #: dead peer); ignored when a global timeout is configured.
    digest_timeout: float = 2e-3
    #: Upper bound on full Decides streamed to one peer per gossip round
    #: (flow control; the next round continues where this one stopped).
    max_stream_per_round: int = 64
    #: WAL checkpoint/truncation policy.
    checkpoint: CheckpointConfig = field(default_factory=CheckpointConfig)
    #: Checkpoint snapshot shipping for peers below the truncation floor,
    #: plus the digest-driven lag bias for gossip peer selection.
    snapshot: SnapshotTransferConfig = field(
        default_factory=SnapshotTransferConfig
    )

    _nested = {
        "checkpoint": CheckpointConfig,
        "snapshot": SnapshotTransferConfig,
    }


@dataclass
class MembershipConfig(ConfigSerde):
    """Elastic membership: online join/leave via epoch-numbered views.

    View changes run a propose/ack/commit round driven by
    :meth:`repro.system.Cluster.add_node` /
    :meth:`~repro.system.Cluster.remove_node`; joiners bootstrap state
    over the checkpoint-snapshot path and decommissioned nodes drain
    their owned keys through shard-scoped snapshot streams before
    leaving.  See docs/membership.md.
    """

    #: Per-attempt deadline for one member's VIEW_ACK during the propose
    #: round (the coordinator must never hang on a crashed member).
    ack_timeout: float = 2e-3
    #: Propose/ack rounds attempted before a view change is abandoned.
    max_attempts: int = 5
    #: Deadline for the joiner's bootstrap snapshot plus each shard
    #: handoff stream; exceeded transfers are retried from the top.
    handoff_timeout: float = 200e-3
    #: Shrink clocks back down after a decommission, once the retired
    #: trailing site's final frontier is dominated everywhere.  Off keeps
    #: clocks at their historical maximum width forever (always safe).
    shrink_clocks: bool = True


@dataclass
class ShardingConfig(ConfigSerde):
    """Keyspace sharding and online shard rebalancing (docs/sharding.md).

    Off by default: a cluster without ``enabled`` keeps the classic
    consistent-hash ring and pays nothing for this subsystem.  Enabled,
    the cluster's directory becomes a :class:`repro.cluster.directory.
    ShardMap` (key → shard → owner with epoch-versioned flips) and a
    :class:`repro.cluster.rebalancer.Rebalancer` can move hot shards
    between live nodes: fence, drain, stream the shard's chains over the
    snapshot protocol, flip the owner table entry, unfence.
    """

    #: Use a ShardMap directory (and construct a rebalancer) instead of
    #: the consistent-hash ring.
    enabled: bool = False
    #: Fixed shard count.  Many small shards per node is the point: the
    #: rebalancer moves load at shard granularity, so more shards means
    #: finer-grained (but chattier) rebalancing.
    num_shards: int = 64
    #: Count per-shard read/prepare accesses in ``MetricsRecorder``
    #: (the rebalancer's load signal).  One dict increment per request.
    track_load: bool = True
    #: Period of the background rebalance loop (virtual seconds).
    #: ``None`` (default) never starts the loop; migrations then only
    #: happen when driven explicitly (``Rebalancer.migrate_shard``).
    rebalance_interval: Optional[float] = None
    #: A node triggers a move only when its tracked load exceeds this
    #: multiple of the mean -- hysteresis against thrashing.
    imbalance_threshold: float = 1.25
    #: Minimum total tracked accesses before the planner trusts the
    #: load signal at all.
    min_samples: int = 64
    #: Shard moves attempted per rebalance round.
    max_moves_per_round: int = 1
    #: Multiplicative decay applied to the per-shard counters after each
    #: rebalance round, so the signal tracks current load, not history.
    load_decay: float = 0.5

    def __post_init__(self) -> None:
        if self.num_shards <= 0:
            raise ValueError("num_shards must be positive")
        if self.imbalance_threshold < 1.0:
            raise ValueError("imbalance_threshold must be >= 1.0")
        if self.max_moves_per_round <= 0:
            raise ValueError("max_moves_per_round must be positive")
        if not 0.0 <= self.load_decay <= 1.0:
            raise ValueError("load_decay must be in [0, 1]")


@dataclass
class ReplicationConfig(ConfigSerde):
    """Per-shard primary-backup replication (docs/replication.md).

    Off by default: a cluster without ``enabled`` has exactly one copy
    of every shard and pays nothing for this subsystem.  Enabled (which
    requires ``ShardingConfig.enabled``), every shard's owner streams
    its prepare/decision/apply records to ``replication_factor - 1``
    deterministically placed backups; ``sync`` mode defers prepare
    votes and commit acknowledgements to backup acknowledgment, and a
    ``failover_timeout`` arms the cluster-level
    :class:`repro.replication.shard.FailoverDriver` that promotes the
    freshest backup of a dead primary behind the shard fence machinery.
    """

    #: Master switch; requires a ShardMap directory (sharding enabled).
    enabled: bool = False
    #: Total copies of each shard including the primary (>= 1); each
    #: shard gets ``replication_factor - 1`` backups.
    replication_factor: int = 2
    #: ``"sync"`` gates prepare votes and commit acks on backup
    #: acknowledgment of the covering stream record (zero acked commits
    #: lost across a primary crash); ``"async"`` streams in the
    #: background and only tracks the per-backup replicated frontier.
    mode: str = "sync"
    #: Route read-only reads through the shard's replica set; a backup
    #: serves only snapshots its replicated frontier dominates and
    #: forwards everything else to the primary (freshness-safe).
    read_from_backups: bool = False
    #: Arm automatic failover: when the accrual failure detector at a
    #: majority of live peers classifies a node dead, its shards are
    #: promoted to their freshest backups.  ``None`` (default) never
    #: promotes -- streams still replicate, but ownership is static.
    failover_timeout: Optional[float] = None
    #: How long a sync-mode prepare/commit waits for backup
    #: acknowledgment before degrading to async for that record (the
    #: record stays queued and retransmits; only the *wait* is skipped).
    sync_timeout: float = 2e-3
    #: Stream records per REPLICATE message (flow control).
    batch_records: int = 16
    #: Pump back-off after an unacknowledged REPLICATE batch.
    retry_interval: float = 1e-3

    def __post_init__(self) -> None:
        if self.replication_factor < 1:
            raise ValueError("replication_factor must be >= 1")
        if self.mode not in ("sync", "async"):
            raise ValueError("mode must be 'sync' or 'async'")
        if self.sync_timeout <= 0:
            raise ValueError("sync_timeout must be positive")
        if self.batch_records <= 0:
            raise ValueError("batch_records must be positive")
        if self.retry_interval <= 0:
            raise ValueError("retry_interval must be positive")
        if self.failover_timeout is not None and self.failover_timeout <= 0:
            raise ValueError("failover_timeout must be positive or None")


@dataclass
class DurabilityConfig(ConfigSerde):
    """Write-ahead logging and in-doubt termination (see DESIGN.md 5.5).

    The defaults keep everything off: nodes stay volatile (a durable
    crash would lose them entirely) and prepared-lock leases presume
    abort exactly as before, reproducing the pre-recovery behaviour
    bit for bit.
    """

    #: Per-node write-ahead log.  Every prepare vote, commit decision,
    #: version install, and clock advance is logged *before* it becomes
    #: externally visible, so a durable crash (``Nemesis`` kind
    #: ``crash_durable``) can wipe the node's store, ``siteVC``, and
    #: prepared table and rebuild them by replay at restart.
    wal_enabled: bool = False
    #: In-doubt termination protocol: a participant whose prepared-lock
    #: lease expires *queries the coordinator* for the transaction's
    #: outcome instead of presuming abort.  Closes the window where an
    #: expired lease drops a committed transaction's writes at one site
    #: (the ROADMAP termination-protocol item); the regression test is
    #: ``tests/integration/test_chaos.py::test_indoubt_*``.
    termination_query: bool = False
    #: Bounded retries for a termination/recovery status query against
    #: an unreachable coordinator before falling back to presumed abort.
    termination_max_attempts: int = 5
    #: Virtual seconds one durable sync ("fsync") costs.  ``0.0`` (the
    #: default, and the historical behaviour) makes every append durable
    #: the instant it is written -- durability is free.  ``> 0`` switches
    #: the WAL into buffered mode: appends land in a volatile buffer and
    #: become durable only when a sync covering them completes, commit
    #: acknowledgements wait for the group holding their Decision record,
    #: and a crash loses the unsynced suffix (exactly the unacked tail).
    fsync_latency: float = 0.0
    #: Group-commit window (virtual seconds).  With ``fsync_latency > 0``
    #: and a zero window every record pays its own serialized sync
    #: (per-record durability).  A positive window batches all records
    #: buffered within it into one sync -- the classic group commit.
    group_commit_window: float = 0.0
    #: Early-flush threshold: a group's sync starts as soon as this many
    #: records are buffered, even before the window elapses.
    group_commit_max_records: int = 64


@dataclass
class CostModel(ConfigSerde):
    """Virtual CPU seconds charged by protocol handlers.

    The paper's FW-KV-vs-Walter gap is driven by read-side synchronisation
    and version-access-set (VAS) bookkeeping; these constants make that work
    visible to the virtual clock.  Values are calibrated so a 2-key YCSB
    transaction takes a few hundred microseconds end to end, putting
    cluster throughput in the hundreds of KTxs/s -- the same order as the
    paper's Figure 5.
    """

    #: Fixed cost of serving any read request at the storage node.
    read_handler: float = 12e-6
    #: Per-version cost of scanning a version chain during selection.
    version_scan_item: float = 2e-7
    #: Per-identifier cost of scanning/merging a version-access-set.
    vas_item: float = 5e-7
    #: Cost of one lock-table acquire or release.
    lock_op: float = 2e-6
    #: Per-key cost of 2PC prepare (lock bookkeeping plus validation,
    #: which re-reads each key's latest state).
    prepare_key: float = 15e-6
    #: Per-key cost of installing a new version at decide time.
    install_key: float = 10e-6
    #: Fixed cost of the coordinator-side commit logic.
    commit_base: float = 10e-6
    #: Fixed cost of beginning a transaction (snapshot acquisition).
    begin: float = 1e-6
    #: Server cores per node executing protocol handlers; None = infinite.
    #: Finite cores make saturated nodes queue work, so protocols that do
    #: more server-side work per transaction (the 2PC baseline's read-only
    #: commits) lose throughput, as on the paper's testbed.
    cpu_cores: "int | None" = 4
    #: Client-side cost around every transaction attempt (request assembly,
    #: marshalling, dispatch, response handling).
    client_overhead: float = 50e-6
    #: Closed-loop think time between transactions.
    client_think: float = 0.0


@dataclass
class ClusterConfig(ConfigSerde):
    """Shape of one simulated deployment."""

    num_nodes: int
    clients_per_node: int = 5
    #: Lock acquisition timeout; the paper sets 1 ms on its testbed.
    lock_timeout: float = 1e-3
    seed: int = 0
    #: FW-KV only.  The paper sends Remove messages to the nodes a
    #: read-only transaction contacted (Alg. 4 lines 3-5), but commit-time
    #: VAS propagation (Alg. 5 line 19) can copy the identifier to nodes it
    #: never contacted, where it would then never be erased.  True (the
    #: default) broadcasts Remove to every node, keeping VAS memory
    #: bounded; False reproduces the paper's literal behaviour.
    remove_broadcast: bool = True
    #: FW-KV only: Remove identifiers are batched per destination and
    #: flushed on this timer, bounding background message rate.
    remove_flush_interval: float = 500e-6
    #: FW-KV ablations (see benchmarks/test_ablation.py).  Disabling
    #: visible reads removes the VAS machinery entirely -- reads stay
    #: fresh on first contact but the PSI consistency guard is gone, so
    #: this mode is for cost measurement only.
    fwkv_visible_reads: bool = True
    #: Disabling fresh update reads pins FW-KV's update transactions to
    #: their begin snapshot like Walter, isolating the Figure 4/7 abort
    #: savings from the read-only freshness machinery.
    fwkv_fresh_update_reads: bool = True
    #: Disabling Removes entirely lets VAS entries accumulate without
    #: bound (the leak the paper's Figure 6 numbers grow with).
    removes_enabled: bool = True
    #: Version-chain garbage collection (MVCC protocols).  When a chain
    #: outgrows ``gc_trigger_length``, versions beyond the newest
    #: ``gc_keep_versions`` that are older than ``gc_min_age`` and carry no
    #: VAS registrations are reclaimed.  ``gc_min_age`` must comfortably
    #: exceed the longest transaction lifetime (standard MVCC vacuuming
    #: assumption) so no in-flight snapshot can still need a reclaimed
    #: version.
    gc_enabled: bool = True
    gc_keep_versions: int = 16
    gc_trigger_length: int = 32
    gc_min_age: float = 0.05
    #: Presumed-abort lease on prepared write locks.  A participant that
    #: voted yes normally holds its locks until the coordinator's Decide
    #: arrives; if the coordinator crashes first, those locks would be held
    #: forever.  With a lease, a participant that hears nothing for this
    #: long unilaterally aborts the prepared transaction and releases its
    #: locks.  Must comfortably exceed the worst-case prepare-to-decide
    #: latency (RPC round trips plus retry backoff) so a live coordinator
    #: never races its own participants.  ``None`` (default) disables the
    #: lease, reproducing the paper's reliable-channel assumption.
    prepared_lease: Optional[float] = None
    #: Background-traffic batching; defaults preserve one-message-per-event.
    batching: BatchingConfig = field(default_factory=BatchingConfig)
    #: Write-ahead logging, durable crash recovery, and in-doubt
    #: termination; defaults keep all of it off (volatile nodes).
    durability: DurabilityConfig = field(default_factory=DurabilityConfig)
    #: Self-healing layer (failure detector, anti-entropy, checkpoints).
    #: The detector defaults on but is inert without timeout/heartbeat
    #: evidence; the periodic loops default off.
    healing: HealingConfig = field(default_factory=HealingConfig)
    #: Elastic membership (online join/leave); the defaults only shape
    #: reconfiguration runs -- static-membership runs never consult them.
    membership: MembershipConfig = field(default_factory=MembershipConfig)
    #: Keyspace sharding + rebalancing; disabled by default, leaving the
    #: consistent-hash ring (and its exact placement) untouched.
    sharding: ShardingConfig = field(default_factory=ShardingConfig)
    #: Per-shard primary-backup replication; disabled by default (one
    #: copy of every shard, exactly the historical behaviour).
    replication: ReplicationConfig = field(default_factory=ReplicationConfig)
    network: NetworkConfig = field(default_factory=NetworkConfig)
    #: Which fabric carries the messages: the deterministic simulator
    #: (default) or real asyncio TCP sockets.  Selected once at cluster
    #: construction (``repro.net.transport.build_transport``); nothing
    #: downstream branches on it.
    transport: TransportConfig = field(default_factory=TransportConfig)
    costs: CostModel = field(default_factory=CostModel)

    _nested = {
        "batching": BatchingConfig,
        "durability": DurabilityConfig,
        "healing": HealingConfig,
        "membership": MembershipConfig,
        "sharding": ShardingConfig,
        "replication": ReplicationConfig,
        "network": NetworkConfig,
        "transport": TransportConfig,
        "costs": CostModel,
    }

    def __post_init__(self) -> None:
        if self.num_nodes <= 0:
            raise ValueError("num_nodes must be positive")
        if self.clients_per_node < 0:
            raise ValueError("clients_per_node must be non-negative")

    @property
    def effective_remove_flush_interval(self) -> float:
        """The Remove coalescing interval actually in force."""
        if self.batching.remove_flush_interval is not None:
            return self.batching.remove_flush_interval
        return self.remove_flush_interval

    @property
    def node_ids(self) -> range:
        """The node identifiers of this deployment (0..num_nodes-1)."""
        return range(self.num_nodes)

    @property
    def total_clients(self) -> int:
        """Closed-loop clients across the whole cluster."""
        return self.num_nodes * self.clients_per_node


@dataclass
class RunConfig(ConfigSerde):
    """How long to drive a workload and what to measure.

    ``warmup`` transactions-per-client are executed before measurement
    starts so steady state is reached; ``duration`` is virtual seconds of
    measured run.
    """

    duration: float = 1.0
    warmup: float = 0.1
    max_retries: Optional[int] = None

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError("duration must be positive")
        if self.warmup < 0:
            raise ValueError("warmup must be non-negative")
