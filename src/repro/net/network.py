"""The simulated network: latency, per-channel FIFO ordering, delivery."""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Set, Tuple

from repro.config import NetworkConfig
from repro.net.message import Envelope, MessageType
from repro.net.transport import Transport
from repro.sim import Simulator
from repro.sim.rng import make_rng

DeliverFn = Callable[[Envelope], None]

#: Drop-reason labels used in :attr:`NetworkStats.drops_by_reason`.
DROP_CRASH = "crash"
DROP_PARTITION = "partition"
DROP_LOSS = "loss"
DROP_UNKNOWN_DST = "unknown_dst"


@dataclass
class NetworkStats:
    """Counters the experiment harness reads after a run."""

    messages_sent: int = 0
    messages_by_type: Counter = field(default_factory=Counter)
    messages_dropped: int = 0
    #: ``messages_dropped`` broken out by cause: "crash" (either endpoint
    #: crash-stopped), "partition" (directed link cut), "loss" (random
    #: in-flight loss), "unknown_dst" (destination never registered).
    drops_by_reason: Counter = field(default_factory=Counter)
    #: Extra copies injected by random duplication.
    messages_duplicated: int = 0
    #: Replies that arrived for no pending request (late after a timeout
    #: retired the slot, duplicated, or racing a restart).
    stale_replies: int = 0
    #: RPC attempts that hit their per-request deadline.
    rpc_timeouts: int = 0
    #: Timed-out attempts that were retried (timeouts minus give-ups).
    rpc_retries: int = 0
    bytes_hint: int = 0
    #: Partition drops broken out by directed link ``(src, dst)``; the
    #: nemesis reads this to report what a partition window destroyed.
    partition_drops: Counter = field(default_factory=Counter)


class Network(Transport):
    """The simulator :class:`~repro.net.transport.Transport` backend:
    message channels between registered nodes, with injectable faults.

    The default configuration matches the paper's system model (Section
    2.1): "nodes communicate through message passing over reliable
    asynchronous channels" with no synchrony assumption.  Concretely:

    * every message is delivered after ``base_latency`` plus deterministic
      seeded jitter, plus any per-type injected delay (the congestion knob
      for the delayed-Propagate experiments);
    * messages between a fixed (src, dst) pair are delivered FIFO per
      *channel*; foreground protocol traffic and background asynchronous
      traffic (Propagate/Remove) use separate channels so an injected
      propagation delay does not stall the commit critical path;
    * messages a node sends to itself are delivered after ``self_latency``
      (loopback dispatch, not the network fabric).

    On top of that baseline, the fault-injection surface deliberately
    breaks the reliable-channel assumption (see DESIGN.md "Failure model &
    recovery"):

    * :meth:`crash` / :meth:`restart` -- crash-stop a node; its in-flight
      and future traffic drops until restart;
    * :meth:`partition` / :meth:`heal` -- cut or restore one *directed*
      link, dropping traffic (including in-flight) from ``a`` to ``b``;
    * ``loss_rate`` / ``duplicate_rate`` -- seeded probabilistic loss and
      duplication of non-loopback messages.

    All randomness comes from RNG streams derived from the run seed, so a
    faulty run is exactly as reproducible as a fault-free one.
    """

    kind = "sim"

    def __init__(
        self,
        sim: Simulator,
        config: Optional[NetworkConfig] = None,
        seed: int = 0,
    ) -> None:
        self.sim = sim
        self.config = config or NetworkConfig()
        self.seed = seed
        self.stats = NetworkStats()
        self._rng = make_rng(seed, "network")
        # Loss/duplication draws come from their own stream so enabling
        # them never perturbs the latency jitter of surviving messages.
        self._fault_rng = make_rng(seed, "network", "faults")
        #: Optional hook adding extra delay per envelope; scenario tests use
        #: it for asymmetric congestion (e.g. delaying Propagate on one
        #: link only, the Figure 1 long-fork setup).
        self.delay_policy: Optional[Callable[[Envelope], float]] = None
        self._nodes: Dict[int, DeliverFn] = {}
        # (src, dst, channel) -> time of the last scheduled delivery.
        self._fifo_horizon: Dict[Tuple[int, int, str], float] = defaultdict(float)
        self._next_msg_id = 0
        self._crashed: set = set()
        self._partitioned: Set[Tuple[int, int]] = set()
        #: True whenever any crash or partition is active (delivery fast path).
        self._faulty = False
        #: When set (e.g. by the nemesis during a down window), every
        #: dropped envelope is appended as ``(reason, envelope)`` so tests
        #: can account for exactly which messages a fault destroyed.
        self.drop_log: Optional[list] = None

    def register(self, node_id: int, deliver: DeliverFn) -> None:
        """Attach a node's delivery callback."""
        if node_id in self._nodes:
            raise ValueError(f"node {node_id} already registered")
        self._nodes[node_id] = deliver

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send(self, src: int, dst: int, msg_type: str, payload) -> Envelope:
        """Send a message; returns the (possibly dropped) envelope.

        A destination that was never registered degrades like the crash
        path -- the message counts as dropped -- so retries against a
        removed node degrade instead of crashing the sender.
        """
        sim = self.sim
        now = sim.now
        stats = self.stats
        envelope = Envelope(msg_type, src, dst, payload, now, 0.0, self._next_msg_id)
        self._next_msg_id += 1
        stats.messages_sent += 1
        stats.messages_by_type[msg_type] += 1

        if dst not in self._nodes:
            self._drop(DROP_UNKNOWN_DST, envelope)
            return envelope
        cfg = self.config
        if (
            src != dst
            and cfg.loss_rate > 0
            and self._fault_rng.random() < cfg.loss_rate
        ):
            self._drop(DROP_LOSS, envelope)
            return envelope

        # Latency computation inlined from _latency: send() runs once per
        # message and the extra call shows up at benchmark scale.
        if src == dst:
            delay = cfg.self_latency
        else:
            delay = cfg.base_latency
            if cfg.jitter > 0:
                delay += self._rng.uniform(0.0, cfg.jitter)
        delays = cfg.message_delays
        if delays:
            delay += delays.get(msg_type, 0.0)
        if self.delay_policy is not None:
            delay += self.delay_policy(envelope)
        channel = "bg" if msg_type in MessageType.BACKGROUND else "fg"
        key = (src, dst, channel)
        deliver_at = now + delay
        horizon = self._fifo_horizon[key]
        if horizon > deliver_at:
            deliver_at = horizon
        self._fifo_horizon[key] = deliver_at
        envelope.deliver_time = deliver_at

        # Deliveries are never cancelled; the no-handle form skips a Timer
        # allocation per message.
        sim._post_at(deliver_at, self._deliver, envelope)
        if (
            src != dst
            and cfg.duplicate_rate > 0
            and self._fault_rng.random() < cfg.duplicate_rate
        ):
            # The copy trails the original by a fresh latency-scale offset;
            # duplicates may reorder (they skip the FIFO horizon), which is
            # exactly the adversity handlers must tolerate.
            offset = self._fault_rng.uniform(0.0, self.config.base_latency)
            self.stats.messages_duplicated += 1
            self.sim.call_at(deliver_at + offset, self._deliver, envelope)
        return envelope

    def _latency(self, envelope: Envelope) -> float:
        cfg = self.config
        if envelope.src == envelope.dst:
            base = cfg.self_latency
        else:
            base = cfg.base_latency
            if cfg.jitter > 0:
                base += self._rng.uniform(0.0, cfg.jitter)
        delays = cfg.message_delays
        if delays:
            base += delays.get(envelope.msg_type, 0.0)
        if self.delay_policy is not None:
            base += self.delay_policy(envelope)
        return base

    def _deliver(self, envelope: Envelope) -> None:
        # _faulty is False in healthy runs, collapsing delivery to one
        # check plus the handler call; it is maintained by crash/partition.
        if self._faulty:
            if envelope.src in self._crashed or envelope.dst in self._crashed:
                self._drop(DROP_CRASH, envelope)
                return
            if (envelope.src, envelope.dst) in self._partitioned:
                self._drop(DROP_PARTITION, envelope)
                return
        self._nodes[envelope.dst](envelope)

    def _drop(self, reason: str, envelope: Envelope) -> None:
        self.stats.messages_dropped += 1
        self.stats.drops_by_reason[reason] += 1
        if reason == DROP_PARTITION:
            self.stats.partition_drops[(envelope.src, envelope.dst)] += 1
        if self.drop_log is not None:
            self.drop_log.append((reason, envelope))

    # ------------------------------------------------------------------
    # Fault injection
    # ------------------------------------------------------------------
    def crash(self, node_id: int) -> None:
        """Crash-stop a node: all its in-flight and future traffic drops."""
        self._crashed.add(node_id)
        self._faulty = True

    def restart(self, node_id: int) -> None:
        """Reconnect a crashed node (its volatile state is its own concern)."""
        self._crashed.discard(node_id)
        self._faulty = bool(self._crashed or self._partitioned)

    def is_crashed(self, node_id: int) -> bool:
        """Whether the node is currently crash-stopped."""
        return node_id in self._crashed

    def partition(self, a: int, b: int) -> None:
        """Cut the directed link ``a -> b``: traffic drops until healed.

        Directed so tests can build asymmetric partitions; cut both
        directions for a symmetric split.  Messages already in flight on
        the link drop at delivery time, like the crash path.
        """
        self._partitioned.add((a, b))
        self._faulty = True

    def heal(self, a: int, b: int) -> None:
        """Restore the directed link ``a -> b``."""
        self._partitioned.discard((a, b))
        self._faulty = bool(self._crashed or self._partitioned)

    def heal_all(self) -> None:
        """Remove every partition (not crashes)."""
        self._partitioned.clear()
        self._faulty = bool(self._crashed)

    def is_partitioned(self, a: int, b: int) -> bool:
        """Whether the directed link ``a -> b`` is currently cut."""
        return (a, b) in self._partitioned

    def last_send_horizon(self, src: int, dst: int) -> float:
        """Newest scheduled delivery time of any ``src -> dst`` message.

        ``0.0`` if the pair never communicated.  The healing layer uses
        this to suppress heartbeats to peers the node is already talking
        to -- foreground traffic is itself liveness evidence.
        """
        horizon = self._fifo_horizon
        fg = horizon.get((src, dst, "fg"), 0.0)
        bg = horizon.get((src, dst, "bg"), 0.0)
        return fg if fg >= bg else bg
