"""The simulated network: latency, per-channel FIFO ordering, delivery."""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from repro.config import NetworkConfig
from repro.net.message import Envelope, MessageType
from repro.sim import Simulator
from repro.sim.rng import make_rng

DeliverFn = Callable[[Envelope], None]


@dataclass
class NetworkStats:
    """Counters the experiment harness reads after a run."""

    messages_sent: int = 0
    messages_by_type: Counter = field(default_factory=Counter)
    messages_dropped: int = 0
    bytes_hint: int = 0


class Network:
    """Reliable asynchronous channels between registered nodes.

    Matches the paper's system model (Section 2.1): "nodes communicate
    through message passing over reliable asynchronous channels" with no
    synchrony assumption.  Concretely:

    * every message is delivered after ``base_latency`` plus deterministic
      seeded jitter, plus any per-type injected delay (the congestion knob
      for the delayed-Propagate experiments);
    * messages between a fixed (src, dst) pair are delivered FIFO per
      *channel*; foreground protocol traffic and background asynchronous
      traffic (Propagate/Remove) use separate channels so an injected
      propagation delay does not stall the commit critical path;
    * messages a node sends to itself are delivered after ``self_latency``
      (loopback dispatch, not the network fabric).
    """

    def __init__(
        self,
        sim: Simulator,
        config: Optional[NetworkConfig] = None,
        seed: int = 0,
    ) -> None:
        self.sim = sim
        self.config = config or NetworkConfig()
        self.stats = NetworkStats()
        self._rng = make_rng(seed, "network")
        #: Optional hook adding extra delay per envelope; scenario tests use
        #: it for asymmetric congestion (e.g. delaying Propagate on one
        #: link only, the Figure 1 long-fork setup).
        self.delay_policy: Optional[Callable[[Envelope], float]] = None
        self._nodes: Dict[int, DeliverFn] = {}
        # (src, dst, channel) -> time of the last scheduled delivery.
        self._fifo_horizon: Dict[Tuple[int, int, str], float] = defaultdict(float)
        self._next_msg_id = 0
        self._crashed: set = set()

    def register(self, node_id: int, deliver: DeliverFn) -> None:
        """Attach a node's delivery callback."""
        if node_id in self._nodes:
            raise ValueError(f"node {node_id} already registered")
        self._nodes[node_id] = deliver

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send(self, src: int, dst: int, msg_type: str, payload) -> Envelope:
        """Send a message; returns the (already scheduled) envelope."""
        if dst not in self._nodes:
            raise KeyError(f"unknown destination node {dst}")
        envelope = Envelope(
            msg_type=msg_type,
            src=src,
            dst=dst,
            payload=payload,
            send_time=self.sim.now,
            msg_id=self._next_msg_id,
        )
        self._next_msg_id += 1

        delay = self._latency(envelope)
        channel = "bg" if msg_type in MessageType.BACKGROUND else "fg"
        key = (src, dst, channel)
        deliver_at = max(self.sim.now + delay, self._fifo_horizon[key])
        self._fifo_horizon[key] = deliver_at
        envelope.deliver_time = deliver_at

        self.stats.messages_sent += 1
        self.stats.messages_by_type[msg_type] += 1

        self.sim.call_at(deliver_at, self._deliver, envelope)
        return envelope

    def _latency(self, envelope: Envelope) -> float:
        cfg = self.config
        if envelope.src == envelope.dst:
            base = cfg.self_latency
        else:
            base = cfg.base_latency
            if cfg.jitter > 0:
                base += self._rng.uniform(0.0, cfg.jitter)
        base += cfg.message_delays.get(envelope.msg_type, 0.0)
        if self.delay_policy is not None:
            base += self.delay_policy(envelope)
        return base

    def _deliver(self, envelope: Envelope) -> None:
        if envelope.src in self._crashed or envelope.dst in self._crashed:
            self.stats.messages_dropped += 1
            return
        self._nodes[envelope.dst](envelope)

    # ------------------------------------------------------------------
    # Fault injection (crash-stop)
    # ------------------------------------------------------------------
    def crash(self, node_id: int) -> None:
        """Crash-stop a node: all its in-flight and future traffic drops."""
        self._crashed.add(node_id)

    def restart(self, node_id: int) -> None:
        """Reconnect a crashed node (its volatile state is its own concern)."""
        self._crashed.discard(node_id)

    def is_crashed(self, node_id: int) -> bool:
        """Whether the node is currently crash-stopped."""
        return node_id in self._crashed
