"""Message envelopes and the protocol message vocabulary."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


class MessageType:
    """String labels for every message in the FW-KV/Walter/2PC protocols.

    Kept as plain strings (not an enum) so the network's per-type delay
    injection table stays trivially configurable from experiment code.
    """

    READ_REQUEST = "ReadRequest"
    READ_RETURN = "ReadReturn"
    PREPARE = "Prepare"
    VOTE = "Vote"
    DECIDE = "Decide"
    PROPAGATE = "Propagate"
    REMOVE = "Remove"
    RPC_REPLY = "RpcReply"
    #: In-doubt termination query (participant -> coordinator RPC).
    TXN_STATUS = "TxnStatus"
    #: Anti-entropy digest exchange (RPC): recovery catch-up and the
    #: periodic background gossip both speak it.
    SYNC = "Sync"
    #: Failure-detector liveness beacon (one-way, background channel).
    HEARTBEAT = "Heartbeat"
    #: Checkpoint snapshot transfer (healing): the sender offers its
    #: newest fingerprinted checkpoint to a peer whose frontier predates
    #: the sender's truncated WAL history (RPC) ...
    SNAPSHOT_OFFER = "SnapshotOffer"
    #: ... streams it in bounded chunks of store chains (RPC) ...
    SNAPSHOT_CHUNK = "SnapshotChunk"
    #: ... and the receiver confirms the verified install (one-way),
    #: which doubles as frontier evidence at the sender.
    SNAPSHOT_ACK = "SnapshotAck"
    #: Per-shard primary-backup replication stream (RPC): a primary
    #: ships a batch of prepare/decision/apply records to one backup;
    #: the reply carries the backup's cumulative applied sequence.
    #: Foreground, not background: in sync mode commit acknowledgements
    #: wait on these acks.
    REPLICATE = "Replicate"
    #: Membership view change, phase one: the view coordinator proposes
    #: an epoch-numbered membership view to every member (one-way) ...
    VIEW_PROPOSE = "ViewPropose"
    #: ... members answer with an epoch-gated accept/reject (one-way) ...
    VIEW_ACK = "ViewAck"
    #: ... and the coordinator fans out the commit that applies the view
    #: (one-way; idempotent, epoch-gated, re-sent by anti-entropy).
    VIEW_COMMIT = "ViewCommit"

    #: Message types delivered on the background channel.  Asynchronous
    #: traffic (commit propagation, VAS garbage collection, liveness
    #: beacons) must not delay or be delayed by the transaction critical
    #: path, matching the paper's "asynchronous messages, sent outside the
    #: transaction critical path".
    BACKGROUND = frozenset({PROPAGATE, REMOVE, HEARTBEAT})


@dataclass(slots=True)
class Envelope:
    """One message in flight between two nodes."""

    msg_type: str
    src: int
    dst: int
    payload: Any
    send_time: float = 0.0
    deliver_time: float = 0.0
    msg_id: int = field(default=-1)

    @property
    def latency(self) -> float:
        """One-way delivery latency of this envelope."""
        return self.deliver_time - self.send_time

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<{self.msg_type} {self.src}->{self.dst} "
            f"sent={self.send_time:.6f} deliver={self.deliver_time:.6f}>"
        )
