"""Simulated message fabric: envelopes, latency model, channels, and RPC."""

from repro.net.message import Envelope, MessageType
from repro.net.network import Network, NetworkStats
from repro.net.rpc import RpcEndpoint, RpcTimeoutError

__all__ = [
    "Envelope",
    "MessageType",
    "Network",
    "NetworkStats",
    "RpcEndpoint",
    "RpcTimeoutError",
]
