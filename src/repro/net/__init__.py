"""Message fabric: envelopes, the transport seam, and RPC.

Two :class:`Transport` backends live here: the deterministic simulated
:class:`Network` (latency model, channels, fault injection) and the real
asyncio TCP :class:`~repro.net.socket_transport.SocketTransport` (lazily
imported -- see docs/networking.md).  :class:`RpcEndpoint` implements
:class:`Endpoint` over either.
"""

from repro.net.message import Envelope, MessageType
from repro.net.network import Network, NetworkStats
from repro.net.rpc import RpcEndpoint, RpcTimeoutError
from repro.net.transport import (
    Endpoint,
    Transport,
    TransportError,
    build_transport,
)

__all__ = [
    "Endpoint",
    "Envelope",
    "MessageType",
    "Network",
    "NetworkStats",
    "RpcEndpoint",
    "RpcTimeoutError",
    "Transport",
    "TransportError",
    "build_transport",
]
