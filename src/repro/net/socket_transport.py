"""Real-socket transport: the asyncio TCP :class:`Transport` backend.

Architecture (see docs/networking.md for the full walkthrough):

* Protocol code still runs single-threaded inside the deterministic
  :class:`~repro.sim.Simulator` -- generators, events, timers, all of
  it unchanged.  What changes is how the clock advances and how
  envelopes travel: :meth:`SocketTransport.pump` maps virtual time onto
  the wall clock (``virtual = (wall - start) * time_scale``) and feeds
  frames arriving from TCP connections into the simulator as they
  land.
* All socket I/O lives on a private asyncio event loop running in a
  daemon thread.  The simulator thread never blocks on a socket: sends
  enqueue an already-encoded frame onto the loop via
  ``call_soon_threadsafe``, and inbound frames are decoded on the I/O
  thread and handed over through a plain deque + wakeup event.
* Every envelope -- including a node's messages to itself -- goes
  through the canonical byte serde (:mod:`repro.net.serde`), so a
  payload that cannot survive a real wire fails loudly on any backend
  path.

One transport hosts one *process worth* of nodes: all of them for the
in-process loopback mode (the default, used by the integration tests --
inter-node traffic still crosses real TCP connections to the
transport's own listener), or a single node when
:mod:`repro.net.host` runs one process per node.

Connections are lazy, per-destination, and self-healing: the first
frame to a peer dials it with the :class:`~repro.config.RpcConfig`
backoff ladder scaled by ``TransportConfig.reconnect_backoff_scale``
(virtual-scale ladders are microseconds; real dials want milliseconds),
a broken connection redials and resends the frame that failed (frames
are queued per destination, so FIFO per (src, dst) pair survives
reconnects), and a peer that stays unreachable past the attempt budget
drops the queued frames as ``"unreachable"`` -- the same degrade-not-
crash contract as the simulated fabric's unknown-destination path.

Fault injection is a simulator feature; the base-class surface answers
"healthy" for probes and refuses crash/partition mutations.
"""

from __future__ import annotations

import asyncio
import struct
import threading
import time
from collections import deque
from typing import Callable, Dict, Iterable, Optional, Tuple

from repro.config import NetworkConfig, TransportConfig
from repro.net.message import Envelope
from repro.net.network import DROP_UNKNOWN_DST, NetworkStats
from repro.net.serde import (
    WIRE_VERSION,
    FrameDecoder,
    WireDecodeError,
    decode_envelope,
    encode_envelope,
)
from repro.net.transport import Transport
from repro.sim import Simulator
from repro.sim.rng import make_rng

DeliverFn = Callable[[Envelope], None]

#: First bytes on every connection: magic + wire version.
HELLO = b"FWKV" + bytes([WIRE_VERSION])

#: Drop reason for frames whose peer stayed unreachable past the
#: connect-attempt budget.
DROP_UNREACHABLE = "unreachable"

_LEN = struct.Struct(">I")


class _PeerLink:
    """Outbound connection state for one destination (I/O thread only)."""

    __slots__ = ("queue", "task")

    def __init__(self, queue: "asyncio.Queue", task: "asyncio.Task") -> None:
        self.queue = queue
        self.task = task


class SocketTransport(Transport):
    """A :class:`Transport` carrying envelopes over real TCP sockets."""

    kind = "socket"

    def __init__(
        self,
        sim: Simulator,
        config: Optional[NetworkConfig] = None,
        seed: int = 0,
        *,
        num_nodes: int,
        options: Optional[TransportConfig] = None,
        local_nodes: Optional[Iterable[int]] = None,
        port: Optional[int] = None,
    ) -> None:
        self.sim = sim
        self.config = config if config is not None else NetworkConfig()
        self.seed = seed
        self.options = options if options is not None else TransportConfig(kind="socket")
        self.stats = NetworkStats()
        self.num_nodes = num_nodes
        #: Node ids hosted by *this* process; ``None`` means all of them
        #: (in-process loopback mode).
        self.local_nodes = (
            frozenset(range(num_nodes))
            if local_nodes is None
            else frozenset(local_nodes)
        )
        # Transport-surface attributes the sim backend also carries; the
        # socket backend accepts but ignores delay_policy (real latency
        # is not injectable) and honours drop_log for its own drops.
        self.delay_policy = None
        self.drop_log: Optional[list] = None

        self._registered: Dict[int, DeliverFn] = {}
        self._peers: Dict[int, Tuple[str, int]] = {}
        self._links: Dict[int, _PeerLink] = {}
        self._next_msg_id = 0
        self._horizon: Dict[Tuple[int, int], float] = {}
        self._rng = make_rng(seed, "socket", "reconnect")
        self._closed = False

        #: Live inbound-connection handler tasks (I/O thread only);
        #: close() cancels any still reading.
        self._conn_tasks: set = set()
        #: Inbound envelopes decoded on the I/O thread, drained by
        #: :meth:`pump` on the simulator thread (deque ops are atomic).
        self._inbox: deque = deque()
        self._wakeup = threading.Event()

        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, name="fwkv-socket-io", daemon=True
        )
        self._thread.start()
        bind_port = port if port is not None else self.options.base_port
        self._server = asyncio.run_coroutine_threadsafe(
            asyncio.start_server(
                self._handle_conn, host=self.options.host, port=bind_port
            ),
            self._loop,
        ).result(self.options.connect_timeout)
        sock = self._server.sockets[0]
        #: ``(host, port)`` this transport accepts frames on.
        self.listen_address: Tuple[str, int] = sock.getsockname()[:2]
        if local_nodes is None:
            # Loopback mode: every node lives here, so every destination
            # dials our own listener -- inter-node traffic still crosses
            # a real TCP connection.
            self.set_peers({n: self.listen_address for n in range(num_nodes)})

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def register(self, node_id: int, deliver: DeliverFn) -> None:
        if node_id in self._registered:
            raise ValueError(f"node {node_id} already registered")
        if node_id not in self.local_nodes:
            raise ValueError(
                f"node {node_id} is not hosted by this transport "
                f"(local nodes: {sorted(self.local_nodes)})"
            )
        self._registered[node_id] = deliver

    def set_peers(self, peers: Dict[int, Tuple[str, int]]) -> None:
        """Install (or extend) the destination address book.

        Multi-process launchers call this once every process has
        reported its listen address; frames to a destination with no
        address drop as ``unknown_dst``.
        """
        for node_id, (host, port) in peers.items():
            self._peers[int(node_id)] = (host, int(port))

    # ------------------------------------------------------------------
    # Sending (simulator thread)
    # ------------------------------------------------------------------
    def send(self, src: int, dst: int, msg_type: str, payload) -> Envelope:
        now = self.sim.now
        envelope = Envelope(msg_type, src, dst, payload, now, 0.0, self._next_msg_id)
        self._next_msg_id += 1
        self.stats.messages_sent += 1
        self.stats.messages_by_type[msg_type] += 1
        self._horizon[(src, dst)] = now

        # Serde discipline on every path: a payload that cannot cross a
        # real wire must fail here too, even node-to-self.
        data = encode_envelope(envelope)
        self.stats.bytes_hint += len(data)

        if src == dst:
            # Self-messages never touch the fabric (matches the sim
            # backend's loopback dispatch); round-trip through bytes so
            # the receiver sees exactly what a remote would.
            self.sim._post_soon(self._deliver, decode_envelope(data))
            return envelope
        if dst not in self._peers:
            self._drop(DROP_UNKNOWN_DST, envelope)
            return envelope
        frame = _LEN.pack(len(data)) + data
        self._loop.call_soon_threadsafe(self._enqueue_frame, dst, frame)
        return envelope

    def _deliver(self, envelope: Envelope) -> None:
        envelope.deliver_time = self.sim.now
        deliver = self._registered.get(envelope.dst)
        if deliver is None:
            self._drop(DROP_UNKNOWN_DST, envelope)
            return
        deliver(envelope)

    def _drop(self, reason: str, envelope: Envelope) -> None:
        self.stats.messages_dropped += 1
        self.stats.drops_by_reason[reason] += 1
        if self.drop_log is not None:
            self.drop_log.append((reason, envelope))

    def last_send_horizon(self, src: int, dst: int) -> float:
        return self._horizon.get((src, dst), 0.0)

    # ------------------------------------------------------------------
    # Outbound links (I/O thread)
    # ------------------------------------------------------------------
    def _enqueue_frame(self, dst: int, frame: bytes) -> None:
        link = self._links.get(dst)
        if link is None:
            queue: asyncio.Queue = asyncio.Queue()
            task = self._loop.create_task(self._run_link(dst, queue))
            link = self._links[dst] = _PeerLink(queue, task)
        link.queue.put_nowait(frame)

    async def _connect(self, dst: int) -> Optional[asyncio.StreamWriter]:
        """Dial ``dst`` with the scaled backoff ladder; None on give-up."""
        opts = self.options
        rpc = self.config.rpc
        host, port = self._peers[dst]
        for attempt in range(opts.max_connect_attempts):
            try:
                _reader, writer = await asyncio.wait_for(
                    asyncio.open_connection(host, port),
                    timeout=opts.connect_timeout,
                )
                writer.write(HELLO)
                await writer.drain()
                return writer
            except (OSError, asyncio.TimeoutError):
                if attempt + 1 >= opts.max_connect_attempts:
                    return None
                delay = min(
                    rpc.backoff_base * rpc.backoff_factor**attempt,
                    rpc.backoff_cap,
                ) * opts.reconnect_backoff_scale
                if rpc.backoff_jitter > 0:
                    delay += self._rng.uniform(0.0, rpc.backoff_jitter * delay)
                await asyncio.sleep(delay)
        return None

    async def _run_link(self, dst: int, queue: "asyncio.Queue") -> None:
        """Writer loop for one destination: connect, write, self-heal."""
        writer: Optional[asyncio.StreamWriter] = None
        try:
            while True:
                frame = await queue.get()
                if frame is None:  # close() sentinel
                    break
                while True:
                    if writer is None:
                        writer = await self._connect(dst)
                        if writer is None:
                            # Peer unreachable: shed this frame and the
                            # backlog; a later frame gets a fresh budget.
                            self._count_unreachable(dst)
                            while not queue.empty():
                                if queue.get_nowait() is None:
                                    return
                                self._count_unreachable(dst)
                            break
                    try:
                        writer.write(frame)
                        await writer.drain()
                        break
                    except (OSError, ConnectionError):
                        # Redial and resend the same frame: per-pair FIFO
                        # survives the reconnect.
                        self._abandon_writer(writer)
                        writer = None
        finally:
            self._abandon_writer(writer)

    def _count_unreachable(self, dst: int) -> None:
        self.stats.messages_dropped += 1
        self.stats.drops_by_reason[DROP_UNREACHABLE] += 1

    @staticmethod
    def _abandon_writer(writer: Optional[asyncio.StreamWriter]) -> None:
        if writer is not None:
            try:
                writer.close()
            except Exception:  # pragma: no cover - teardown best-effort
                pass

    # ------------------------------------------------------------------
    # Inbound (I/O thread)
    # ------------------------------------------------------------------
    async def _handle_conn(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        try:
            hello = await reader.readexactly(len(HELLO))
            if hello != HELLO:
                raise WireDecodeError(f"bad hello {hello!r}")
            decoder = FrameDecoder()
            while True:
                chunk = await reader.read(65536)
                if not chunk:
                    return
                for body in decoder.feed(chunk):
                    # Decode on the I/O thread so the simulator thread
                    # pays delivery, not parsing.
                    self._inbox.append(decode_envelope(body))
                self._wakeup.set()
        except (asyncio.IncompleteReadError, OSError, ConnectionError):
            return
        except WireDecodeError:
            # A corrupt or alien stream poisons only this connection.
            return
        except asyncio.CancelledError:
            return
        finally:
            self._conn_tasks.discard(task)
            self._abandon_writer(writer)

    # ------------------------------------------------------------------
    # The pump (simulator thread)
    # ------------------------------------------------------------------
    def pump(self, until: Optional[float] = None, stop=None) -> float:
        """Advance virtual time against the wall clock, injecting frames.

        ``until`` bounds the run in *virtual* seconds (wall seconds x
        ``time_scale``); ``stop`` is an event whose trigger ends the
        pump.  With neither, the pump runs local work to exhaustion and
        returns once the schedule and inbox stay empty for
        ``drain_grace`` wall seconds -- callers that wait on remote
        replies must pass ``stop`` (the reply leaves no local footprint
        to wait on).  A ``stop``-mode pump that sees no activity for
        ``idle_timeout`` wall seconds raises: on a real network that is
        a hung peer, not quiescence.
        """
        sim = self.sim
        opts = self.options
        scale = opts.time_scale
        monotonic = time.monotonic
        start_wall = monotonic() - sim.now / scale
        last_activity = monotonic()
        while True:
            self._wakeup.clear()
            vnow = (monotonic() - start_wall) * scale
            if until is not None and vnow > until:
                vnow = until
            delivered = self._drain_inbox(vnow)
            before = sim.executed_count
            if until is None and stop is None:
                sim.run()  # burst local work to exhaustion
            else:
                sim.run(until=vnow)
            if delivered or sim.executed_count != before:
                last_activity = monotonic()

            if stop is not None and stop.triggered:
                return sim.now
            if until is not None and sim.now >= until and not self._inbox:
                return sim.now

            next_t = sim._peek_time()
            now_wall = monotonic()
            if until is None and stop is None:
                # Quiesce probe: schedule and inbox empty, wait out the
                # grace window for stragglers already on the wire.
                if next_t is None and not self._inbox:
                    if now_wall - last_activity >= opts.drain_grace:
                        return sim.now
                    self._wakeup.wait(opts.drain_grace)
                continue
            if stop is not None and now_wall - last_activity > opts.idle_timeout:
                raise RuntimeError(
                    f"socket pump stalled: no activity for "
                    f"{opts.idle_timeout}s while waiting on {stop!r}"
                )
            if next_t is not None:
                wall_deadline = start_wall + next_t / scale
            elif until is not None:
                wall_deadline = start_wall + until / scale
            else:
                wall_deadline = now_wall + opts.drain_grace
            timeout = wall_deadline - now_wall
            if timeout > opts.spin_threshold:
                # Cap the sleep so stop/idle bookkeeping stays responsive.
                self._wakeup.wait(min(timeout, 0.05))
            # else: spin -- the deadline is closer than a wakeup latency.

    def _drain_inbox(self, vnow: float) -> int:
        """Post inbound envelopes into the simulator; returns the count."""
        sim = self.sim
        inbox = self._inbox
        count = 0
        while inbox:
            envelope = inbox.popleft()
            # Frames arrive "now"; never schedule in the simulator's past.
            sim._post_at(max(sim.now, vnow), self._deliver, envelope)
            count += 1
        return count

    # ------------------------------------------------------------------
    # Teardown
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Tear down sockets, tasks, loop, and thread.  Idempotent."""
        if self._closed:
            return
        self._closed = True

        async def _shutdown() -> None:
            for link in self._links.values():
                link.queue.put_nowait(None)
            self._server.close()
            await self._server.wait_closed()
            if self._links:
                await asyncio.wait(
                    [link.task for link in self._links.values()], timeout=1.0
                )
                for link in self._links.values():
                    link.task.cancel()
            # Established inbound connections outlive server.close();
            # cancel their handlers explicitly.
            for task in list(self._conn_tasks):
                task.cancel()
            if self._conn_tasks:
                await asyncio.wait(list(self._conn_tasks), timeout=1.0)

        try:
            asyncio.run_coroutine_threadsafe(_shutdown(), self._loop).result(5.0)
        except Exception:  # pragma: no cover - teardown best-effort
            pass
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=5.0)
        self._loop.close()
