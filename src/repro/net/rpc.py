"""Request/reply matching on top of the simulated network.

The endpoint offers two calling conventions:

* :meth:`RpcEndpoint.request` returns a bare event that resolves with the
  reply body -- the original reliable-channel primitive.  If the peer
  crashes the event never resolves.
* :meth:`RpcEndpoint.call` is a generator subroutine (``yield from``) that
  layers per-attempt timeouts, seeded exponential backoff with jitter, and
  capped retries on top, raising :class:`RpcTimeoutError` once attempts are
  exhausted.  With the default :class:`~repro.config.RpcConfig`
  (``request_timeout=None``) it degenerates to a single reliable request,
  so protocols pay nothing until faults are configured.

Late or duplicate replies -- a reply racing a timeout-triggered retry, or
a duplicated ``RpcReply`` envelope -- are dropped and counted in
``NetworkStats.stale_replies`` rather than raised.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from repro.config import RpcConfig
from repro.net.message import Envelope, MessageType
from repro.net.transport import Endpoint, Transport
from repro.sim import Event, Simulator
from repro.sim.rng import make_rng


class RpcTimeoutError(Exception):
    """A request exhausted its retry budget without hearing a reply."""

    def __init__(self, dst: int, msg_type: str, attempts: int) -> None:
        super().__init__(
            f"rpc {msg_type!r} to node {dst} timed out after "
            f"{attempts} attempt{'s' if attempts != 1 else ''}"
        )
        self.dst = dst
        self.msg_type = msg_type
        self.attempts = attempts


@dataclass(slots=True)
class _Request:
    """Wire format of an RPC request payload."""

    request_id: int
    msg_type: str
    body: Any


@dataclass(slots=True)
class _Reply:
    """Wire format of an RPC reply payload."""

    request_id: int
    body: Any


class _Race(Event):
    """Two-way ``AnyOf`` specialised for the reply-vs-deadline race.

    Same trigger semantics and callback ordering as ``AnyOf`` over two
    events, but one bound-method callback replaces the per-child closure
    allocations -- this sits on the path of every remote read and 2PC
    round at benchmark scale.
    """

    __slots__ = ("_first",)

    def __init__(self, sim: Simulator, first: Event, second: Event) -> None:
        super().__init__(sim, name="race")
        self._first = first
        first.add_callback(self._on_child)
        second.add_callback(self._on_child)

    def _on_child(self, child: Event) -> None:
        if self.triggered:
            return
        if child.ok:
            self.succeed((0 if child is self._first else 1, child._value))
        else:
            assert child.exception is not None
            self.fail(child.exception)


class RpcEndpoint(Endpoint):
    """Per-node request/reply plumbing.

    A coordinator calls :meth:`request` and yields the returned event; the
    storage-node handler computes a response and calls :meth:`reply` on the
    original envelope.  Replies travel as ``RpcReply`` messages on the
    foreground channel and resolve the waiting event with the reply body.

    The endpoint consumes only the :class:`~repro.net.transport.Transport`
    surface (``send``, ``config.rpc``, ``seed``, ``stats``), so one
    implementation serves both the simulated and the socket fabric;
    :meth:`repro.net.transport.Transport.endpoint` is the factory.
    """

    def __init__(
        self,
        sim: Simulator,
        network: Transport,
        node_id: int,
        config: Optional[RpcConfig] = None,
    ) -> None:
        self.sim = sim
        self.network = network
        self.node_id = node_id
        self.config = config if config is not None else network.config.rpc
        self._next_request_id = 0
        self._pending: Dict[int, Event] = {}
        # Retry backoff jitter; derived per node so endpoints stay
        # independent of each other and of the network's own streams.
        self._rng = make_rng(network.seed, "rpc", node_id)
        #: Optional failure detector (set by the healing layer).  When
        #: attached, every timed-out attempt feeds it evidence and the
        #: retry budget of a call is capped by the peer's classification
        #: -- one probe for a known-dead peer instead of the full ladder.
        self.detector = None

    def request(
        self,
        dst: int,
        msg_type: str,
        body: Any,
        deadline: Optional[float] = None,
    ) -> Event:
        """Send a request; the returned event delivers the reply body.

        With the default ``deadline=None`` the event resolves only when a
        reply arrives -- the paper's reliable-channel primitive, which
        never resolves if the peer is crashed.  A ``deadline`` (virtual
        seconds) bounds the wait: the pending slot is retired and the
        event *fails* with :class:`RpcTimeoutError`, so a reply arriving
        later is dropped as stale.  Socket-backend callers should always
        pass one -- a real peer can be gone without any simulator crash
        bookkeeping to tell the caller so.
        """
        request_id, event = self._send_request(dst, msg_type, body)
        if deadline is not None:
            timer = self.sim.call_later(
                deadline, self._expire_request, request_id, dst, msg_type
            )
            event.add_callback(lambda _event: timer.cancel())
        return event

    def _expire_request(self, request_id: int, dst: int, msg_type: str) -> None:
        """Deadline hit: retire the slot and fail the waiting event."""
        event = self._pending.pop(request_id, None)
        if event is None:
            return  # the reply won; its callback cancels this timer
        self.network.stats.rpc_timeouts += 1
        event.fail(RpcTimeoutError(dst, msg_type, 1))

    def _send_request(
        self, dst: int, msg_type: str, body: Any
    ) -> Tuple[int, Event]:
        request_id = self._next_request_id
        self._next_request_id += 1
        # The static type label is enough for debugging; formatting a
        # per-request name would be the costliest part of sending.
        event = self.sim.event(name=msg_type)
        self._pending[request_id] = event
        self.network.send(
            self.node_id, dst, msg_type, _Request(request_id, msg_type, body)
        )
        return request_id, event

    def call(
        self,
        dst: int,
        msg_type: str,
        body: Any,
        config: Optional[RpcConfig] = None,
    ):
        """Generator subroutine: request with timeout, backoff, and retries.

        Use as ``reply = yield from endpoint.call(dst, t, body)``.  Raises
        :class:`RpcTimeoutError` once ``max_attempts`` attempts have each
        waited ``request_timeout`` without a reply.  A timed-out attempt's
        pending slot is retired immediately, so its reply -- should it
        still arrive -- is dropped as stale instead of resolving a request
        the caller already gave up on.
        """
        cfg = config if config is not None else self.config
        if cfg.request_timeout is None:
            reply = yield self.request(dst, msg_type, body)
            return reply
        detector = self.detector
        # The budget is fixed at call start: a mid-call classification
        # change shortens the *next* call, keeping each call's attempt
        # count a pure function of state at its first send.
        max_attempts = (
            cfg.max_attempts
            if detector is None
            else detector.attempts_budget(dst, cfg.max_attempts)
        )
        attempt = 0
        while True:
            attempt += 1
            request_id, event = self._send_request(dst, msg_type, body)
            deadline = self.sim.timeout(cfg.request_timeout)
            index, value = yield _Race(self.sim, event, deadline)
            if index == 0:
                # Reply won the race: cancel the deadline so it does not
                # linger in the scheduler until its far-future due time.
                deadline.cancel()
                return value
            # Timed out: retire the slot so a late reply counts as stale.
            self._pending.pop(request_id, None)
            self.network.stats.rpc_timeouts += 1
            if detector is not None:
                detector.on_rpc_timeout(dst)
            if attempt >= max_attempts:
                raise RpcTimeoutError(dst, msg_type, attempt)
            self.network.stats.rpc_retries += 1
            delay = min(
                cfg.backoff_base * cfg.backoff_factor ** (attempt - 1),
                cfg.backoff_cap,
            )
            if cfg.backoff_jitter > 0:
                delay += self._rng.uniform(0.0, cfg.backoff_jitter * delay)
            yield self.sim.timeout(delay)

    def call_settled(
        self,
        dst: int,
        msg_type: str,
        body: Any,
        config: Optional[RpcConfig] = None,
    ):
        """Like :meth:`call` but returns ``(ok, reply)`` instead of raising.

        ``(True, reply_body)`` on success, ``(False, None)`` on exhausted
        retries.  Meant for fan-out: spawn one process per destination and
        gather them with ``AllOf`` without one timeout failing the batch.
        """
        try:
            reply = yield from self.call(dst, msg_type, body, config)
        except RpcTimeoutError:
            return False, None
        return True, reply

    def spawn_call(
        self,
        dst: int,
        msg_type: str,
        body: Any,
        config: Optional[RpcConfig] = None,
    ):
        """Spawn :meth:`call_settled` as a process (itself a yieldable event)."""
        return self.sim.spawn(
            self.call_settled(dst, msg_type, body, config),
            name=msg_type,
        )

    def reply(self, request_envelope: Envelope, body: Any) -> None:
        """Answer a request previously delivered to this node."""
        request = request_envelope.payload
        if not isinstance(request, _Request):
            raise TypeError(
                f"cannot reply to non-RPC payload {request_envelope.payload!r}"
            )
        self.network.send(
            self.node_id,
            request_envelope.src,
            MessageType.RPC_REPLY,
            _Reply(request.request_id, body),
        )

    def handle_reply(self, envelope: Envelope) -> None:
        """Dispatch an ``RpcReply`` envelope to its waiting event.

        Replies with no pending request -- late arrivals after a timeout
        retired the slot, duplicated envelopes, or replies racing a node
        restart -- are dropped and counted, never raised: a stale reply
        must not kill the node's dispatch loop.
        """
        reply = envelope.payload
        event = self._pending.pop(reply.request_id, None)
        if event is None:
            self.network.stats.stale_replies += 1
            return
        event.succeed(reply.body)

    @staticmethod
    def body_of(envelope: Envelope) -> Any:
        """The request body inside an RPC request envelope."""
        return envelope.payload.body

    @property
    def pending_count(self) -> int:
        """Requests awaiting replies (leak probe for tests)."""
        return len(self._pending)
