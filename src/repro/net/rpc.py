"""Request/reply matching on top of the simulated network."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict

from repro.net.message import Envelope, MessageType
from repro.net.network import Network
from repro.sim import Event, Simulator


@dataclass
class _Request:
    """Wire format of an RPC request payload."""

    request_id: int
    msg_type: str
    body: Any


@dataclass
class _Reply:
    """Wire format of an RPC reply payload."""

    request_id: int
    body: Any


class RpcEndpoint:
    """Per-node request/reply plumbing.

    A coordinator calls :meth:`request` and yields the returned event; the
    storage-node handler computes a response and calls :meth:`reply` on the
    original envelope.  Replies travel as ``RpcReply`` messages on the
    foreground channel and resolve the waiting event with the reply body.
    """

    def __init__(self, sim: Simulator, network: Network, node_id: int) -> None:
        self.sim = sim
        self.network = network
        self.node_id = node_id
        self._next_request_id = 0
        self._pending: Dict[int, Event] = {}

    def request(self, dst: int, msg_type: str, body: Any) -> Event:
        """Send a request; the returned event delivers the reply body."""
        request_id = self._next_request_id
        self._next_request_id += 1
        event = self.sim.event(name=f"rpc-{msg_type}-{request_id}")
        self._pending[request_id] = event
        self.network.send(
            self.node_id, dst, msg_type, _Request(request_id, msg_type, body)
        )
        return event

    def reply(self, request_envelope: Envelope, body: Any) -> None:
        """Answer a request previously delivered to this node."""
        request = request_envelope.payload
        if not isinstance(request, _Request):
            raise TypeError(
                f"cannot reply to non-RPC payload {request_envelope.payload!r}"
            )
        self.network.send(
            self.node_id,
            request_envelope.src,
            MessageType.RPC_REPLY,
            _Reply(request.request_id, body),
        )

    def handle_reply(self, envelope: Envelope) -> None:
        """Dispatch an ``RpcReply`` envelope to its waiting event."""
        reply = envelope.payload
        event = self._pending.pop(reply.request_id, None)
        if event is None:
            raise KeyError(f"no pending request {reply.request_id} at node {self.node_id}")
        event.succeed(reply.body)

    @staticmethod
    def body_of(envelope: Envelope) -> Any:
        """The request body inside an RPC request envelope."""
        return envelope.payload.body

    @property
    def pending_count(self) -> int:
        """Requests awaiting replies (leak probe for tests)."""
        return len(self._pending)
