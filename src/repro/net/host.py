"""Multi-process cluster hosting: one OS process per node, real TCP between.

Two halves:

* :class:`NodeHost` (run via ``python -m repro.net.host``) builds the
  stack for **one** node -- simulator, :class:`SocketTransport` hosting
  just that node id, directory, history, protocol node -- loads the
  keys the directory places on it, drives a seeded closed-loop client
  workload, and reports its history slice back as JSON.
* :func:`launch_cluster` (the parent; ``scripts/socket_cluster.py`` is
  its CLI) spawns one child per node, coordinates the phases below over
  the children's stdin/stdout, merges the reported histories and
  version catalogs, and runs the PSI checkers over the union -- the
  same ``check_no_read_skew`` / ``check_site_order`` oracles the
  simulated suites use, now auditing an execution that crossed real
  process and socket boundaries.

Phase protocol (JSON lines; child stdout is reserved for it):

1. child -> ``{"event": "listening", "node": i, "host": h, "port": p}``
2. parent -> ``{"cmd": "start", "peers": {id: [host, port], ...}}`` --
   the complete address book; the child wires its transport, loads its
   keys, spawns its clients, and pumps to the virtual stop time plus a
   drain grace (so peers' in-flight transactions finish against it).
3. child -> ``{"event": "done", ...counters}``
4. parent -> ``{"cmd": "report"}``; child -> one report line carrying
   its committed-transaction records and version catalog.
5. parent -> ``{"cmd": "exit"}``; child closes its transport and exits.

Cross-process invariants that make the merge sound:

* **Placement** is :class:`ConsistentHashDirectory` over CRC32, stable
  across processes by construction (no ``PYTHONHASHSEED`` games).
* **Transaction ids** are unique cluster-wide without coordination:
  node ``i`` draws from ``count(i + 1, num_nodes)`` -- disjoint residue
  classes.
* **Stragglers degrade safely**: a version whose writer was still in
  flight when reports were cut simply lacks a catalog entry, and the
  checkers skip unknown versions rather than miscounting them.
"""

from __future__ import annotations

import itertools
import json
import os
import queue
import subprocess
import sys
import threading
from typing import Dict, List, Optional, Tuple

from repro.config import ClusterConfig
from repro.metrics.history import History, OpRecord, TxnRecord
from repro.metrics.psi_checker import (
    VersionCatalog,
    check_no_read_skew,
    check_site_order,
)

#: Wall-clock ceiling for each phase handshake (spawn, report, exit).
PHASE_TIMEOUT = 60.0


# ----------------------------------------------------------------------
# Child: one node per process
# ----------------------------------------------------------------------
class NodeHost:
    """One node's full stack inside its own process."""

    def __init__(
        self,
        protocol: str,
        config: ClusterConfig,
        node_id: int,
        num_keys: int,
        duration: float,
        grace: float,
    ) -> None:
        # Imports local to the child path: the parent half of this module
        # must stay importable without pulling the whole protocol stack.
        from repro.cluster.directory import ConsistentHashDirectory
        from repro.cluster.node import Node
        from repro.metrics.stats import MetricsRecorder
        from repro.net.socket_transport import SocketTransport
        from repro.sim import Simulator

        self.protocol = protocol
        self.config = config
        self.node_id = node_id
        self.num_keys = num_keys
        self.duration = duration
        self.grace = grace
        self.sim = Simulator()
        port = (
            config.transport.base_port + node_id
            if config.transport.base_port
            else 0
        )
        self.transport = SocketTransport(
            self.sim,
            config.network,
            seed=config.seed,
            num_nodes=config.num_nodes,
            options=config.transport,
            local_nodes=[node_id],
            port=port,
        )
        self.directory = ConsistentHashDirectory(list(config.node_ids))
        self.history = History()
        from repro.core.interfaces import SharedState
        from repro.system import PROTOCOLS

        self.shared = SharedState(
            sim=self.sim,
            config=config,
            directory=self.directory,
            metrics=MetricsRecorder(self.sim),
            history=self.history,
            # Disjoint residue classes: cluster-unique ids, no coordination.
            _txn_ids=itertools.count(node_id + 1, config.num_nodes),
        )
        self.node = PROTOCOLS[protocol](
            Node(self.sim, node_id, self.transport), self.shared
        )
        self.committed = 0
        self.aborted = 0

    # -- workload ------------------------------------------------------
    @staticmethod
    def keys_for(num_keys: int) -> List[str]:
        return [f"k{i}" for i in range(num_keys)]

    def load_owned(self) -> int:
        """Install the baseline for every key this node owns."""
        owned = [
            (key, 0)
            for key in self.keys_for(self.num_keys)
            if self.directory.site(key) == self.node_id
        ]
        return self.node.load_many(owned)

    def _client(self, client_id: int, stop_time: float):
        """Closed-loop client: half read-only pairs, half increments."""
        from repro.net.rpc import RpcTimeoutError
        from repro.sim.rng import make_rng

        rng = make_rng(self.config.seed, "client", self.node_id, client_id)
        keys = self.keys_for(self.num_keys)
        node = self.node
        sim = self.sim
        while sim.now < stop_time:
            read_only = rng.random() < 0.5
            pair = rng.sample(keys, 2)
            txn = node.begin(is_read_only=read_only)
            try:
                if read_only:
                    yield from node.read(txn, pair[0])
                    yield from node.read(txn, pair[1])
                else:
                    value = yield from node.read(txn, pair[0])
                    node.write(txn, pair[0], (value or 0) + 1)
                ok = yield from node.commit(txn)
            except RpcTimeoutError:
                node.abort(txn)
                ok = False
            if ok:
                self.committed += 1
            else:
                self.aborted += 1

    def run_workload(self) -> None:
        stop_time = self.sim.now + self.duration
        for client_id in range(self.config.clients_per_node):
            self.sim.spawn(
                self._client(client_id, stop_time),
                name=f"client-{self.node_id}-{client_id}",
            )
        # The grace keeps this node answering peers' in-flight
        # transactions after its own clients stopped issuing.
        self.transport.pump(until=stop_time + self.grace)

    # -- reporting -----------------------------------------------------
    def report(self) -> dict:
        from repro.core.mvcc_node import MVCCNode
        from repro.core.twopc import TwoPCNode

        catalog = []
        node = self.node
        if isinstance(node, MVCCNode):
            for key in node.store.keys():
                for version in node.store.chain(key):
                    catalog.append(
                        [key, version.vid, version.origin, version.seq,
                         version.writer_txn]
                    )
        elif isinstance(node, TwoPCNode):
            for (key, vid), entry in node.catalog.items():
                catalog.append([key, vid, entry[0], entry[1], entry[2]])
        records = [
            {
                "txn_id": r.txn_id,
                "node_id": r.node_id,
                "is_read_only": r.is_read_only,
                "start_time": r.start_time,
                "end_time": r.end_time,
                "seq_no": r.seq_no,
                "commit_vc": list(r.commit_vc) if r.commit_vc else None,
                "profile": r.profile,
                "ops": [
                    [op.kind, op.key, op.vid, op.latest_vid_at_read]
                    for op in r.ops
                ],
            }
            for r in self.history
        ]
        return {
            "event": "report",
            "node": self.node_id,
            "committed": self.committed,
            "aborted": self.aborted,
            "records": records,
            "catalog": catalog,
            "stats": {
                "messages_sent": self.transport.stats.messages_sent,
                "messages_dropped": self.transport.stats.messages_dropped,
            },
        }


def _child_main(argv: Optional[List[str]] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description="FW-KV node host (one process = one node)"
    )
    parser.add_argument("--node", type=int, required=True)
    parser.add_argument("--protocol", default="fwkv")
    parser.add_argument("--config-json", required=True,
                        help="ClusterConfig.to_dict() as JSON")
    parser.add_argument("--num-keys", type=int, default=64)
    parser.add_argument("--duration", type=float, default=1.0)
    parser.add_argument("--grace", type=float, default=0.5)
    args = parser.parse_args(argv)

    config = ClusterConfig.from_dict(json.loads(args.config_json))
    host = NodeHost(
        args.protocol, config, args.node, args.num_keys, args.duration,
        args.grace,
    )

    def emit(obj: dict) -> None:
        sys.stdout.write(json.dumps(obj) + "\n")
        sys.stdout.flush()

    def expect(cmd: str) -> dict:
        line = sys.stdin.readline()
        if not line:
            raise RuntimeError(f"parent vanished while child awaited {cmd!r}")
        msg = json.loads(line)
        if msg.get("cmd") != cmd:
            raise RuntimeError(f"expected {cmd!r}, got {msg!r}")
        return msg

    listen_host, listen_port = host.transport.listen_address
    emit({"event": "listening", "node": args.node,
          "host": listen_host, "port": listen_port})
    try:
        start = expect("start")
        host.transport.set_peers(
            {int(k): (v[0], v[1]) for k, v in start["peers"].items()}
        )
        loaded = host.load_owned()
        host.run_workload()
        emit({"event": "done", "node": args.node, "loaded": loaded,
              "committed": host.committed, "aborted": host.aborted})
        expect("report")
        emit(host.report())
        expect("exit")
    finally:
        host.transport.close()
    return 0


# ----------------------------------------------------------------------
# Parent: spawn, coordinate, merge, check
# ----------------------------------------------------------------------
class _Child:
    """One spawned node-host process plus a reader thread for its stdout."""

    def __init__(self, node_id: int, proc: subprocess.Popen) -> None:
        self.node_id = node_id
        self.proc = proc
        self.lines: "queue.Queue[Optional[str]]" = queue.Queue()
        self._reader = threading.Thread(target=self._pump, daemon=True)
        self._reader.start()

    def _pump(self) -> None:
        for line in self.proc.stdout:
            self.lines.put(line)
        self.lines.put(None)

    def recv(self, event: str, timeout: float) -> dict:
        while True:
            line = self.lines.get(timeout=timeout)
            if line is None:
                raise RuntimeError(
                    f"node {self.node_id} exited before sending {event!r} "
                    f"(rc={self.proc.poll()})"
                )
            msg = json.loads(line)
            if msg.get("event") == event:
                return msg

    def send(self, obj: dict) -> None:
        self.proc.stdin.write(json.dumps(obj) + "\n")
        self.proc.stdin.flush()


def _merge_reports(reports: List[dict]) -> Tuple[History, VersionCatalog]:
    """Union the children's histories and catalogs; resolve write vids.

    Mirrors :meth:`repro.system.Cluster.finalized_history`: coordinators
    never learn the vids their writes received at remote nodes, so
    update-transaction writes are reconstructed from the merged
    catalog's ``writer_txn`` stamps.
    """
    history = History()
    catalog: VersionCatalog = {}
    for report in reports:
        for key, vid, origin, seq, writer in report["catalog"]:
            catalog[(key, vid)] = (origin, seq, writer)
        for raw in report["records"]:
            history.append(
                TxnRecord(
                    txn_id=raw["txn_id"],
                    node_id=raw["node_id"],
                    is_read_only=raw["is_read_only"],
                    start_time=raw["start_time"],
                    end_time=raw["end_time"],
                    ops=[
                        OpRecord(kind, key, vid, latest)
                        for kind, key, vid, latest in raw["ops"]
                    ],
                    seq_no=raw["seq_no"],
                    commit_vc=tuple(raw["commit_vc"])
                    if raw["commit_vc"] is not None
                    else None,
                    profile=raw["profile"],
                )
            )
    writes_by_txn: Dict[int, list] = {}
    for (key, vid), (_origin, _seq, writer) in catalog.items():
        if writer is not None:
            writes_by_txn.setdefault(writer, []).append((key, vid))
    for record in history:
        if record.is_read_only or record.writes():
            continue
        for key, vid in sorted(writes_by_txn.get(record.txn_id, []), key=repr):
            record.ops.append(OpRecord("w", key, vid))
    return history, catalog


def launch_cluster(
    protocol: str = "fwkv",
    config: Optional[ClusterConfig] = None,
    *,
    num_keys: int = 64,
    duration: float = 1.0,
    grace: float = 0.5,
    check: bool = True,
) -> dict:
    """Run a multi-process socket cluster end to end; returns a summary.

    Spawns ``config.num_nodes`` node-host processes, runs the seeded
    workload over real TCP, merges the reports, and (with ``check``)
    asserts the PSI oracles over the union.  Raises if any child fails
    or, when checking, if an oracle finds a violation.
    """
    if config is None:
        config = ClusterConfig(num_nodes=3)
    if config.transport.kind != "socket":
        raise ValueError(
            'launch_cluster requires TransportConfig(kind="socket")'
        )
    env = dict(os.environ)
    src_root = os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))
    env["PYTHONPATH"] = src_root + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    config_json = json.dumps(config.to_dict())
    children: List[_Child] = []
    try:
        for node_id in config.node_ids:
            proc = subprocess.Popen(
                [
                    sys.executable, "-m", "repro.net.host",
                    "--node", str(node_id),
                    "--protocol", protocol,
                    "--config-json", config_json,
                    "--num-keys", str(num_keys),
                    "--duration", str(duration),
                    "--grace", str(grace),
                ],
                stdin=subprocess.PIPE,
                stdout=subprocess.PIPE,
                stderr=None,  # inherit: child tracebacks stay visible
                text=True,
                env=env,
            )
            children.append(_Child(node_id, proc))

        peers = {}
        for child in children:
            msg = child.recv("listening", PHASE_TIMEOUT)
            peers[str(child.node_id)] = [msg["host"], msg["port"]]
        for child in children:
            child.send({"cmd": "start", "peers": peers})

        # Wall budget: virtual run length mapped through time_scale,
        # plus slack for loading and scheduling.
        run_budget = (
            (duration + grace) / config.transport.time_scale + PHASE_TIMEOUT
        )
        done = [child.recv("done", run_budget) for child in children]

        reports = []
        for child in children:
            child.send({"cmd": "report"})
            reports.append(child.recv("report", PHASE_TIMEOUT))
        for child in children:
            child.send({"cmd": "exit"})
        exit_codes = [child.proc.wait(timeout=PHASE_TIMEOUT)
                      for child in children]
    finally:
        for child in children:
            if child.proc.poll() is None:
                child.proc.kill()

    history, catalog = _merge_reports(reports)
    committed = sum(r["committed"] for r in reports)
    aborted = sum(r["aborted"] for r in reports)
    summary = {
        "protocol": protocol,
        "num_nodes": config.num_nodes,
        "committed": committed,
        "aborted": aborted,
        "loaded": sum(d["loaded"] for d in done),
        "history_records": len(history),
        "messages_sent": sum(r["stats"]["messages_sent"] for r in reports),
        "exit_codes": exit_codes,
        "checks": "skipped",
    }
    if any(exit_codes):
        raise RuntimeError(f"node host(s) failed: exit codes {exit_codes}")
    if check:
        check_no_read_skew(history)
        check_site_order(history, catalog)
        if committed <= 0:
            raise RuntimeError("socket cluster committed no transactions")
        summary["checks"] = "green"
    return summary


if __name__ == "__main__":
    sys.exit(_child_main())
