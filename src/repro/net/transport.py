"""The transport seam: one abstract fabric, two backends.

Every protocol node talks to the cluster through two interfaces:

* :class:`Transport` -- the message fabric itself: node registration,
  one-way sends, per-run statistics, and the *pump* that advances the
  cluster's virtual clock.  The deterministic simulator backend
  (:class:`repro.net.network.Network`) and the real asyncio TCP backend
  (:class:`repro.net.socket_transport.SocketTransport`) both implement
  it, so ``Cluster``/``MVCCNode`` code never branches on which one it is
  running over.
* :class:`Endpoint` -- request/reply matching on top of a transport:
  bare requests, deadline-bounded requests, and the retrying ``call``
  ladder.  :class:`repro.net.rpc.RpcEndpoint` is the one implementation;
  it works unchanged over either transport because it only consumes the
  :class:`Transport` surface.

The seam is chosen at construction (:func:`build_transport`, driven by
:class:`repro.config.TransportConfig`); everything after construction is
backend-agnostic.  The simulator backend's ``pump`` is exactly
``sim.run`` -- a ``kind="sim"`` cluster is bit-identical to the
pre-seam behaviour -- while the socket backend's pump maps virtual time
onto the wall clock and injects frames arriving from real connections.

Fault injection (crash/partition/loss) is a simulator feature: the base
class exposes the probe surface (``is_crashed`` et al.) as "everything
is healthy" and refuses the mutation surface, so protocol code may probe
freely on any backend while nemesis schedules stay sim-only.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Any, Callable, ClassVar, Optional

from repro.net.message import Envelope

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.config import ClusterConfig, NetworkConfig, RpcConfig
    from repro.net.network import NetworkStats
    from repro.sim import Event, Simulator

DeliverFn = Callable[[Envelope], None]


class TransportError(RuntimeError):
    """An operation the active transport backend cannot perform."""


class Transport(ABC):
    """Abstract message fabric between the nodes of one cluster.

    Concrete backends provide the attributes ``sim`` (the node-side
    :class:`~repro.sim.Simulator` that executes all protocol code),
    ``config`` (a :class:`~repro.config.NetworkConfig`), ``seed`` (the
    run seed RNG streams derive from), ``stats`` (a
    :class:`~repro.net.network.NetworkStats`), ``drop_log`` (optional
    fault-accounting list) and ``delay_policy`` (optional per-envelope
    extra-delay hook; real backends may ignore it).
    """

    #: Backend discriminator, matching ``TransportConfig.kind``.
    kind: ClassVar[str] = "abstract"

    sim: "Simulator"
    config: "NetworkConfig"
    seed: int
    stats: "NetworkStats"

    # ------------------------------------------------------------------
    # Core fabric surface
    # ------------------------------------------------------------------
    @abstractmethod
    def register(self, node_id: int, deliver: DeliverFn) -> None:
        """Attach a local node's delivery callback."""

    @abstractmethod
    def send(self, src: int, dst: int, msg_type: str, payload) -> Envelope:
        """Send one message; returns the (possibly dropped) envelope."""

    def endpoint(self, node_id: int, config: "Optional[RpcConfig]" = None):
        """Build the request/reply :class:`Endpoint` for a local node."""
        from repro.net.rpc import RpcEndpoint

        return RpcEndpoint(self.sim, self, node_id, config)

    # ------------------------------------------------------------------
    # Run loop
    # ------------------------------------------------------------------
    def pump(self, until: Optional[float] = None, stop=None) -> float:
        """Advance the cluster's virtual clock; returns the final time.

        ``until`` bounds the run in virtual seconds; ``stop`` is an
        optional :class:`~repro.sim.Event` (usually a process) after
        whose trigger the pump may return.  The simulator backend runs to
        quiescence -- which settles ``stop`` if anything ever will -- so
        this default is exactly ``sim.run(until)``.  Real backends
        override it to interleave the simulator with I/O and *must*
        honour ``stop``, because a node awaiting a remote reply has an
        empty local schedule without being done.
        """
        return self.sim.run(until)

    def close(self) -> None:
        """Release external resources (sockets, threads).  Idempotent;
        the simulator backend holds none and inherits this no-op."""

    # ------------------------------------------------------------------
    # Fault surface: probes answer "healthy", mutations refuse
    # ------------------------------------------------------------------
    def is_crashed(self, node_id: int) -> bool:
        """Whether the node is crash-stopped (injected faults only)."""
        return False

    def is_partitioned(self, a: int, b: int) -> bool:
        """Whether the directed link ``a -> b`` is cut."""
        return False

    def crash(self, node_id: int) -> None:
        raise TransportError(
            f"{self.kind!r} transport does not support fault injection; "
            "crash/partition schedules require the sim backend"
        )

    def restart(self, node_id: int) -> None:
        raise TransportError(
            f"{self.kind!r} transport does not support fault injection"
        )

    def partition(self, a: int, b: int) -> None:
        raise TransportError(
            f"{self.kind!r} transport does not support fault injection"
        )

    def heal(self, a: int, b: int) -> None:
        raise TransportError(
            f"{self.kind!r} transport does not support fault injection"
        )

    def heal_all(self) -> None:
        raise TransportError(
            f"{self.kind!r} transport does not support fault injection"
        )

    def last_send_horizon(self, src: int, dst: int) -> float:
        """Newest known send/delivery time of any ``src -> dst`` message
        (``0.0`` if the pair never communicated); heartbeat suppression
        reads it as liveness evidence."""
        return 0.0


class Endpoint(ABC):
    """Request/reply matching for one node over a :class:`Transport`.

    The contract protocol code relies on:

    * :meth:`request` sends and returns an event resolving with the reply
      body; with ``deadline`` set the event instead *fails* with
      :class:`~repro.net.rpc.RpcTimeoutError` after ``deadline`` virtual
      seconds without a reply (the slot is retired, so a late reply is
      dropped as stale).  Without a deadline the event may never resolve
      if the peer is gone -- the paper's reliable-channel primitive.
    * :meth:`call` is a generator subroutine layering per-attempt
      timeouts, seeded backoff, and capped retries on top.
    * :meth:`reply` answers a previously delivered request envelope;
      :meth:`handle_reply` is the node's dispatch hook for reply
      envelopes.
    """

    @abstractmethod
    def request(
        self,
        dst: int,
        msg_type: str,
        body: Any,
        deadline: Optional[float] = None,
    ) -> "Event":
        """Send a request; the returned event delivers the reply body."""

    @abstractmethod
    def call(self, dst: int, msg_type: str, body: Any, config=None):
        """Generator subroutine: request with timeout/backoff/retries."""

    @abstractmethod
    def reply(self, request_envelope: Envelope, body: Any) -> None:
        """Answer a request previously delivered to this node."""

    @abstractmethod
    def handle_reply(self, envelope: Envelope) -> None:
        """Dispatch a reply envelope to its waiting event."""


def build_transport(sim: "Simulator", config: "ClusterConfig") -> Transport:
    """Construct the transport a :class:`~repro.system.Cluster` runs on.

    The single place backend selection happens: ``kind="sim"`` (default)
    builds the deterministic :class:`~repro.net.network.Network`,
    ``kind="socket"`` an in-process
    :class:`~repro.net.socket_transport.SocketTransport` hosting every
    node locally and carrying all inter-node traffic over real loopback
    TCP.  Everything downstream of construction sees only the
    :class:`Transport` interface.
    """
    kind = config.transport.kind
    if kind == "sim":
        from repro.net.network import Network

        return Network(sim, config.network, seed=config.seed)
    if kind == "socket":
        from repro.net.socket_transport import SocketTransport

        return SocketTransport(
            sim,
            config.network,
            seed=config.seed,
            options=config.transport,
            num_nodes=config.num_nodes,
        )
    raise ValueError(f"unknown transport kind {kind!r}")
