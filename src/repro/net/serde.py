"""Canonical versioned byte serialization for wire messages.

The simulated fabric passes payload objects by reference; the socket
fabric cannot, so every envelope crossing a real TCP connection goes
through this module.  Design goals, in order:

1. **Total over the wire vocabulary.**  Every dataclass in
   ``repro.core.wire`` plus the RPC framing payloads (``_Request`` /
   ``_Reply``) has a stable numeric code in :data:`REGISTRY`; every
   field value is built from a small closed set of primitives (ints of
   arbitrary width, floats, strings, bytes, bools, ``None``, tuples,
   lists, dicts, sets, frozensets, registered dataclasses).  Anything
   else raises :class:`WireEncodeError` at encode time -- better a loud
   failure at the sender than a silent divergence at the receiver.
2. **Canonical.**  One value has exactly one encoding: dict entries are
   sorted by encoded key bytes and set/frozenset elements by encoded
   element bytes, so ``encode(decode(b)) == b`` holds for any valid
   frame and byte-level comparison of re-encodings is meaningful.
3. **Versioned.**  Every envelope starts with :data:`WIRE_VERSION`; a
   receiver refuses frames from a different version instead of
   misparsing them.

Format summary (all integers are unsigned LEB128 varints unless noted):

* value   = tag byte, then tag-specific payload;
* int     = zigzag-mapped varint (arbitrary precision);
* float   = 8 bytes, big-endian IEEE-754 binary64;
* str     = length + UTF-8 bytes;  bytes = length + raw bytes;
* tuple/list = count + encoded elements;
* dict    = count + (encoded key, encoded value) pairs, sorted by key
  bytes;  set/frozenset = count + encoded elements, sorted;
* dataclass = registry code + field values in ``dataclasses.fields``
  order (field names never travel; the registry pins the shape).

Frames on a connection are 4-byte big-endian length prefixes followed by
the envelope bytes; see :class:`FrameDecoder`.
"""

from __future__ import annotations

import dataclasses
import struct
from typing import Any, Callable, Dict, List, Tuple, Type

from repro.core import wire
from repro.net.message import Envelope
from repro.net.rpc import _Reply, _Request

#: Bumped on any incompatible change to the value format or registry.
WIRE_VERSION = 1

#: Refuse frames larger than this (a corrupt length prefix must not make
#: the receiver try to buffer gigabytes).
MAX_FRAME_BYTES = 64 * 1024 * 1024


class WireEncodeError(TypeError):
    """A payload contains a value outside the wire vocabulary."""


class WireDecodeError(ValueError):
    """A frame is truncated, corrupt, or from an unknown version."""


# ----------------------------------------------------------------------
# Registry: stable numeric codes for every dataclass allowed on the wire
# ----------------------------------------------------------------------

#: code -> class.  Codes are append-only: never renumber, never reuse.
REGISTRY: Dict[int, type] = {
    1: _Request,
    2: _Reply,
    3: wire.ReadRequestBody,
    4: wire.ReadReturnBody,
    5: wire.PrepareBody,
    6: wire.VoteBody,
    7: wire.DecideBody,
    8: wire.PropagateBody,
    9: wire.RemoveBody,
    10: wire.TxnStatusRequestBody,
    11: wire.TxnStatusReplyBody,
    12: wire.SyncRequestBody,
    13: wire.SyncReplyBody,
    14: wire.SnapshotOfferBody,
    15: wire.SnapshotChunkBody,
    16: wire.SnapshotAckBody,
    17: wire.ReplicationEntry,
    18: wire.ReplicateBody,
    19: wire.ReplicateAckBody,
    20: wire.ViewProposeBody,
    21: wire.ViewAckBody,
    22: wire.ViewCommitBody,
    23: wire.HeartbeatBody,
    24: wire.SimpleReadRequestBody,
    25: wire.SimpleReadReturnBody,
    26: wire.SimplePrepareBody,
    27: wire.SimpleVoteBody,
    28: wire.SimpleDecideBody,
}

_CODE_OF: Dict[type, int] = {cls: code for code, cls in REGISTRY.items()}
#: class -> ordered field names, resolved once (dataclasses.fields walks
#: the MRO every call; this sits on every message of a socket run).
_FIELDS_OF: Dict[type, Tuple[str, ...]] = {
    cls: tuple(f.name for f in dataclasses.fields(cls))
    for cls in REGISTRY.values()
}

# Value tags.
_T_NONE = 0x00
_T_FALSE = 0x01
_T_TRUE = 0x02
_T_INT = 0x03
_T_FLOAT = 0x04
_T_STR = 0x05
_T_BYTES = 0x06
_T_TUPLE = 0x07
_T_LIST = 0x08
_T_DICT = 0x09
_T_FROZENSET = 0x0A
_T_SET = 0x0B
_T_DATACLASS = 0x0C

_F64 = struct.Struct(">d")


def _write_varint(out: bytearray, value: int) -> None:
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _write_value(out: bytearray, value: Any) -> None:
    # Exact type checks throughout: bool is an int subclass and a
    # registered dataclass must not be mistaken for a plain object.
    cls = type(value)
    if value is None:
        out.append(_T_NONE)
    elif cls is bool:
        out.append(_T_TRUE if value else _T_FALSE)
    elif cls is int:
        out.append(_T_INT)
        # Zigzag: small negatives stay small; arbitrary precision.
        _write_varint(out, (value << 1) if value >= 0 else ((-value) << 1) - 1)
    elif cls is float:
        out.append(_T_FLOAT)
        out += _F64.pack(value)
    elif cls is str:
        data = value.encode("utf-8")
        out.append(_T_STR)
        _write_varint(out, len(data))
        out += data
    elif cls is bytes:
        out.append(_T_BYTES)
        _write_varint(out, len(value))
        out += value
    elif cls is tuple:
        out.append(_T_TUPLE)
        _write_varint(out, len(value))
        for item in value:
            _write_value(out, item)
    elif cls is list:
        out.append(_T_LIST)
        _write_varint(out, len(value))
        for item in value:
            _write_value(out, item)
    elif cls is dict:
        out.append(_T_DICT)
        _write_varint(out, len(value))
        entries = []
        for key, val in value.items():
            key_buf = bytearray()
            _write_value(key_buf, key)
            entries.append((bytes(key_buf), val))
        entries.sort(key=lambda pair: pair[0])
        for key_bytes, val in entries:
            out += key_bytes
            _write_value(out, val)
    elif cls is frozenset or cls is set:
        out.append(_T_FROZENSET if cls is frozenset else _T_SET)
        _write_varint(out, len(value))
        encoded = []
        for item in value:
            item_buf = bytearray()
            _write_value(item_buf, item)
            encoded.append(bytes(item_buf))
        encoded.sort()
        for item_bytes in encoded:
            out += item_bytes
    else:
        code = _CODE_OF.get(cls)
        if code is None:
            raise WireEncodeError(
                f"{cls.__name__} is not wire-encodable (value {value!r}); "
                f"register it in repro.net.serde.REGISTRY or use plain "
                f"tuples/dicts"
            )
        out.append(_T_DATACLASS)
        _write_varint(out, code)
        for name in _FIELDS_OF[cls]:
            _write_value(out, getattr(value, name))


def _read_varint(data: bytes, pos: int) -> Tuple[int, int]:
    result = 0
    shift = 0
    while True:
        if pos >= len(data):
            raise WireDecodeError("truncated varint")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
        # Arbitrary-precision ints are allowed, but a kilobit-wide one
        # is a corrupt stream, not a transaction id.
        if shift > 146 * 7:
            raise WireDecodeError("varint too long")


def _read_value(data: bytes, pos: int) -> Tuple[Any, int]:
    if pos >= len(data):
        raise WireDecodeError("truncated value")
    tag = data[pos]
    pos += 1
    if tag == _T_NONE:
        return None, pos
    if tag == _T_FALSE:
        return False, pos
    if tag == _T_TRUE:
        return True, pos
    if tag == _T_INT:
        raw, pos = _read_varint(data, pos)
        return (raw >> 1) ^ -(raw & 1), pos
    if tag == _T_FLOAT:
        if pos + 8 > len(data):
            raise WireDecodeError("truncated float")
        return _F64.unpack_from(data, pos)[0], pos + 8
    if tag == _T_STR:
        length, pos = _read_varint(data, pos)
        end = pos + length
        if end > len(data):
            raise WireDecodeError("truncated string")
        return data[pos:end].decode("utf-8"), end
    if tag == _T_BYTES:
        length, pos = _read_varint(data, pos)
        end = pos + length
        if end > len(data):
            raise WireDecodeError("truncated bytes")
        return data[pos:end], end
    if tag == _T_TUPLE or tag == _T_LIST:
        count, pos = _read_varint(data, pos)
        items: List[Any] = []
        for _ in range(count):
            item, pos = _read_value(data, pos)
            items.append(item)
        return (tuple(items) if tag == _T_TUPLE else items), pos
    if tag == _T_DICT:
        count, pos = _read_varint(data, pos)
        result: Dict[Any, Any] = {}
        for _ in range(count):
            key, pos = _read_value(data, pos)
            val, pos = _read_value(data, pos)
            result[key] = val
        return result, pos
    if tag == _T_FROZENSET or tag == _T_SET:
        count, pos = _read_varint(data, pos)
        elems = []
        for _ in range(count):
            item, pos = _read_value(data, pos)
            elems.append(item)
        return (frozenset(elems) if tag == _T_FROZENSET else set(elems)), pos
    if tag == _T_DATACLASS:
        code, pos = _read_varint(data, pos)
        cls = REGISTRY.get(code)
        if cls is None:
            raise WireDecodeError(f"unknown dataclass code {code}")
        args = []
        for _ in _FIELDS_OF[cls]:
            arg, pos = _read_value(data, pos)
            args.append(arg)
        return cls(*args), pos
    raise WireDecodeError(f"unknown value tag 0x{tag:02x}")


def encode_value(value: Any) -> bytes:
    """Encode one value to canonical bytes (mostly for tests)."""
    out = bytearray()
    _write_value(out, value)
    return bytes(out)


def decode_value(data: bytes) -> Any:
    """Inverse of :func:`encode_value`; rejects trailing garbage."""
    value, pos = _read_value(data, 0)
    if pos != len(data):
        raise WireDecodeError(f"{len(data) - pos} trailing bytes after value")
    return value


# ----------------------------------------------------------------------
# Envelopes and frames
# ----------------------------------------------------------------------


def encode_envelope(envelope: Envelope) -> bytes:
    """Envelope -> versioned canonical bytes.

    ``deliver_time`` is intentionally not carried: on a real network the
    receiver's transport stamps delivery at arrival.  ``send_time`` and
    ``msg_id`` travel for tracing parity with the simulated fabric.
    """
    out = bytearray()
    out.append(WIRE_VERSION)
    _write_value(
        out,
        (
            envelope.msg_type,
            envelope.src,
            envelope.dst,
            envelope.payload,
            envelope.send_time,
            envelope.msg_id,
        ),
    )
    return bytes(out)


def decode_envelope(data: bytes) -> Envelope:
    """Inverse of :func:`encode_envelope` (``deliver_time`` left 0.0)."""
    if not data:
        raise WireDecodeError("empty envelope frame")
    version = data[0]
    if version != WIRE_VERSION:
        raise WireDecodeError(
            f"wire version {version} != supported {WIRE_VERSION}"
        )
    fields, pos = _read_value(data, 1)
    if pos != len(data):
        raise WireDecodeError(f"{len(data) - pos} trailing bytes in envelope")
    if not isinstance(fields, tuple) or len(fields) != 6:
        raise WireDecodeError("malformed envelope tuple")
    msg_type, src, dst, payload, send_time, msg_id = fields
    return Envelope(
        msg_type=msg_type,
        src=src,
        dst=dst,
        payload=payload,
        send_time=send_time,
        deliver_time=0.0,
        msg_id=msg_id,
    )


def encode_frame(envelope: Envelope) -> bytes:
    """Envelope -> length-prefixed frame ready for a socket write."""
    body = encode_envelope(envelope)
    if len(body) > MAX_FRAME_BYTES:
        raise WireEncodeError(f"frame of {len(body)} bytes exceeds cap")
    return struct.pack(">I", len(body)) + body


class FrameDecoder:
    """Incremental splitter of a TCP byte stream into envelope frames.

    Feed arbitrary chunks; get back complete envelope byte bodies (not
    yet decoded -- the caller chooses where decoding runs).  A frame
    longer than :data:`MAX_FRAME_BYTES` raises, poisoning the
    connection, which is the right response to a corrupt length prefix.
    """

    __slots__ = ("_buffer",)

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, chunk: bytes) -> List[bytes]:
        self._buffer += chunk
        frames: List[bytes] = []
        while True:
            if len(self._buffer) < 4:
                return frames
            (length,) = struct.unpack_from(">I", self._buffer)
            if length > MAX_FRAME_BYTES:
                raise WireDecodeError(
                    f"frame length {length} exceeds cap {MAX_FRAME_BYTES}"
                )
            if len(self._buffer) < 4 + length:
                return frames
            frames.append(bytes(self._buffer[4 : 4 + length]))
            del self._buffer[: 4 + length]

    @property
    def pending_bytes(self) -> int:
        return len(self._buffer)
