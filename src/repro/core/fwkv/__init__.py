"""FW-KV: the paper's concurrency control (PSI with fresh read snapshots)."""

from repro.core.fwkv.node import FWKVNode
from repro.core.fwkv.visibility import (
    select_read_only_version,
    select_update_version,
    update_excluded,
    visible_under,
)

__all__ = [
    "FWKVNode",
    "select_read_only_version",
    "select_update_version",
    "update_excluded",
    "visible_under",
]
