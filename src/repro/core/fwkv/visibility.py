"""FW-KV version-selection rules (Alg. 3), as pure functions.

Keeping these free of node state makes the subtle visibility logic unit-
testable against the paper's worked examples (Figures 2 and 3).
"""

from __future__ import annotations

from typing import AbstractSet, Sequence, Tuple

from repro.storage.chain import VersionChain
from repro.storage.version import Version

#: Shared empty default: no membership change has retired any origin.
_NO_DROPPED: AbstractSet[int] = frozenset()


def _entry(entries: Sequence[int], site: int) -> int:
    """Zero-default indexing: clocks of different widths coexist while a
    membership change is in flight, and a missing entry means the clock
    was minted before that site joined -- exactly zero."""
    return entries[site] if site < len(entries) else 0


def visible_under(
    version: Version,
    txn_vc: Sequence[int],
    has_read: Sequence[bool],
    *,
    dropped: AbstractSet[int] = _NO_DROPPED,
) -> bool:
    """Alg. 3 lines 4/13: the visibility test shared by both paths.

    A version is visible when its clock does not exceed the transaction's
    clock at any *already-read* site; sites the transaction has not read
    from yet place no constraint (that is what lets a first contact observe
    the latest data there).

    Sites in ``dropped`` -- origins retired by a committed shrink view --
    place no constraint either: the shrink gate proved every member's
    clock dominates the retired origin's final frontier, so any entry a
    version carries for it is already applied under every live snapshot.
    (Merging an old wide version clock can resurrect a zero for such a
    site in ``txn_vc``; without the mask that stale zero would hide the
    chain head.)
    """
    vc = version.vc.entries
    return all(
        _entry(vc, site) <= _entry(txn_vc, site)
        for site in range(len(has_read))
        if has_read[site] and site not in dropped
    )


def update_excluded(
    version: Version,
    txn_vc: Sequence[int],
    has_read: Sequence[bool],
    *,
    dropped: AbstractSet[int] = _NO_DROPPED,
) -> bool:
    """Alg. 3 line 14: the conservative exclusion rule for update reads.

    A visible version is excluded when it *equals* the transaction's clock
    at every already-read site yet is *newer* at some not-yet-read site --
    the signature of a commit by a potentially concurrent conflicting
    transaction (the SCORe-style over-approximation; see Figure 3, where
    ``y1`` with VC <2,7,7> is excluded for T1 with VC <2,7,6>).

    The rule only applies after the first read: the paper guarantees "an
    update transaction ... is guaranteed to return the latest version of
    its first read operation" (Section 2.4), and Figure 4 shows the first
    read returning a version strictly newer than the begin snapshot.  A
    literal reading of the formula would exclude such versions (the
    universally-quantified clause is vacuous when ``hasRead`` is all
    false), so the first read uses an empty ExcludedSet, matching the
    prose ("After the first read operation served by node n, for any
    subsequent operation ... the check in Line 14 excludes ...",
    Section 4.6).
    """
    if not any(has_read):
        return False
    vc = version.vc.entries
    equal_at_read_sites = all(
        _entry(vc, site) == _entry(txn_vc, site)
        for site in range(len(has_read))
        if has_read[site] and site not in dropped
    )
    if not equal_at_read_sites:
        return False
    # A retired (dropped) origin's entry can never signal a concurrent
    # conflicting commit: no transaction will ever commit at it again,
    # and whatever it did commit is fully applied everywhere (shrink
    # gate).  Treating it as "newer at an unread site" would permanently
    # exclude the chain head once an old wide version clock resurrects a
    # zero for that site in ``txn_vc``.
    return any(
        _entry(vc, site) > _entry(txn_vc, site)
        for site in range(len(has_read))
        if not has_read[site] and site not in dropped
    )


def select_read_only_version(
    chain: VersionChain,
    txn_vc: Sequence[int],
    has_read: Sequence[bool],
    txn_id: int,
    *,
    dropped: AbstractSet[int] = _NO_DROPPED,
) -> Tuple[Version, int]:
    """Alg. 3 lines 2-10: freshest visible version not anti-depended upon.

    Returns ``(version, vas_entries_inspected)``; the second component is
    the bookkeeping-cost proxy charged by the read handler.

    The loop fuses :func:`visible_under` inline (no per-version function
    call, early exit on the first violated site); the property suite
    asserts it selects exactly what the reference predicates admit.
    Two specializations keep the per-version scan lean: a transaction
    that has read nowhere skips the clock loop entirely (no active site
    can constrain it), and the no-retired-origins common case drops the
    ``enumerate``/``dropped`` bookkeeping from the inner loop.
    """
    inspected = 0
    any_read = True in has_read
    no_dropped = not dropped
    for version in chain.newest_first():
        if any_read:
            visible = True
            if no_dropped:
                for a, t, active in zip(version.vc.entries, txn_vc, has_read):
                    if active and a > t:
                        visible = False
                        break
            else:
                for site, (a, t, active) in enumerate(
                    zip(version.vc.entries, txn_vc, has_read)
                ):
                    if active and a > t and site not in dropped:
                        visible = False
                        break
            if not visible:
                continue
        access = version.access_set
        if access:
            inspected += 1
            if txn_id in access:
                # Alg. 3 lines 5-6: an anti-dependency (direct or
                # transitive) with this version's writer already exists;
                # keep looking at older versions.
                continue
        return version, inspected + len(access)
    raise RuntimeError(
        f"no visible version of {chain.key!r} for read-only txn {txn_id}; "
        "the initial version should always be visible"
    )


def select_update_version(
    chain: VersionChain,
    txn_vc: Sequence[int],
    has_read: Sequence[bool],
    *,
    dropped: AbstractSet[int] = _NO_DROPPED,
) -> Tuple[Version, int]:
    """Alg. 3 lines 11-18: freshest visible, conservatively-safe version.

    Single fused pass per version over (:func:`visible_under` and
    :func:`update_excluded`); the property suite asserts equivalence with
    the reference predicates.
    """
    any_read = True in has_read
    if not any_read:
        # First read: no active site constrains visibility and the
        # exclusion rule does not apply yet, so the chain head wins.
        for version in chain.newest_first():
            return version, 0
    elif not dropped:
        # No retired origins: same fused pass without the enumerate /
        # membership-mask bookkeeping.
        for version in chain.newest_first():
            visible = True
            equal_at_read = True
            newer_at_unread = False
            for a, t, active in zip(version.vc.entries, txn_vc, has_read):
                if active:
                    if a > t:
                        visible = False
                        break
                    if a != t:
                        equal_at_read = False
                elif a > t:
                    newer_at_unread = True
            if not visible:
                continue
            if equal_at_read and newer_at_unread:
                continue
            return version, 0
    else:
        for version in chain.newest_first():
            visible = True
            equal_at_read = True
            newer_at_unread = False
            for site, (a, t, active) in enumerate(
                zip(version.vc.entries, txn_vc, has_read)
            ):
                if site in dropped:
                    continue  # a retired origin places no constraint
                if active:
                    if a > t:
                        visible = False
                        break
                    if a != t:
                        equal_at_read = False
                elif a > t:
                    newer_at_unread = True
            if not visible:
                continue
            if equal_at_read and newer_at_unread:
                continue
            return version, 0
    raise RuntimeError(
        f"no visible version of {chain.key!r} for an update read; "
        "the initial version should always be visible"
    )
