"""The FW-KV protocol node: fresh reads via visible-read bookkeeping."""

from __future__ import annotations

from typing import Hashable, Iterable, List, Optional, Tuple

from repro.cluster.node import Node
from repro.core.fwkv.visibility import (
    select_read_only_version,
    select_update_version,
)
from repro.core.interfaces import SharedState
from repro.core.mvcc_node import MVCCNode, _TARGET_DEPTH
from repro.core.transaction import Transaction
from repro.core.wire import ReadRequestBody, RemoveBody
from repro.net.message import Envelope, MessageType
from repro.storage.version import Version


class FWKVNode(MVCCNode):
    """Walter's machinery plus the FW-KV freshness extensions.

    The deltas over :class:`~repro.core.mvcc_node.MVCCNode` defaults are
    exactly the paper's additional metadata and steps (Section 4):

    * read handlers run under the shared side of the per-key lock so they
      exclude concurrent conflicting update commits but not each other;
    * read-only reads register in the version-access-set (visible reads)
      and skip versions already carrying their identifier;
    * replies carry a ``maxVC`` freshness bound -- the node's current
      ``siteVC`` merged in on a first contact -- advancing the reading
      snapshot (Alg. 2 line 9);
    * prepare harvests the VAS of overwritten versions; decide propagates
      the merged set into the new versions (transitive anti-dependencies);
    * committed read-only transactions send ``Remove`` to every contacted
      node to garbage-collect their VAS entries.
    """

    protocol_name = "fwkv"

    def __init__(self, node: Node, shared: SharedState) -> None:
        super().__init__(node, shared)
        node.on(MessageType.REMOVE, self.on_remove)
        # Outgoing Remove batching: destination -> pending identifiers.
        self._pending_removes: dict = {}
        self._remove_flush_scheduled = False
        # Adaptive mode: per-destination Remove windows (AIMD, same rule
        # as the Propagate windows in MVCCNode._flush_propagate).
        self._remove_windows: dict = {}

    def _on_volatile_wiped(self) -> None:
        # Pending Remove identifiers were never sent; they name VAS
        # entries in stores that survived, but re-deriving them is not
        # possible from the WAL -- dropping them only delays VAS cleanup
        # (bounded growth, never a correctness issue).
        self._pending_removes = {}
        self._remove_flush_scheduled = False
        self._remove_windows = {}

    # ------------------------------------------------------------------
    # Read-side hooks
    # ------------------------------------------------------------------
    def _read_needs_lock(self, request: ReadRequestBody) -> bool:
        # Alg. 3 lines 3/12: both transaction classes lock the key; the
        # table's shared mode lets read handlers overlap each other.
        return True

    def _select_version(self, request: ReadRequestBody) -> Tuple[Version, int]:
        chain = self.store.chain(request.key)
        dropped = self.membership.dropped
        if request.is_read_only:
            return select_read_only_version(
                chain, request.vc, request.has_read, request.txn_id,
                dropped=dropped,
            )
        return select_update_version(
            chain, request.vc, request.has_read, dropped=dropped
        )

    def _register_visible_read(
        self, request: ReadRequestBody, version: Version
    ) -> None:
        if request.is_read_only and self.shared.config.fwkv_visible_reads:
            self.store.vas_add(version, request.txn_id)  # Alg. 3 line 8

    def _freshness_bound(
        self, request: ReadRequestBody, version: Version
    ) -> Optional[Tuple[int, ...]]:
        """The ``maxVC`` of the ReadReturn message.

        On a *fresh contact* -- the first read of this node by a read-only
        transaction, or the very first read of an update transaction --
        the node's current ``siteVC`` is merged in, advancing the snapshot
        to "the latest timestamp of N" exactly as Figures 2-4 show.
        Otherwise the bound is just the version's commit clock.
        """
        if request.is_read_only:
            # A flag list narrower than our id means the transaction never
            # contacted us (it began before this node joined): fresh.
            fresh = self.node_id >= len(request.has_read) or not (
                request.has_read[self.node_id]
            )
        else:
            fresh = (
                self.shared.config.fwkv_fresh_update_reads
                and not any(request.has_read)
            )
        if fresh:
            return version.vc.merged_tuple(self.site_vc)
        return version.vc.to_tuple()

    # ------------------------------------------------------------------
    # Commit-side hooks
    # ------------------------------------------------------------------
    def _collect_antideps(self, writes: Iterable[Hashable]):
        """Alg. 5 lines 8-10: harvest the VAS of versions being overwritten."""
        collected = set()
        if not self.shared.config.fwkv_visible_reads:
            return frozenset()
        for key in writes:
            if key in self.store:
                collected |= self.store.chain(key).latest.access_set
        if collected:
            yield from self.cpu.consume(self.costs.vas_item * len(collected))
        return frozenset(collected)

    def _on_versions_installed(
        self, versions: List[Version], collected: frozenset
    ):
        """Alg. 5 lines 18-20: propagate anti-dependencies transitively."""
        if collected:
            yield from self.cpu.consume(
                self.costs.vas_item * len(collected) * len(versions)
            )
            for version in versions:
                self.store.vas_extend(version, collected)

    def _on_update_commit_decided(self, txn: Transaction) -> None:
        # Figure 6's metric: anti-dependencies one update transaction
        # collected across all its prepare participants.
        self.metrics.on_antidep_collected(len(txn.collected_set))

    def _commit_read_only(self, txn: Transaction) -> None:
        """Alg. 4 lines 2-8: Remove messages for VAS garbage collection.

        With ``remove_broadcast`` (default) every node is notified, because
        commit-time propagation may have copied the identifier to nodes the
        transaction never contacted; otherwise only contacted nodes are,
        as in the paper's pseudocode.
        """
        config = self.shared.config
        if not txn.read_keys or not config.removes_enabled:
            return
        if config.remove_broadcast:
            # Broadcast over the live view, not the static seed: removed
            # sites must stop receiving traffic and a joiner may already
            # hold propagated identifiers.
            sites = self.membership.view.fanout_ids
        else:
            sites = {self.directory.site(key) for key in txn.read_keys}
        if config.batching.adaptive:
            # Per-destination windows: each site's batch closes on its own
            # AIMD-tuned timer instead of the single global interval.
            # Windows are seeded at the global interval (Removes are off
            # the commit critical path, so batching them is nearly free)
            # and then adapt per destination: observed batches grow the
            # window, lone flushes decay it toward immediate sends.
            interval = config.effective_remove_flush_interval
            buffer = self._pending_removes
            windows = self._remove_windows
            for site in sites:
                pending = buffer.get(site)
                if pending is None:
                    buffer[site] = [txn.txn_id]
                    self.sim.call_later(
                        windows.get(site, interval),
                        self._flush_removes_site,
                        site,
                    )
                else:
                    pending.append(txn.txn_id)
            return
        for site in sites:
            self._pending_removes.setdefault(site, []).append(txn.txn_id)
        if not self._remove_flush_scheduled:
            self._remove_flush_scheduled = True
            self.sim.call_later(
                self.shared.config.effective_remove_flush_interval,
                self._flush_removes,
            )

    def _on_client_abort(self, txn: Transaction) -> None:
        # A rolled-back read-only (or partially-read) transaction must
        # still erase its visible-read registrations everywhere.
        self._commit_read_only(txn)

    def _flush_removes(self) -> None:
        self._remove_flush_scheduled = False
        pending, self._pending_removes = self._pending_removes, {}
        for site in sorted(pending):
            self.node.send(site, MessageType.REMOVE, RemoveBody(tuple(pending[site])))

    def _flush_removes_site(self, site: int) -> None:
        """Close one destination's adaptive Remove window and send it."""
        ids = self._pending_removes.pop(site, None)
        if not ids:
            return
        self.node.send(site, MessageType.REMOVE, RemoveBody(tuple(ids)))
        config = self.shared.config
        batching = config.batching
        interval = config.effective_remove_flush_interval
        windows = self._remove_windows
        current = windows.get(site, interval)
        if len(ids) > _TARGET_DEPTH:
            windows[site] = min(
                current + batching.adaptive_step,
                max(batching.max_window, interval),
            )
        elif len(ids) == 1 and current > 0.0:
            decayed = current * batching.adaptive_decay
            windows[site] = 0.0 if decayed < 1e-9 else decayed

    # ------------------------------------------------------------------
    # FW-KV-only handler
    # ------------------------------------------------------------------
    def on_remove(self, envelope: Envelope) -> None:
        """Alg. 6 lines 5-10, via the store's reverse index."""
        body: RemoveBody = envelope.payload
        now = self.sim.now
        for txn_id in body.txn_ids:
            self.store.vas_remove_txn(txn_id, now=now)
