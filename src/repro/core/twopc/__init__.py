"""The serializable 2PC-baseline the paper compares against."""

from repro.core.twopc.node import TwoPCNode

__all__ = ["TwoPCNode"]
