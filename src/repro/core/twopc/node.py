"""The 2PC-baseline: optimistic execution, validated serializable commits.

Paper Section 1: "In 2PC-baseline, all transactions, including read-only,
validate read keys to ensure correct and the most recent reading snapshot,
and use the Two-Phase Commit protocol (2PC) to commit."  The store is
single-versioned ("thus without needing multiversioning", Section 5);
transactions execute optimistically against committed state, then lock
read keys shared / written keys exclusive at prepare, re-validate that
read versions are unchanged, and apply writes at decide.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Tuple

from repro.cluster.node import Node
from repro.core.interfaces import BaseProtocolNode, SharedState
from repro.core.transaction import Transaction
from repro.core.wire import (
    SimpleDecideBody,
    SimplePrepareBody,
    SimpleReadRequestBody,
    SimpleReadReturnBody,
    SimpleVoteBody,
)
from repro.metrics.stats import AbortReason
from repro.net.message import Envelope, MessageType
from repro.sim import AllOf
from repro.storage.locks import LockTable
from repro.storage.simple_store import SimpleStore


class _PreparedTxn:
    __slots__ = ("read_held", "write_held", "writes", "vote")

    def __init__(self, read_held, write_held, writes, vote) -> None:
        self.read_held = list(read_held)
        self.write_held = list(write_held)
        self.writes = writes
        #: Replayed verbatim for retried/duplicated Prepares (idempotency).
        self.vote = vote


class TwoPCNode(BaseProtocolNode):
    """One node of the serializable baseline."""

    protocol_name = "2pc"

    def __init__(self, node: Node, shared: SharedState) -> None:
        super().__init__(node, shared)
        self.store = SimpleStore()
        self.locks = LockTable(self.sim)
        self._prepared: Dict[int, _PreparedTxn] = {}
        #: Prepares currently between lock acquisition and voting;
        #: duplicates racing that window vote no (see MVCCNode).
        self._preparing: set = set()
        #: (key, version) -> (origin, seq, writer txn id) for the history
        #: checker; origin/seq carry no meaning under 2PC and stay 0.
        self.catalog: Dict[Tuple[Hashable, int], Tuple[int, int, Optional[int]]] = {}

        node.on(MessageType.READ_REQUEST, self.on_read_request)
        node.on(MessageType.PREPARE, self.on_prepare)
        node.on(MessageType.DECIDE, self.on_decide)

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------
    def load(self, key: Hashable, value: object) -> None:
        self.store.create(key, value)
        self.catalog[(key, 0)] = (0, 0, None)

    # ------------------------------------------------------------------
    # Coordinator API
    # ------------------------------------------------------------------
    def read(self, txn: Transaction, key: Hashable):
        found, value = txn.buffered_write(key)
        if found:
            return value
        if key in txn.read_cache:
            return txn.read_cache[key]

        target = self.directory.site(key)
        reply: SimpleReadReturnBody = yield from self.node.rpc.call(
            target,
            MessageType.READ_REQUEST,
            SimpleReadRequestBody(txn.txn_id, key),
        )
        txn.read_versions[key] = reply.version
        txn.read_cache[key] = reply.value
        # A single-version read is the current committed state by
        # construction; gap is 0 (validation will abort the transaction if
        # the version changes before commit).
        self._record_read(txn, key, reply.version, reply.version)
        if txn.is_read_only:
            self.metrics.on_ro_read(gap=0, first_contact=True)
        return reply.value

    def commit(self, txn: Transaction):
        yield from self.cpu.consume(self.costs.commit_base)

        by_site: Dict[int, SimplePrepareBody] = {}
        for key, version in txn.read_versions.items():
            site = self.directory.site(key)
            body = by_site.setdefault(site, SimplePrepareBody(txn.txn_id, {}, {}))
            body.reads[key] = version
        for key, value in txn.writeset.items():
            site = self.directory.site(key)
            body = by_site.setdefault(site, SimplePrepareBody(txn.txn_id, {}, {}))
            body.writes[key] = value

        sites = sorted(by_site)
        vote_settles = [
            self.node.rpc.spawn_call(site, MessageType.PREPARE, by_site[site])
            for site in sites
        ]
        vote_results: List = yield AllOf(self.sim, vote_settles)
        votes: List[SimpleVoteBody] = [v for ok, v in vote_results if ok]
        timed_out = len(votes) < len(vote_results)
        outcome = not timed_out and all(vote.ok for vote in votes)

        # Full two-phase commit: the coordinator only answers the client
        # after every participant acknowledged the decision (this is the
        # "expensive commit phase" the paper contrasts with the PSI
        # protocols' asynchronous one-way Decide).  Acks are best-effort
        # under faults: a participant whose ack never arrives is presumed
        # to clean up via its prepared-lock lease.
        decide = SimpleDecideBody(txn.txn_id, outcome)
        ack_settles = [
            self.node.rpc.spawn_call(site, MessageType.DECIDE, decide)
            for site in sites
        ]
        ack_results: List = yield AllOf(self.sim, ack_settles)

        if outcome:
            # Record a site's installed versions only once its ack confirms
            # the decide was applied; an un-acked site's state is unknown
            # (its lease may have presumed abort), so claiming its writes
            # in the history would over-constrain the offline checkers.
            for (vote_ok, vote), (ack_ok, _ack) in zip(vote_results, ack_results):
                if not (vote_ok and ack_ok):
                    continue
                for key, version in vote.install_versions.items():
                    txn.ops.append(("w", key, version, version))
            txn.mark_committed(self.sim.now)
            self._record_commit(txn)
        else:
            txn.mark_aborted(self.sim.now)
            if timed_out:
                reason = AbortReason.RPC_TIMEOUT
            else:
                reasons = [vote.reason for vote in votes if not vote.ok]
                reason = reasons[0] if reasons else AbortReason.VOTE_NO
            self.metrics.on_abort(txn, reason)
        return outcome

    # ------------------------------------------------------------------
    # Message handlers
    # ------------------------------------------------------------------
    def on_read_request(self, envelope: Envelope):
        request: SimpleReadRequestBody = self.node.rpc.body_of(envelope)
        yield from self.cpu.consume(self.costs.read_handler)
        record = self.store.read(request.key)
        self.node.rpc.reply(
            envelope, SimpleReadReturnBody(record.value, record.version)
        )

    def on_prepare(self, envelope: Envelope):
        request: SimplePrepareBody = self.node.rpc.body_of(envelope)
        # Idempotency under RPC retries/duplication: replay the recorded
        # vote for an already-prepared transaction, vote no on a duplicate
        # racing the original through its lock wait (see MVCCNode).
        existing = self._prepared.get(request.txn_id)
        if existing is not None:
            self.node.rpc.reply(envelope, existing.vote)
            return
        if request.txn_id in self._preparing:
            self.node.rpc.reply(
                envelope, SimpleVoteBody(False, reason=AbortReason.VOTE_NO)
            )
            return
        self._preparing.add(request.txn_id)
        try:
            vote = yield from self._handle_prepare(request)
        finally:
            self._preparing.discard(request.txn_id)
        self.node.rpc.reply(envelope, vote)

    def _handle_prepare(self, request: SimplePrepareBody):
        timeout = self.shared.config.lock_timeout
        ok, read_held, write_held = yield from self.locks.acquire_mixed(
            request.reads, request.writes, request.txn_id, timeout
        )
        total_keys = len(set(request.reads) | set(request.writes))
        if not ok:
            yield from self.cpu.consume(self.costs.lock_op * total_keys)
            return SimpleVoteBody(False, reason=AbortReason.LOCK_TIMEOUT)

        # Validation re-reads every read key's current state, so the
        # baseline pays read-handler work per validated key on top of the
        # lock/bookkeeping cost.
        yield from self.cpu.consume(
            (self.costs.lock_op + self.costs.prepare_key) * total_keys
            + self.costs.read_handler * len(request.reads)
        )
        for key, version in request.reads.items():
            if self.store.read(key).version != version:
                self.locks.release_keys(read_held, request.txn_id)
                self.locks.release_keys(write_held, request.txn_id)
                return SimpleVoteBody(False, reason=AbortReason.VALIDATION)

        install_versions = {
            key: (self.store.read(key).version + 1 if key in self.store else 0)
            for key in request.writes
        }
        vote = SimpleVoteBody(True, install_versions)
        entry = _PreparedTxn(read_held, write_held, dict(request.writes), vote)
        self._prepared[request.txn_id] = entry
        lease = self.shared.config.prepared_lease
        if lease is not None:
            self.sim.call_later(
                lease, self._expire_prepared, request.txn_id, entry
            )
        return vote

    def _expire_prepared(self, txn_id: int, entry: _PreparedTxn) -> None:
        """Presumed abort after coordinator silence (see MVCCNode)."""
        if self._prepared.get(txn_id) is not entry:
            return
        del self._prepared[txn_id]
        self.locks.release_keys(entry.read_held, txn_id)
        self.locks.release_keys(entry.write_held, txn_id)
        self.metrics.on_lease_expired()
        self.tracer.emit(self.node_id, "lease_expire", txn=txn_id)

    def on_decide(self, envelope: Envelope):
        body: SimpleDecideBody = self.node.rpc.body_of(envelope)
        prepared = self._prepared.pop(body.txn_id, None)
        if prepared is not None:
            if body.outcome and prepared.writes:
                yield from self.cpu.consume(
                    self.costs.install_key * len(prepared.writes)
                )
                for key, value in prepared.writes.items():
                    record = self.store.write(key, value)
                    self.catalog[(key, record.version)] = (0, 0, body.txn_id)
            self.locks.release_keys(prepared.read_held, body.txn_id)
            self.locks.release_keys(prepared.write_held, body.txn_id)
        self.node.rpc.reply(envelope, True)
