"""The 2PC-baseline: optimistic execution, validated serializable commits.

Paper Section 1: "In 2PC-baseline, all transactions, including read-only,
validate read keys to ensure correct and the most recent reading snapshot,
and use the Two-Phase Commit protocol (2PC) to commit."  The store is
single-versioned ("thus without needing multiversioning", Section 5);
transactions execute optimistically against committed state, then lock
read keys shared / written keys exclusive at prepare, re-validate that
read versions are unchanged, and apply writes at decide.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Tuple

from repro.cluster.node import Node
from repro.core.interfaces import BaseProtocolNode, SharedState
from repro.core.transaction import Transaction
from repro.core.wire import (
    SimpleDecideBody,
    SimplePrepareBody,
    SimpleReadRequestBody,
    SimpleReadReturnBody,
    SimpleVoteBody,
)
from repro.metrics.stats import AbortReason
from repro.net.message import Envelope, MessageType
from repro.sim import AllOf
from repro.storage.locks import LockTable
from repro.storage.simple_store import SimpleStore


class _PreparedTxn:
    __slots__ = ("read_held", "write_held", "writes")

    def __init__(self, read_held, write_held, writes) -> None:
        self.read_held = list(read_held)
        self.write_held = list(write_held)
        self.writes = writes


class TwoPCNode(BaseProtocolNode):
    """One node of the serializable baseline."""

    protocol_name = "2pc"

    def __init__(self, node: Node, shared: SharedState) -> None:
        super().__init__(node, shared)
        self.store = SimpleStore()
        self.locks = LockTable(self.sim)
        self._prepared: Dict[int, _PreparedTxn] = {}
        #: (key, version) -> (origin, seq, writer txn id) for the history
        #: checker; origin/seq carry no meaning under 2PC and stay 0.
        self.catalog: Dict[Tuple[Hashable, int], Tuple[int, int, Optional[int]]] = {}

        node.on(MessageType.READ_REQUEST, self.on_read_request)
        node.on(MessageType.PREPARE, self.on_prepare)
        node.on(MessageType.DECIDE, self.on_decide)

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------
    def load(self, key: Hashable, value: object) -> None:
        self.store.create(key, value)
        self.catalog[(key, 0)] = (0, 0, None)

    # ------------------------------------------------------------------
    # Coordinator API
    # ------------------------------------------------------------------
    def read(self, txn: Transaction, key: Hashable):
        found, value = txn.buffered_write(key)
        if found:
            return value
        if key in txn.read_cache:
            return txn.read_cache[key]

        target = self.directory.site(key)
        reply: SimpleReadReturnBody = yield self.node.rpc.request(
            target,
            MessageType.READ_REQUEST,
            SimpleReadRequestBody(txn.txn_id, key),
        )
        txn.read_versions[key] = reply.version
        txn.read_cache[key] = reply.value
        # A single-version read is the current committed state by
        # construction; gap is 0 (validation will abort the transaction if
        # the version changes before commit).
        self._record_read(txn, key, reply.version, reply.version)
        if txn.is_read_only:
            self.metrics.on_ro_read(gap=0, first_contact=True)
        return reply.value

    def commit(self, txn: Transaction):
        yield from self.cpu.consume(self.costs.commit_base)

        by_site: Dict[int, SimplePrepareBody] = {}
        for key, version in txn.read_versions.items():
            site = self.directory.site(key)
            body = by_site.setdefault(site, SimplePrepareBody(txn.txn_id, {}, {}))
            body.reads[key] = version
        for key, value in txn.writeset.items():
            site = self.directory.site(key)
            body = by_site.setdefault(site, SimplePrepareBody(txn.txn_id, {}, {}))
            body.writes[key] = value

        vote_events = [
            self.node.rpc.request(site, MessageType.PREPARE, body)
            for site, body in by_site.items()
        ]
        votes: List[SimpleVoteBody] = yield AllOf(self.sim, vote_events)
        outcome = all(vote.ok for vote in votes)

        # Full two-phase commit: the coordinator only answers the client
        # after every participant acknowledged the decision (this is the
        # "expensive commit phase" the paper contrasts with the PSI
        # protocols' asynchronous one-way Decide).
        decide = SimpleDecideBody(txn.txn_id, outcome)
        ack_events = [
            self.node.rpc.request(site, MessageType.DECIDE, decide)
            for site in sorted(by_site)
        ]
        yield AllOf(self.sim, ack_events)

        if outcome:
            for vote in votes:
                for key, version in vote.install_versions.items():
                    txn.ops.append(("w", key, version, version))
            txn.mark_committed(self.sim.now)
            self._record_commit(txn)
        else:
            txn.mark_aborted(self.sim.now)
            reasons = [vote.reason for vote in votes if not vote.ok]
            self.metrics.on_abort(txn, reasons[0] if reasons else AbortReason.VOTE_NO)
        return outcome

    # ------------------------------------------------------------------
    # Message handlers
    # ------------------------------------------------------------------
    def on_read_request(self, envelope: Envelope):
        request: SimpleReadRequestBody = self.node.rpc.body_of(envelope)
        yield from self.cpu.consume(self.costs.read_handler)
        record = self.store.read(request.key)
        self.node.rpc.reply(
            envelope, SimpleReadReturnBody(record.value, record.version)
        )

    def on_prepare(self, envelope: Envelope):
        request: SimplePrepareBody = self.node.rpc.body_of(envelope)
        timeout = self.shared.config.lock_timeout
        ok, read_held, write_held = yield from self.locks.acquire_mixed(
            request.reads, request.writes, request.txn_id, timeout
        )
        total_keys = len(set(request.reads) | set(request.writes))
        if not ok:
            yield from self.cpu.consume(self.costs.lock_op * total_keys)
            self.node.rpc.reply(
                envelope, SimpleVoteBody(False, reason=AbortReason.LOCK_TIMEOUT)
            )
            return

        # Validation re-reads every read key's current state, so the
        # baseline pays read-handler work per validated key on top of the
        # lock/bookkeeping cost.
        yield from self.cpu.consume(
            (self.costs.lock_op + self.costs.prepare_key) * total_keys
            + self.costs.read_handler * len(request.reads)
        )
        for key, version in request.reads.items():
            if self.store.read(key).version != version:
                self.locks.release_keys(read_held, request.txn_id)
                self.locks.release_keys(write_held, request.txn_id)
                self.node.rpc.reply(
                    envelope, SimpleVoteBody(False, reason=AbortReason.VALIDATION)
                )
                return

        install_versions = {
            key: (self.store.read(key).version + 1 if key in self.store else 0)
            for key in request.writes
        }
        self._prepared[request.txn_id] = _PreparedTxn(
            read_held, write_held, dict(request.writes)
        )
        self.node.rpc.reply(envelope, SimpleVoteBody(True, install_versions))

    def on_decide(self, envelope: Envelope):
        body: SimpleDecideBody = self.node.rpc.body_of(envelope)
        prepared = self._prepared.pop(body.txn_id, None)
        if prepared is not None:
            if body.outcome and prepared.writes:
                yield from self.cpu.consume(
                    self.costs.install_key * len(prepared.writes)
                )
                for key, value in prepared.writes.items():
                    record = self.store.write(key, value)
                    self.catalog[(key, record.version)] = (0, 0, body.txn_id)
            self.locks.release_keys(prepared.read_held, body.txn_id)
            self.locks.release_keys(prepared.write_held, body.txn_id)
        self.node.rpc.reply(envelope, True)
