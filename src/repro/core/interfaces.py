"""Shared context and the protocol-node interface."""

from __future__ import annotations

import itertools
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Hashable, Iterator, Optional

from repro.cluster.directory import Directory
from repro.cluster.node import Node
from repro.config import ClusterConfig
from repro.core.transaction import Transaction
from repro.metrics.history import History, OpRecord, TxnRecord
from repro.metrics.stats import MetricsRecorder
from repro.sim import CpuResource, Simulator
from repro.sim.tracing import Tracer


@dataclass
class SharedState:
    """Cluster-wide state every protocol node references.

    The transaction-id counter is global only because the simulation is a
    single process; ids could equally be ``(node, local counter)`` pairs.
    Uniqueness is all the protocols require.
    """

    sim: Simulator
    config: ClusterConfig
    directory: Directory
    metrics: MetricsRecorder
    tracer: Optional[Tracer] = None
    history: Optional[History] = None
    _txn_ids: Iterator[int] = field(default_factory=lambda: itertools.count(1))

    def next_txn_id(self) -> int:
        return next(self._txn_ids)

    @property
    def num_nodes(self) -> int:
        return self.config.num_nodes


class BaseProtocolNode(ABC):
    """One node's protocol logic: coordinator API plus message handlers.

    The coordinator API is what clients co-located with the node call:

    * :meth:`begin` returns a fresh :class:`Transaction`;
    * :meth:`read` / :meth:`commit` are *generator subroutines* -- call
      them from a simulated process with ``yield from``;
    * :meth:`write` buffers locally and returns immediately (lazy update).
    """

    protocol_name = "abstract"

    def __init__(self, node: Node, shared: SharedState) -> None:
        self.node = node
        self.shared = shared
        self.sim = shared.sim
        self.costs = shared.config.costs
        self.directory = shared.directory
        self.metrics = shared.metrics
        #: This node's handler-execution capacity.
        self.cpu = CpuResource(self.sim, self.costs.cpu_cores)
        self.tracer = shared.tracer if shared.tracer is not None else Tracer(self.sim)

    @property
    def node_id(self) -> int:
        return self.node.node_id

    # ------------------------------------------------------------------
    # Data loading (outside transactions, before a run)
    # ------------------------------------------------------------------
    @abstractmethod
    def load(self, key: Hashable, value: object) -> None:
        """Install initial data for a key whose preferred site is here."""

    def load_many(self, items) -> int:
        """Bulk :meth:`load`; protocols may override with a faster path."""
        count = 0
        for key, value in items:
            self.load(key, value)
            count += 1
        return count

    # ------------------------------------------------------------------
    # Coordinator API
    # ------------------------------------------------------------------
    def begin(
        self, is_read_only: bool, profile: Optional[str] = None
    ) -> Transaction:
        txn = Transaction(
            txn_id=self.shared.next_txn_id(),
            node_id=self.node_id,
            num_sites=self.shared.num_nodes,
            is_read_only=is_read_only,
            start_time=self.sim.now,
            profile=profile,
        )
        self._on_begin(txn)
        if self.tracer._enabled:
            self.tracer.emit(self.node_id, "begin", txn=txn.txn_id,
                             ro=is_read_only, profile=profile)
        return txn

    def _on_begin(self, txn: Transaction) -> None:
        """Protocol hook: initialise the transaction's snapshot."""

    def write(self, txn: Transaction, key: Hashable, value: object) -> None:
        """Buffer a write (lazy update; visible at commit only)."""
        if txn.is_read_only:
            raise ValueError(
                f"transaction {txn.txn_id} was declared read-only but wrote "
                f"{key!r}; read-only transactions must be identified correctly"
            )
        txn.writeset[key] = value
        txn.read_cache[key] = value

    @abstractmethod
    def read(self, txn: Transaction, key: Hashable):
        """Generator subroutine returning the value visible to ``txn``."""

    @abstractmethod
    def commit(self, txn: Transaction):
        """Generator subroutine returning True (committed) or False."""

    def abort(self, txn: Transaction) -> None:
        """Client-initiated rollback (e.g. TPC-C's 1% invalid NewOrders).

        Nothing is held at this point -- writes are buffered and locks are
        only taken during commit -- so rollback is local: discard the
        buffers and let the protocol clean up any read registrations.
        """
        txn.writeset.clear()
        self._on_client_abort(txn)
        txn.mark_aborted(self.sim.now)
        self.metrics.on_rollback(txn)
        self.tracer.emit(self.node_id, "abort", txn=txn.txn_id, reason="rollback")

    def _on_client_abort(self, txn: Transaction) -> None:
        """Protocol hook for rollback cleanup."""

    # ------------------------------------------------------------------
    # History plumbing
    # ------------------------------------------------------------------
    def _record_read(self, txn: Transaction, key, vid: int, latest_vid: int) -> None:
        txn.ops.append(("r", key, vid, latest_vid))

    def _record_commit(self, txn: Transaction) -> None:
        history = self.shared.history
        if history is None:
            return
        record = TxnRecord(
            txn_id=txn.txn_id,
            node_id=txn.node_id,
            is_read_only=txn.is_read_only,
            start_time=txn.start_time,
            end_time=self.sim.now,
            seq_no=txn.seq_no,
            commit_vc=txn.commit_vc.to_tuple() if txn.commit_vc else None,
            profile=txn.profile,
        )
        for kind, key, vid, latest_vid in txn.ops:
            record.ops.append(OpRecord(kind, key, vid, latest_vid))
        # Write vids are discovered post-run from the version catalog
        # (the coordinator never learns remote install vids); see
        # Cluster.finalize_history().
        history.append(record)
