"""Core protocol layer: vector clocks, transactions, and concurrency controls.

Subpackages implement the three systems the paper evaluates:

* :mod:`repro.core.fwkv` -- the paper's contribution (PSI with fresh reads),
* :mod:`repro.core.walter` -- the Walter baseline (PSI, snapshot at begin),
* :mod:`repro.core.twopc` -- the serializable 2PC-baseline.
"""

from repro.core.vector_clock import VectorClock
from repro.core.transaction import Transaction, TransactionStatus

__all__ = ["Transaction", "TransactionStatus", "VectorClock"]
