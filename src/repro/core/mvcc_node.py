"""Shared multi-version PSI machinery for Walter and FW-KV.

Both protocols keep per-node vector clocks advanced by per-origin sequence
numbers, buffer writes until a 2PC commit across the written keys'
preferred sites, and propagate commits asynchronously to uninvolved nodes.
They differ in how reads select versions and in the version-access-set
(visible reads) bookkeeping; those differences live in the protocol
subclasses via the hook methods marked below.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Optional, Set, Tuple

from repro.cluster.node import Node
from repro.core.interfaces import BaseProtocolNode, SharedState
from repro.core.transaction import Transaction
from repro.core.vector_clock import VectorClock
from repro.core.wire import (
    DecideBody,
    PrepareBody,
    PropagateBody,
    ReadRequestBody,
    ReadReturnBody,
    RemoveBody,
    VoteBody,
)
from repro.metrics.stats import AbortReason
from repro.net.message import Envelope, MessageType
from repro.sim import AllOf, ConditionVariable, wait_until
from repro.storage.locks import LockTable
from repro.storage.store import MultiVersionStore
from repro.storage.version import Version


class _PreparedTxn:
    """Participant-side state between a yes-vote and the Decide message."""

    __slots__ = ("writes", "locked_keys", "vote")

    def __init__(
        self, writes: Dict[Hashable, object], locked_keys, vote
    ) -> None:
        self.writes = writes
        self.locked_keys = list(locked_keys)
        #: The vote returned for this prepare, replayed verbatim if a
        #: retried/duplicated Prepare arrives again (idempotency).
        self.vote = vote


class MVCCNode(BaseProtocolNode):
    """Common node logic for the two PSI protocols."""

    def __init__(self, node: Node, shared: SharedState) -> None:
        super().__init__(node, shared)
        size = shared.num_nodes
        #: ``siteVC``: entry j is the newest sequence number from origin j
        #: applied at this node (paper Section 4.1).
        self.site_vc = VectorClock.zeros(size)
        #: ``CurrSeqNo``: sequence number of the latest transaction issued
        #: and committed at this node.
        self.curr_seq_no = 0
        self.site_vc_changed = ConditionVariable(self.sim)
        self.store = MultiVersionStore()
        self.locks = LockTable(self.sim)
        self._prepared: Dict[int, _PreparedTxn] = {}
        #: Transactions whose prepare handler is currently between lock
        #: acquisition and voting; duplicates racing that window vote no
        #: instead of double-acquiring the same owner's locks.
        self._preparing: Set[int] = set()
        #: Retried/duplicated read requests spawn concurrent handlers for
        #: the same transaction; a per-invocation token keeps their shared
        #: lock acquisitions independent of each other.
        self._read_token = 0
        #: destination -> commit sequence numbers awaiting a coalesced
        #: Propagate (only used when ``batching.propagate_window > 0``).
        self._propagate_buffer: Dict[int, List[int]] = {}

        node.on(MessageType.READ_REQUEST, self.on_read_request)
        node.on(MessageType.PREPARE, self.on_prepare)
        node.on(MessageType.DECIDE, self.on_decide)
        node.on(MessageType.PROPAGATE, self.on_propagate)

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------
    def load(self, key: Hashable, value: object) -> None:
        self.store.create(key, value, VectorClock.zero(self.shared.num_nodes))

    def load_many(self, items: Iterable[Tuple[Hashable, object]]) -> int:
        """Bulk-install initial versions (all share the interned zero VC)."""
        return self.store.create_many(
            items, VectorClock.zero(self.shared.num_nodes)
        )

    # ------------------------------------------------------------------
    # Coordinator API
    # ------------------------------------------------------------------
    def _on_begin(self, txn: Transaction) -> None:
        # Alg. 1: T.VC <- siteVC_i; hasRead all false (fresh Transaction
        # objects already satisfy the latter).
        txn.vc = self.site_vc.copy()

    def read(self, txn: Transaction, key: Hashable):
        """Alg. 2: serve from the writeset, else ask the preferred site."""
        found, value = txn.buffered_write(key)
        if found:
            return value
        if key in txn.read_cache:
            # Re-reads return the version already observed; see the
            # read-cache note on Transaction.
            return txn.read_cache[key]

        target = self.directory.site(key)
        reply: ReadReturnBody = yield from self.node.rpc.call(
            target,
            MessageType.READ_REQUEST,
            ReadRequestBody(
                txn_id=txn.txn_id,
                is_read_only=txn.is_read_only,
                key=key,
                vc=txn.vc.to_tuple(),
                has_read=tuple(txn.has_read),
            ),
        )
        if reply.max_vc is not None:
            txn.vc.merge_seq(reply.max_vc)  # Alg. 2 line 9
        first_contact = not txn.has_read[target]
        txn.has_read[target] = True  # Alg. 2 line 8
        if txn.is_read_only:
            txn.read_keys.add(key)  # Alg. 2 lines 10-12, for Remove
            self.metrics.on_ro_read(
                gap=reply.latest_vid - reply.vid,
                first_contact=first_contact,
            )
        txn.read_cache[key] = reply.value
        txn.read_versions[key] = reply.vid
        if self.tracer._enabled:
            self.tracer.emit(
                self.node_id, "read", txn=txn.txn_id, key=key, vid=reply.vid,
                latest=reply.latest_vid, site=target,
            )
        self._record_read(txn, key, reply.vid, reply.latest_vid)
        return reply.value

    def read_many(self, txn: Transaction, keys):
        """Parallel multi-get for *read-only* transactions.

        Issues all read requests concurrently and returns ``{key: value}``.
        Safe for read-only transactions because consistency is enforced by
        the version-access-set, not by request ordering: if an update
        overwrites one of the versions read here before another request is
        served, the propagated VAS entry excludes the conflicting version
        exactly as in the sequential case.  Update transactions must read
        sequentially (their safe snapshot hinges on the *first* read), so
        they are rejected.
        """
        if not txn.is_read_only:
            raise ValueError(
                "read_many is only available to read-only transactions"
            )
        keys = list(keys)
        pending = []
        for key in keys:
            found, value = txn.buffered_write(key)
            if found or key in txn.read_cache:
                pending.append(None)
                continue
            # Spawned (not bare-event) so per-request timeouts and retries
            # apply; a call that exhausts retries fails the AllOf below
            # with RpcTimeoutError, which propagates to the client.
            pending.append(
                self.sim.spawn(
                    self.node.rpc.call(
                        self.directory.site(key),
                        MessageType.READ_REQUEST,
                        ReadRequestBody(
                            txn_id=txn.txn_id,
                            is_read_only=True,
                            key=key,
                            vc=txn.vc.to_tuple(),
                            has_read=tuple(txn.has_read),
                        ),
                    ),
                    name=f"read-many-{txn.txn_id}",
                )
            )
        replies = yield AllOf(
            self.sim, [event for event in pending if event is not None]
        )
        replies_iter = iter(replies)
        values = {}
        for key, event in zip(keys, pending):
            if event is None:
                values[key] = txn.read_cache.get(key, txn.writeset.get(key))
                continue
            reply: ReadReturnBody = next(replies_iter)
            target = self.directory.site(key)
            if reply.max_vc is not None:
                txn.vc.merge_seq(reply.max_vc)
            first_contact = not txn.has_read[target]
            txn.has_read[target] = True
            txn.read_keys.add(key)
            self.metrics.on_ro_read(
                gap=reply.latest_vid - reply.vid, first_contact=first_contact
            )
            txn.read_cache[key] = reply.value
            txn.read_versions[key] = reply.vid
            self._record_read(txn, key, reply.vid, reply.latest_vid)
            values[key] = reply.value
        return values

    def commit(self, txn: Transaction):
        """Alg. 4: read-only cleanup, or 2PC across written keys' sites.

        Per Alg. 4 line 2 the branch tests the *writeset*: a declared-
        update transaction that ended up writing nothing commits like a
        read-only one (no 2PC, no sequence number).
        """
        if txn.is_read_only or not txn.writeset:
            self._commit_read_only(txn)
            txn.mark_committed(self.sim.now)
            self._record_commit(txn)
            if self.tracer._enabled:
                self.tracer.emit(self.node_id, "commit", txn=txn.txn_id, ro=True)
            return True

        yield from self.cpu.consume(self.costs.commit_base)

        by_site = self._group_writes_by_site(txn)

        def prepare_body(writes):
            return PrepareBody(
                txn.txn_id,
                self.node_id,
                writes,
                txn.vc.to_tuple(),
                read_vids={
                    key: txn.read_versions[key]
                    for key in writes
                    if key in txn.read_versions
                },
            )

        timed_out = False
        if set(by_site) == {self.node_id}:
            # Fast path: every written key is local -- the point of the
            # preferred-site design ("Walter can quickly commit these
            # transactions without checking other nodes for write
            # conflicts").  Prepare runs inline, skipping the loopback RPC.
            vote = yield from self._handle_prepare(
                prepare_body(by_site[self.node_id])
            )
            votes: List[VoteBody] = [vote]
        else:
            # Each prepare is an independently-retried call; a site whose
            # retries are exhausted settles as (False, None) rather than
            # hanging the coordinator forever on a crashed peer.
            settles = [
                self.node.rpc.spawn_call(
                    site, MessageType.PREPARE, prepare_body(writes)
                )
                for site, writes in by_site.items()
            ]
            results = yield AllOf(self.sim, settles)
            votes = [vote for ok, vote in results if ok]
            timed_out = len(votes) < len(results)

        outcome = not timed_out and all(vote.ok for vote in votes)
        for vote in votes:
            txn.collected_set |= vote.collected  # Alg. 4 line 19

        if outcome:
            # Alg. 4 lines 22-25: assign the sequence number and finalize
            # the commit vector clock from the *current* siteVC.
            self.curr_seq_no += 1
            txn.seq_no = self.curr_seq_no
            commit_vc = self.site_vc.copy()
            commit_vc[self.node_id] = txn.seq_no
            txn.commit_vc = commit_vc
            self._on_update_commit_decided(txn)

        participant_sites = set(by_site)
        decide = DecideBody(
            txn_id=txn.txn_id,
            outcome=outcome,
            origin=self.node_id,
            seq_no=txn.seq_no,
            commit_vc=txn.commit_vc.to_tuple() if txn.commit_vc else None,
            collected=frozenset(txn.collected_set),
        )
        for site in sorted(participant_sites | {self.node_id} if outcome else participant_sites):
            self.node.send(site, MessageType.DECIDE, decide)
        if outcome:
            # Alg. 4 line 27: asynchronous propagation to everyone else.
            self._send_propagate(participant_sites, txn.seq_no)
            txn.mark_committed(self.sim.now)
            self._record_commit(txn)
            if self.tracer._enabled:
                self.tracer.emit(
                    self.node_id, "commit", txn=txn.txn_id, seq=txn.seq_no
                )
        else:
            # Presumed abort: the Decide(outcome=False) sent above is
            # best-effort -- a participant that never hears it releases
            # its prepared locks when its lease expires.
            txn.mark_aborted(self.sim.now)
            if timed_out:
                reason = AbortReason.RPC_TIMEOUT
            else:
                reasons = [vote.reason for vote in votes if not vote.ok]
                reason = reasons[0] if reasons else AbortReason.VOTE_NO
            self.metrics.on_abort(txn, reason)
            self.tracer.emit(
                self.node_id, "abort", txn=txn.txn_id, reason=reason
            )
        return outcome

    def _send_propagate(self, participant_sites: Set[int], seq_no: int) -> None:
        """Alg. 4 line 27 fan-out, optionally coalesced per destination.

        With ``batching.propagate_window == 0`` (default) every uninvolved
        site gets its own Propagate immediately -- the paper's behaviour,
        message for message.  With a positive window, this origin buffers
        the window's sequence numbers per destination and flushes them as
        one Propagate carrying ``seq_nos``; commits within a window reach
        uninvolved nodes at most one window late, which only delays
        snapshot freshness (PSI allows arbitrarily stale reads), never
        correctness.  Buffering is per destination because each commit has
        its own participant set.
        """
        window = self.shared.config.batching.propagate_window
        node_id = self.node_id
        if window <= 0:
            propagate = PropagateBody(node_id, seq_no)
            for site in self.shared.config.node_ids:
                if site not in participant_sites and site != node_id:
                    self.node.send(site, MessageType.PROPAGATE, propagate)
            return
        buffer = self._propagate_buffer
        for site in self.shared.config.node_ids:
            if site not in participant_sites and site != node_id:
                pending = buffer.get(site)
                if pending is None:
                    # First commit of this destination's window opens it.
                    buffer[site] = [seq_no]
                    self.sim.call_later(window, self._flush_propagate, site)
                else:
                    pending.append(seq_no)

    def _flush_propagate(self, site: int) -> None:
        """Close a destination's Propagate window and send the batch."""
        seq_nos = self._propagate_buffer.pop(site, None)
        if seq_nos:
            self.node.send(
                site,
                MessageType.PROPAGATE,
                PropagateBody(self.node_id, seq_nos[-1], tuple(seq_nos)),
            )

    def _group_writes_by_site(
        self, txn: Transaction
    ) -> Dict[int, Dict[Hashable, object]]:
        by_site: Dict[int, Dict[Hashable, object]] = {}
        for key, value in txn.writeset.items():
            by_site.setdefault(self.directory.site(key), {})[key] = value
        return by_site

    # ------------------------------------------------------------------
    # Protocol hooks
    # ------------------------------------------------------------------
    def _commit_read_only(self, txn: Transaction) -> None:
        """Read-only commit step (FW-KV sends Removes; Walter is a no-op)."""

    def _on_update_commit_decided(self, txn: Transaction) -> None:
        """Called once an update transaction's commit is decided."""

    def _collect_antideps(self, writes: Iterable[Hashable]):
        """Prepare-time VAS harvest (FW-KV); Walter collects nothing.

        Generator subroutine: may charge CPU time.  Returns a frozenset.
        """
        return frozenset()
        yield  # pragma: no cover - makes this a generator subroutine

    def _on_versions_installed(
        self, versions: List[Version], collected: frozenset
    ):
        """Decide-time VAS propagation (FW-KV); Walter does nothing.

        Generator subroutine: may charge CPU time.
        """
        return None
        yield  # pragma: no cover

    def _select_version(self, request: ReadRequestBody) -> Tuple[Version, int]:
        """Pick the version a read request observes.

        Returns ``(version, inspected_vas_entries)``.  Implemented by the
        protocol subclasses.
        """
        raise NotImplementedError

    def _read_needs_lock(self, request: ReadRequestBody) -> bool:
        """Whether the read handler must take the shared per-key lock."""
        raise NotImplementedError

    def _freshness_bound(
        self, request: ReadRequestBody, version: Version
    ) -> Optional[Tuple[int, ...]]:
        """The ``maxVC`` carried back by ReadReturn (None for Walter)."""
        raise NotImplementedError

    def _register_visible_read(
        self, request: ReadRequestBody, version: Version
    ) -> None:
        """Alg. 3 line 8 (FW-KV read-only only)."""

    # ------------------------------------------------------------------
    # Message handlers
    # ------------------------------------------------------------------
    def on_read_request(self, envelope: Envelope):
        """Alg. 3: version selection at the storage node."""
        request: ReadRequestBody = self.node.rpc.body_of(envelope)

        # Snapshot-completeness wait.  The requester's T.VC may run ahead
        # of this node (it can learn a commit through its own Decide
        # participation while our in-order apply is still pending); serving
        # the read before catching up could miss a committed-but-not-yet-
        # installed version inside the snapshot -- a fractured read.  The
        # original Walter never hits this because every site holds a full
        # replica and reads locally; in the partitioned preferred-site port
        # the handler must wait until this node's clock dominates the
        # request's snapshot.  Without injected congestion the wait is
        # almost always vacuous.
        txn_vc = request.vc
        site_vc = self.site_vc
        site_entries = site_vc.entries
        behind = False
        for s, t in zip(site_entries, txn_vc):
            if s < t:
                behind = True
                break
        if behind:
            stall_started = self.sim.now
            yield from wait_until(
                self.site_vc_changed,
                lambda: all(s >= t for s, t in zip(site_entries, txn_vc)),
            )
            self.metrics.on_read_stall(self.sim.now - stall_started)
            self.tracer.emit(
                self.node_id, "stall", txn=request.txn_id,
                waited=self.sim.now - stall_started,
            )

        lock_key = request.key
        needs_lock = self._read_needs_lock(request)
        cost = self.costs.read_handler
        if needs_lock:
            # Shared mode: concurrent read handlers proceed together, but
            # conflicting update commits (write lockers) are excluded.
            self._read_token += 1
            lock_owner = ("read", request.txn_id, self._read_token)
            granted = yield self.locks.acquire_read(
                lock_key, owner=lock_owner, timeout=None
            )
            assert granted, "untimed lock acquisition cannot fail"
            cost += self.costs.lock_op

        chain = self.store.chain(request.key)
        version, inspected = self._select_version(request)
        self._register_visible_read(request, version)
        cost += (
            self.costs.version_scan_item * (chain.latest.vid - version.vid + 1)
            + self.costs.vas_item * inspected
        )
        yield from self.cpu.consume(cost)
        if inspected:
            self.metrics.on_vas_inspected(inspected)
        max_vc = self._freshness_bound(request, version)
        latest_vid = chain.latest.vid

        if needs_lock:
            self.locks.release_read(lock_key, owner=lock_owner)

        self.node.rpc.reply(
            envelope,
            ReadReturnBody(version.value, max_vc, version.vid, latest_vid),
        )

    def on_prepare(self, envelope: Envelope):
        """Alg. 5 lines 1-13: lock, validate, harvest anti-dependencies."""
        request: PrepareBody = self.node.rpc.body_of(envelope)
        vote = yield from self._handle_prepare(request)
        self.node.rpc.reply(envelope, vote)

    def _handle_prepare(self, request: PrepareBody):
        """The prepare logic itself, callable inline for local commits.

        Idempotent under retries: a duplicated Prepare for an
        already-prepared transaction replays the recorded vote instead of
        re-acquiring (and then leaking) the same owner's locks, and a
        duplicate racing the original through its lock wait votes no.
        """
        existing = self._prepared.get(request.txn_id)
        if existing is not None:
            return existing.vote
        if request.txn_id in self._preparing:
            return VoteBody(False, reason=AbortReason.VOTE_NO)
        self._preparing.add(request.txn_id)
        try:
            keys = list(request.writes)
            timeout = self.shared.config.lock_timeout
            granted = yield from self.locks.acquire_write_all(
                keys, owner=request.txn_id, timeout=timeout
            )
            if not granted:
                yield from self.cpu.consume(self.costs.lock_op * len(keys))
                return VoteBody(False, reason=AbortReason.LOCK_TIMEOUT)

            yield from self.cpu.consume(
                (self.costs.lock_op + self.costs.prepare_key) * len(keys)
            )
            if not self._validate(request):
                self.locks.release_write_all(keys, owner=request.txn_id)
                return VoteBody(False, reason=AbortReason.VALIDATION)

            collected = yield from self._collect_antideps(keys)
            vote = VoteBody(True, collected)
            entry = _PreparedTxn(request.writes, keys, vote)
            self._prepared[request.txn_id] = entry
            lease = self.shared.config.prepared_lease
            if lease is not None:
                self.sim.call_later(
                    lease, self._expire_prepared, request.txn_id, entry
                )
            self.tracer.emit(
                self.node_id, "prepare", txn=request.txn_id,
                keys=len(keys), collected=len(collected),
            )
            return vote
        finally:
            self._preparing.discard(request.txn_id)

    def _expire_prepared(self, txn_id: int, entry: _PreparedTxn) -> None:
        """Presumed abort after coordinator silence: drop a prepared txn.

        Fires ``prepared_lease`` after the yes-vote.  If the Decide arrived
        in time the entry was already popped (or replaced) and this is a
        no-op; otherwise the coordinator is presumed dead and the write
        locks are released so one crash never wedges a key forever.
        """
        if self._prepared.get(txn_id) is not entry:
            return
        del self._prepared[txn_id]
        self.locks.release_write_all(entry.locked_keys, owner=txn_id)
        self.metrics.on_lease_expired()
        self.tracer.emit(self.node_id, "lease_expire", txn=txn_id)

    def _validate(self, request: PrepareBody) -> bool:
        """First-committer-wins validation of the written keys.

        For a key the transaction also *read*, the latest version must be
        exactly the version it observed (``read_vids``).  For Walter this
        is equivalent to the paper's clock test (a frozen ``T.VC`` makes
        "visible" and "validates" coincide), but for FW-KV the clock test
        alone (Alg. 5 lines 27-34) is unsound: ``T.VC[j]`` can advance past
        a version's sequence number via a fresh contact or the begin
        snapshot while the *read* of that key was constrained to an older
        version -- the clock test then passes and the intermediate version
        is silently overwritten (a lost update, caught by the randomized
        soak test).  Blind writes keep the paper's clock rule.
        """
        txn_vc = request.vc
        for key in request.writes:
            if key not in self.store:
                continue  # fresh insert: nothing to have been overwritten
            last = self.store.chain(key).latest
            read_vid = request.read_vids.get(key)
            if read_vid is not None:
                if last.vid != read_vid:
                    return False
            elif last.seq > txn_vc[last.origin]:
                return False
        return True

    def on_decide(self, envelope: Envelope):
        """Alg. 5 lines 14-26: ordered application of a decided commit."""
        body: DecideBody = envelope.payload
        if not body.outcome:
            prepared = self._prepared.pop(body.txn_id, None)
            if prepared is not None:
                self.locks.release_write_all(
                    prepared.locked_keys, owner=body.txn_id
                )
            return

        assert body.seq_no is not None and body.commit_vc is not None
        # Alg. 5 line 16: apply commits from one origin in sequence order.
        # The prepared entry stays in the table across this wait so the
        # lease can still reclaim its locks: if a predecessor Decide was
        # lost to a crash, this wait never completes and would otherwise
        # pin the locks forever.
        yield from wait_until(
            self.site_vc_changed,
            lambda: self.site_vc[body.origin] >= body.seq_no - 1,
        )
        prepared = self._prepared.pop(body.txn_id, None)
        if self.site_vc[body.origin] < body.seq_no:
            writes = prepared.writes if prepared is not None else {}
            if writes:
                yield from self.cpu.consume(self.costs.install_key * len(writes))
            commit_vc = VectorClock(body.commit_vc)
            installed: List[Version] = []
            for key, value in writes.items():
                version = self.store.install(
                    key,
                    value,
                    commit_vc.copy(),
                    origin=body.origin,
                    seq=body.seq_no,
                    writer_txn=body.txn_id,
                    installed_at=self.sim.now,
                )
                installed.append(version)
                self._maybe_collect_garbage(key)
            yield from self._on_versions_installed(installed, body.collected)
            self.site_vc[body.origin] = body.seq_no  # Alg. 5 line 21
            self.site_vc_changed.notify_all()
            if self.tracer._enabled:
                self.tracer.emit(
                    self.node_id, "decide", txn=body.txn_id,
                    origin=body.origin, seq=body.seq_no,
                )
        if prepared is not None:
            self.locks.release_write_all(prepared.locked_keys, owner=body.txn_id)

    def _maybe_collect_garbage(self, key: Hashable) -> None:
        """Reclaim cold versions once a chain outgrows the trigger length."""
        config = self.shared.config
        if not config.gc_enabled:
            return
        chain = self.store.chain(key)
        if len(chain) > config.gc_trigger_length:
            dropped = chain.collect_garbage(
                config.gc_keep_versions, config.gc_min_age, self.sim.now
            )
            if dropped:
                self.metrics.on_versions_reclaimed(dropped)

    def on_propagate(self, envelope: Envelope) -> None:
        """Alg. 6 lines 1-4: ordered snapshot advance at uninvolved nodes.

        A batched Propagate replays the window's sequence numbers one by
        one, each with the same in-order wait as a single message, so the
        per-origin apply order -- and therefore every siteVC transition --
        is identical to the unbatched schedule.

        Registered as a plain handler: the overwhelmingly common case (the
        next expected sequence number, or a duplicate) applies inline at
        delivery time; only an out-of-order arrival -- one that must wait
        for a predecessor -- pays for a spawned process.
        """
        body: PropagateBody = envelope.payload
        origin = body.origin
        seq_nos = body.seq_nos if body.seq_nos is not None else (body.seq_no,)
        site_vc = self.site_vc
        for index, seq_no in enumerate(seq_nos):
            current = site_vc[origin]
            if current >= seq_no:
                continue
            if current == seq_no - 1:
                site_vc[origin] = seq_no
                self.site_vc_changed.notify_all()
                if self.tracer._enabled:
                    self.tracer.emit(
                        self.node_id, "propagate", origin=origin, seq=seq_no
                    )
            else:
                self.sim.spawn(
                    self._apply_propagate(origin, seq_nos[index:]),
                    name="Propagate",
                )
                return

    def _apply_propagate(self, origin: int, seq_nos: Tuple[int, ...]):
        """Slow path: wait out the in-order gap, then apply the rest."""
        for seq_no in seq_nos:
            yield from wait_until(
                self.site_vc_changed,
                lambda bound=seq_no - 1: self.site_vc[origin] >= bound,
            )
            if self.site_vc[origin] < seq_no:
                self.site_vc[origin] = seq_no
                self.site_vc_changed.notify_all()
                self.tracer.emit(
                    self.node_id, "propagate", origin=origin, seq=seq_no
                )
