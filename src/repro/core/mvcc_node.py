"""Shared multi-version PSI machinery for Walter and FW-KV.

Both protocols keep per-node vector clocks advanced by per-origin sequence
numbers, buffer writes until a 2PC commit across the written keys'
preferred sites, and propagate commits asynchronously to uninvolved nodes.
They differ in how reads select versions and in the version-access-set
(visible reads) bookkeeping; those differences live in the protocol
subclasses via the hook methods marked below.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Optional, Set, Tuple

from repro.cluster.directory import ShardMap
from repro.cluster.membership import NodeMembership
from repro.cluster.node import Node
from repro.core.interfaces import BaseProtocolNode, SharedState
from repro.core.transaction import Transaction
from repro.core.vector_clock import VectorClock
from repro.core.wire import (
    DecideBody,
    HeartbeatBody,
    PrepareBody,
    PropagateBody,
    ReadRequestBody,
    ReadReturnBody,
    RemoveBody,
    SnapshotAckBody,
    SnapshotChunkBody,
    SnapshotOfferBody,
    SyncReplyBody,
    SyncRequestBody,
    TxnStatusReplyBody,
    TxnStatusRequestBody,
    VoteBody,
)
from repro.healing import NodeHealing
from repro.metrics.stats import AbortReason
from repro.net.message import Envelope, MessageType
from repro.net.rpc import RpcTimeoutError
from repro.sim import AllOf, ConditionVariable, wait_until
from repro.storage.locks import LockTable
from repro.storage.store import MultiVersionStore
from repro.storage.version import Version
from repro.storage.group_commit import WalFlusher
from repro.storage.wal import (
    AbortRecord,
    ApplyRecord,
    CheckpointMismatchError,
    CheckpointRecord,
    DecisionRecord,
    LoadRecord,
    PrepareRecord,
    PropagateRecord,
    ReplayResult,
    WriteAheadLog,
    replay,
    restore_store,
)

#: Adaptive batching: consecutive same-destination sends spaced within
#: ``adaptive_step`` of each other before a closed (zero) window opens.
#: Three back-to-back hot arrivals distinguish sustained backlog from a
#: lone coincidence without delaying the first commits of a burst.
_PRESSURE_OPEN = 3

#: Adaptive batching: flush depth above which a window grows.  Growth
#: only past this band (with decay at depth one and a hold in between)
#: makes the controller converge on windows a few inter-arrivals wide
#: instead of ratcheting to ``max_window`` -- any positive window batches
#: *something* under load, so a bare ``depth > 1`` rule always grows.
_TARGET_DEPTH = 4


class _PreparedTxn:
    """Participant-side state between a yes-vote and the Decide message."""

    __slots__ = ("writes", "locked_keys", "vote", "coordinator", "round")

    def __init__(
        self,
        writes: Dict[Hashable, object],
        locked_keys,
        vote,
        coordinator,
        round: int = 0,
    ) -> None:
        self.writes = writes
        self.locked_keys = list(locked_keys)
        #: The vote returned for this prepare, replayed verbatim if a
        #: retried/duplicated Prepare arrives again (idempotency).
        self.vote = vote
        #: Who to ask when the in-doubt window must be terminated.
        self.coordinator = coordinator
        #: Prepare round (moved-retry); a newer round supersedes this
        #: entry, and an abort Decide only cancels a matching round.
        self.round = round


class MVCCNode(BaseProtocolNode):
    """Common node logic for the two PSI protocols."""

    def __init__(self, node: Node, shared: SharedState) -> None:
        super().__init__(node, shared)
        # A node joining an established cluster has an id past the static
        # width; its clock must carry its own origin entry from birth.
        size = max(shared.num_nodes, node.node_id + 1)
        #: ``siteVC``: entry j is the newest sequence number from origin j
        #: applied at this node (paper Section 4.1).
        self.site_vc = VectorClock.zeros(size)
        #: ``CurrSeqNo``: sequence number of the latest transaction issued
        #: and committed at this node.
        self.curr_seq_no = 0
        self.site_vc_changed = ConditionVariable(self.sim)
        self.store = MultiVersionStore()
        self.locks = LockTable(self.sim)
        self._prepared: Dict[int, _PreparedTxn] = {}
        #: Transactions whose prepare handler is currently between lock
        #: acquisition and voting; duplicates racing that window vote no
        #: instead of double-acquiring the same owner's locks.
        self._preparing: Set[int] = set()
        #: Retried/duplicated read requests spawn concurrent handlers for
        #: the same transaction; a per-invocation token keeps their shared
        #: lock acquisitions independent of each other.
        self._read_token = 0
        #: destination -> commit sequence numbers awaiting a coalesced
        #: Propagate (only used when ``batching.propagate_window > 0``).
        self._propagate_buffer: Dict[int, List[int]] = {}

        #: Adaptive batching: per-destination Propagate windows (AIMD,
        #: driven by observed flush batch size; see ``_flush_propagate``).
        self._adaptive_windows: Dict[int, float] = {}
        #: Adaptive batching pressure probe: destination ->
        #: ``(last_send_time, consecutive_hot_sends)``.  While a window is
        #: closed (zero) sends go out immediately; the probe opens a window
        #: once enough back-to-back sends arrive within ``adaptive_step``
        #: of each other (see ``_send_propagate``).
        self._adaptive_pressure: Dict[int, Tuple[float, int]] = {}

        durability = shared.config.durability
        #: The node's "disk": survives a durable crash (see repro.storage.wal).
        #: Buffered (group-commit) mode iff syncs cost virtual time.
        self.wal: Optional[WriteAheadLog] = (
            WriteAheadLog(buffered=durability.fsync_latency > 0)
            if durability.wal_enabled
            else None
        )
        #: The WAL's sync scheduler (inert when ``fsync_latency == 0``).
        self.flusher: Optional[WalFlusher] = (
            WalFlusher(
                self.sim,
                self.wal,
                durability,
                metrics=self.metrics,
                tracer=self.tracer,
                node_id=node.node_id,
            )
            if self.wal is not None
            else None
        )
        #: Coordinator-side commit outcomes, kept so TxnStatus queries can
        #: be answered definitively.  Only maintained when some feature
        #: needs it (WAL or termination queries); absent entry = aborted or
        #: never decided, which presumed abort treats identically.
        self._decisions: Dict[int, DecideBody] = {}
        #: Anti-entropy streaming needs decisions addressable by their
        #: sequence number, so the index rides along with the table.
        self._decisions_by_seq: Dict[int, DecideBody] = {}
        self._track_decisions = (
            durability.wal_enabled
            or durability.termination_query
            or shared.config.healing.anti_entropy_interval is not None
            # Replication re-announces a dead coordinator's decisions and
            # answers the promoted node's TXN_STATUS queries from here.
            or shared.config.replication.enabled
        )
        #: Decide appliers between popping their prepared entry and
        #: logging the ApplyRecord (WAL runs only).  While non-empty the
        #: live store may hold versions the log does not yet explain, so
        #: the checkpoint manager refuses to snapshot.
        self._applying: Dict[int, int] = {}
        #: True from the durable-crash instant until recovery completes;
        #: read and prepare handlers park behind ``_recovered_cv`` so no
        #: request observes the half-rebuilt store.
        self._recovering = False
        self._recovered_cv = ConditionVariable(self.sim)
        #: Bumped by every volatile wipe.  In-flight processes that carry
        #: state across yields (decide appliers, propagate appliers,
        #: recovery itself) re-check it before mutating the store or the
        #: clock: a process from a wiped incarnation must not leak its
        #: effects into the rebuilt one.
        self._incarnation = 0
        #: Completed recoveries at this node (asserted on by tests).
        self.recoveries = 0
        #: The inbound checkpoint transfer in progress, if any (at most
        #: one at a time; a second offer is rejected as busy).  Holds the
        #: offer's metadata, the chunks received so far, and the
        #: incarnation the transfer belongs to.
        self._snapshot_pending: Optional[Dict[str, object]] = None
        #: Snapshots installed at this node (test probe).
        self.snapshot_installs = 0

        node.on(MessageType.READ_REQUEST, self.on_read_request)
        node.on(MessageType.PREPARE, self.on_prepare)
        node.on(MessageType.DECIDE, self.on_decide)
        node.on(MessageType.PROPAGATE, self.on_propagate)
        node.on(MessageType.TXN_STATUS, self.on_txn_status)
        node.on(MessageType.SYNC, self.on_sync)
        node.on(MessageType.HEARTBEAT, self.on_heartbeat)
        node.on(MessageType.SNAPSHOT_OFFER, self.on_snapshot_offer)
        node.on(MessageType.SNAPSHOT_CHUNK, self.on_snapshot_chunk)
        node.on(MessageType.SNAPSHOT_ACK, self.on_snapshot_ack)
        #: Elastic membership: committed/pending views, handoff fences,
        #: and the view-change protocol handlers.  Constructed before the
        #: healing layer so the gossip loops can derive their peer set
        #: from the live view.
        self.membership = NodeMembership(self)
        node.on(MessageType.VIEW_PROPOSE, self.membership.on_view_propose)
        node.on(MessageType.VIEW_ACK, self.membership.on_view_ack)
        node.on(MessageType.VIEW_COMMIT, self.membership.on_view_commit)
        #: The self-healing layer (failure detector, anti-entropy,
        #: checkpoints).  Constructed unconditionally -- with the default
        #: configuration it installs no hooks and its loops never spawn.
        self.healing = NodeHealing(self)
        #: Per-shard load tracking, armed only when the shared directory
        #: is a :class:`ShardMap` with tracking on; the static-directory
        #: hot path pays a single ``is None`` test per request.
        sharding = shared.config.sharding
        self._shard_map: Optional[ShardMap] = (
            self.directory
            if sharding.enabled
            and sharding.track_load
            and isinstance(self.directory, ShardMap)
            else None
        )
        #: Per-shard primary-backup replication substrate; attached by
        #: :class:`repro.replication.shard.ClusterReplication` when
        #: ``ReplicationConfig.enabled`` is set, ``None`` otherwise.
        self.replication = None

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------
    def load(self, key: Hashable, value: object) -> None:
        if self.wal is not None:
            # Setup-time write: durable immediately, never part of a
            # crash's lost suffix (see WriteAheadLog.append_durable).
            self.wal.append_durable(LoadRecord(((key, value),)))
        self.store.create(key, value, VectorClock.zero(self.shared.num_nodes))

    def load_many(self, items: Iterable[Tuple[Hashable, object]]) -> int:
        """Bulk-install initial versions (all share the interned zero VC)."""
        if self.wal is not None:
            items = tuple(items)
            self.wal.append_durable(LoadRecord(items))
        return self.store.create_many(
            items, VectorClock.zero(self.shared.num_nodes)
        )

    # ------------------------------------------------------------------
    # Coordinator API
    # ------------------------------------------------------------------
    def _on_begin(self, txn: Transaction) -> None:
        # Alg. 1: T.VC <- siteVC_i; hasRead all false (fresh Transaction
        # objects already satisfy the latter).
        txn.vc = self.site_vc.copy()

    def read(self, txn: Transaction, key: Hashable):
        """Alg. 2: serve from the writeset, else ask the preferred site."""
        found, value = txn.buffered_write(key)
        if found:
            return value
        if key in txn.read_cache:
            # Re-reads return the version already observed; see the
            # read-cache note on Transaction.
            return txn.read_cache[key]

        target = self.directory.site(key)
        frozen = False
        rep = self.replication
        if (
            rep is not None
            and txn.is_read_only
            and rep.cluster_rep.config.read_from_backups
        ):
            # Spread read-only traffic over the key's replica set.  A
            # backup-served read is *frozen*: answered against the carried
            # snapshot with no clock merge, so it can never observe state
            # the backup's replicated frontier does not cover.
            candidates = rep.cluster_rep.read_targets(key)
            target = candidates[txn.txn_id % len(candidates)]
            frozen = target != candidates[0]
        attempts = 0
        while True:
            try:
                reply: ReadReturnBody = yield from self.node.rpc.call(
                    target,
                    MessageType.READ_REQUEST,
                    ReadRequestBody(
                        txn_id=txn.txn_id,
                        is_read_only=txn.is_read_only,
                        key=key,
                        vc=txn.vc.to_tuple(),
                        has_read=txn.has_read_tuple(),
                        frozen=frozen,
                    ),
                )
                break
            except RpcTimeoutError:
                # With failover armed, a read that timed out against a
                # (possibly dead) server parks until the directory routes
                # the key elsewhere, then retries at the new owner --
                # keys stay readable across a primary failure.
                attempts += 1
                rep = self.replication
                if rep is None or attempts >= 3:
                    raise
                flipped = yield from rep.cluster_rep.wait_for_site_flip(
                    key, target
                )
                if not flipped and self.directory.site(key) == target:
                    raise
                target = self.directory.site(key)
                frozen = False
        if reply.max_vc is not None:
            txn.vc.merge_seq(reply.max_vc)  # Alg. 2 line 9
        first_contact = txn.note_read_site(target)  # Alg. 2 line 8
        if txn.is_read_only:
            txn.read_keys.add(key)  # Alg. 2 lines 10-12, for Remove
            self.metrics.on_ro_read(
                gap=reply.latest_vid - reply.vid,
                first_contact=first_contact,
            )
        txn.read_cache[key] = reply.value
        txn.read_versions[key] = reply.vid
        if self.tracer._enabled:
            self.tracer.emit(
                self.node_id, "read", txn=txn.txn_id, key=key, vid=reply.vid,
                latest=reply.latest_vid, site=target,
            )
        self._record_read(txn, key, reply.vid, reply.latest_vid)
        return reply.value

    def read_many(self, txn: Transaction, keys):
        """Parallel multi-get for *read-only* transactions.

        Issues all read requests concurrently and returns ``{key: value}``.
        Safe for read-only transactions because consistency is enforced by
        the version-access-set, not by request ordering: if an update
        overwrites one of the versions read here before another request is
        served, the propagated VAS entry excludes the conflicting version
        exactly as in the sequential case.  Update transactions must read
        sequentially (their safe snapshot hinges on the *first* read), so
        they are rejected.
        """
        if not txn.is_read_only:
            raise ValueError(
                "read_many is only available to read-only transactions"
            )
        keys = list(keys)
        pending = []
        for key in keys:
            found, value = txn.buffered_write(key)
            if found or key in txn.read_cache:
                pending.append(None)
                continue
            # Spawned (not bare-event) so per-request timeouts and retries
            # apply; a call that exhausts retries fails the AllOf below
            # with RpcTimeoutError, which propagates to the client.
            pending.append(
                self.sim.spawn(
                    self.node.rpc.call(
                        self.directory.site(key),
                        MessageType.READ_REQUEST,
                        ReadRequestBody(
                            txn_id=txn.txn_id,
                            is_read_only=True,
                            key=key,
                            vc=txn.vc.to_tuple(),
                            has_read=txn.has_read_tuple(),
                        ),
                    ),
                    name=f"read-many-{txn.txn_id}",
                )
            )
        replies = yield AllOf(
            self.sim, [event for event in pending if event is not None]
        )
        replies_iter = iter(replies)
        values = {}
        for key, event in zip(keys, pending):
            if event is None:
                values[key] = txn.read_cache.get(key, txn.writeset.get(key))
                continue
            reply: ReadReturnBody = next(replies_iter)
            target = self.directory.site(key)
            if reply.max_vc is not None:
                txn.vc.merge_seq(reply.max_vc)
            first_contact = txn.note_read_site(target)
            txn.read_keys.add(key)
            self.metrics.on_ro_read(
                gap=reply.latest_vid - reply.vid, first_contact=first_contact
            )
            txn.read_cache[key] = reply.value
            txn.read_versions[key] = reply.vid
            self._record_read(txn, key, reply.vid, reply.latest_vid)
            values[key] = reply.value
        return values

    def commit(self, txn: Transaction):
        """Alg. 4: read-only cleanup, or 2PC across written keys' sites.

        Per Alg. 4 line 2 the branch tests the *writeset*: a declared-
        update transaction that ended up writing nothing commits like a
        read-only one (no 2PC, no sequence number).
        """
        if txn.is_read_only or not txn.writeset:
            self._commit_read_only(txn)
            txn.mark_committed(self.sim.now)
            self._record_commit(txn)
            if self.tracer._enabled:
                self.tracer.emit(self.node_id, "commit", txn=txn.txn_id, ro=True)
            return True

        yield from self.cpu.consume(self.costs.commit_base)

        max_rounds = max(1, self.shared.config.membership.max_attempts)
        round_no = 0
        while True:
            by_site = self._group_writes_by_site(txn)

            healing = self.healing
            if (
                healing.armed
                and healing.config.fail_fast_commits
                and len(by_site) > (self.node_id in by_site)
            ):
                # Fail fast instead of burning the prepare timeout ladder on
                # a participant the detector already classified dead.  The
                # commit would have aborted anyway (RPC_TIMEOUT) -- this only
                # moves the abort earlier, it never aborts a commit that
                # could have succeeded against a genuinely live peer, because
                # DEAD requires hard evidence (consecutive timeouts or deep
                # accrual silence) and any arrival clears it.
                detector = healing.detector
                dead = [
                    site
                    for site in by_site
                    if site != self.node_id and detector.is_dead(site)
                ]
                if dead:
                    rep = self.replication
                    if (
                        rep is not None
                        and rep.cluster_rep.failover_armed()
                        and round_no + 1 < max_rounds
                    ):
                        # Failover armed: instead of aborting against the
                        # dead participant, park until its shards are
                        # promoted away, then re-prepare against the new
                        # owners -- a failover costs a retry, not an abort.
                        flipped = yield from rep.cluster_rep.wait_for_failover(
                            dead
                        )
                        if flipped:
                            round_no += 1
                            if self.tracer._enabled:
                                self.tracer.emit(
                                    self.node_id, "failover_retry",
                                    txn=txn.txn_id, round=round_no,
                                    peers=tuple(dead),
                                )
                            continue
                    txn.mark_aborted(self.sim.now)
                    self.metrics.on_abort(txn, AbortReason.PEER_DEAD)
                    self.tracer.emit(
                        self.node_id, "abort", txn=txn.txn_id,
                        reason=AbortReason.PEER_DEAD, peers=tuple(dead),
                    )
                    return False

            def prepare_body(writes):
                return PrepareBody(
                    txn.txn_id,
                    self.node_id,
                    writes,
                    txn.vc.to_tuple(),
                    read_vids={
                        key: txn.read_versions[key]
                        for key in writes
                        if key in txn.read_versions
                    },
                    round=round_no,
                )

            timed_out = False
            if set(by_site) == {self.node_id}:
                # Fast path: every written key is local -- the point of the
                # preferred-site design ("Walter can quickly commit these
                # transactions without checking other nodes for write
                # conflicts").  Prepare runs inline, skipping the loopback RPC.
                vote = yield from self._handle_prepare(
                    prepare_body(by_site[self.node_id])
                )
                votes: List[VoteBody] = [vote]
            else:
                # Each prepare is an independently-retried call; a site whose
                # retries are exhausted settles as (False, None) rather than
                # hanging the coordinator forever on a crashed peer.
                sites = list(by_site)
                settles = [
                    self.node.rpc.spawn_call(
                        site, MessageType.PREPARE, prepare_body(by_site[site])
                    )
                    for site in sites
                ]
                results = yield AllOf(self.sim, settles)
                votes = [vote for ok, vote in results if ok]
                timed_out = len(votes) < len(results)
                rep = self.replication
                if (
                    timed_out
                    and rep is not None
                    and rep.cluster_rep.failover_armed()
                    and round_no + 1 < max_rounds
                ):
                    # Some participant stopped answering mid-round.  Abort
                    # this round everywhere (round-tagged, so it cannot
                    # cancel a successor round's prepare), wait for the
                    # silent sites' shards to fail over, and re-prepare
                    # against the promoted owners.
                    missing = [
                        site
                        for (ok, _vote), site in zip(results, sites)
                        if not ok
                    ]
                    abort = DecideBody(
                        txn_id=txn.txn_id,
                        outcome=False,
                        origin=self.node_id,
                        seq_no=None,
                        commit_vc=None,
                        round=round_no,
                    )
                    for site in sorted(by_site):
                        self.node.send(site, MessageType.DECIDE, abort)
                    flipped = yield from rep.cluster_rep.wait_for_failover(
                        missing
                    )
                    if flipped:
                        round_no += 1
                        if self.tracer._enabled:
                            self.tracer.emit(
                                self.node_id, "failover_retry",
                                txn=txn.txn_id, round=round_no,
                                peers=tuple(missing),
                            )
                        continue

            for vote in votes:
                txn.collected_set |= vote.collected  # Alg. 4 line 19

            moved = not timed_out and any(
                not vote.ok and vote.reason == "moved" for vote in votes
            )
            if (
                moved
                and round_no + 1 < max_rounds
                and all(vote.ok or vote.reason == "moved" for vote in votes)
            ):
                # The prepare straddled a membership handoff: some keys'
                # ownership moved while the round was in flight.  Abort
                # this round at every participant (round-tagged, so it
                # cannot cancel the successor round), regroup the writes
                # against the flipped directory, and re-prepare.  By the
                # time a "moved" vote arrives the shared directory has
                # already flipped -- the fence only lifts after the flip --
                # so the regroup sees the new placement immediately.
                abort = DecideBody(
                    txn_id=txn.txn_id,
                    outcome=False,
                    origin=self.node_id,
                    seq_no=None,
                    commit_vc=None,
                    round=round_no,
                )
                for site in sorted(by_site):
                    self.node.send(site, MessageType.DECIDE, abort)
                round_no += 1
                if self.tracer._enabled:
                    self.tracer.emit(
                        self.node_id, "moved_retry", txn=txn.txn_id,
                        round=round_no,
                    )
                continue
            break

        outcome = not timed_out and all(vote.ok for vote in votes)

        if outcome:
            # Alg. 4 lines 22-25: assign the sequence number and finalize
            # the commit vector clock from the *current* siteVC.
            self.curr_seq_no += 1
            txn.seq_no = self.curr_seq_no
            commit_vc = self.site_vc.copy()
            commit_vc[self.node_id] = txn.seq_no
            txn.commit_vc = commit_vc
            self._on_update_commit_decided(txn)

        participant_sites = set(by_site)
        decide = DecideBody(
            txn_id=txn.txn_id,
            outcome=outcome,
            origin=self.node_id,
            seq_no=txn.seq_no,
            commit_vc=txn.commit_vc.to_tuple() if txn.commit_vc else None,
            collected=frozenset(txn.collected_set),
            round=round_no,
        )
        if outcome:
            # Presumed abort's commit rule: the decision is on record --
            # durably, when the WAL is on -- before any Decide leaves the
            # node, so an in-doubt participant asking after our crash and
            # recovery gets the same answer its lost Decide carried.
            if self._track_decisions:
                self._decisions[txn.txn_id] = decide
                self._decisions_by_seq[txn.seq_no] = decide
            if self.wal is not None:
                lsn = self.wal.append(
                    DecisionRecord(txn.txn_id, txn.seq_no, decide.commit_vc)
                )
                if self.flusher.active:
                    # Group commit: the acknowledgement (and every Decide)
                    # waits for the sync covering the decision record.  A
                    # covered decision also covers this node's own
                    # PrepareRecord for the fast-path local commit (lower
                    # LSN; syncs are prefix-durable).
                    durable = yield from self.flusher.ensure_durable(lsn)
                    if not durable:
                        # Crashed between buffer and flush: the decision
                        # never hit disk and no Decide was sent, so the
                        # recovered coordinator -- and every in-doubt
                        # participant querying it -- presumes abort.  The
                        # unacknowledged commit simply vanishes.
                        txn.mark_aborted(self.sim.now)
                        self.metrics.on_abort(txn, AbortReason.NODE_CRASHED)
                        self.tracer.emit(
                            self.node_id, "abort", txn=txn.txn_id,
                            reason=AbortReason.NODE_CRASHED,
                        )
                        return False
            if self.replication is not None:
                # Stream the decision record to every backup before any
                # Decide (or the client acknowledgement) leaves the node;
                # sync mode waits for the acks, bounded by sync_timeout.
                # Mirrors the WAL's decision-before-Decide rule: a backup
                # promoted after our crash re-announces exactly the
                # decisions whose Decides might have been lost.
                yield from self.replication.replicate_decision(
                    txn.txn_id, txn.seq_no, decide.commit_vc, decide.collected
                )
        for site in sorted(participant_sites | {self.node_id} if outcome else participant_sites):
            self.node.send(site, MessageType.DECIDE, decide)
        if outcome:
            # Alg. 4 line 27: asynchronous propagation to everyone else.
            self._send_propagate(participant_sites, txn.seq_no)
            txn.mark_committed(self.sim.now)
            self._record_commit(txn)
            if self.tracer._enabled:
                self.tracer.emit(
                    self.node_id, "commit", txn=txn.txn_id, seq=txn.seq_no
                )
        else:
            # Presumed abort: the Decide(outcome=False) sent above is
            # best-effort -- a participant that never hears it releases
            # its prepared locks when its lease expires.
            txn.mark_aborted(self.sim.now)
            if timed_out:
                reason = AbortReason.RPC_TIMEOUT
            else:
                reasons = [vote.reason for vote in votes if not vote.ok]
                reason = reasons[0] if reasons else AbortReason.VOTE_NO
            self.metrics.on_abort(txn, reason)
            self.tracer.emit(
                self.node_id, "abort", txn=txn.txn_id, reason=reason
            )
        return outcome

    def _send_propagate(self, participant_sites: Set[int], seq_no: int) -> None:
        """Alg. 4 line 27 fan-out, optionally coalesced per destination.

        With ``batching.propagate_window == 0`` (default) every uninvolved
        site gets its own Propagate immediately -- the paper's behaviour,
        message for message.  With a positive window, this origin buffers
        the window's sequence numbers per destination and flushes them as
        one Propagate carrying ``seq_nos``; commits within a window reach
        uninvolved nodes at most one window late, which only delays
        snapshot freshness (PSI allows arbitrarily stale reads), never
        correctness.  Buffering is per destination because each commit has
        its own participant set.
        """
        batching = self.shared.config.batching
        adaptive = batching.adaptive
        window = batching.propagate_window
        node_id = self.node_id
        # Fan out over the live view (ring + joining members), not the
        # static seed: a joining node needs the clock-only stream from
        # the moment it enters the view, and a removed one must stop
        # receiving traffic.  At epoch zero this is exactly ``node_ids``.
        targets = self.membership.view.fanout_ids
        if not adaptive and window <= 0:
            propagate = PropagateBody(node_id, seq_no)
            for site in targets:
                if site not in participant_sites and site != node_id:
                    self.node.send(site, MessageType.PROPAGATE, propagate)
            return
        buffer = self._propagate_buffer
        if not adaptive:
            for site in targets:
                if site not in participant_sites and site != node_id:
                    pending = buffer.get(site)
                    if pending is None:
                        # First commit of this destination's window opens it.
                        buffer[site] = [seq_no]
                        self.sim.call_later(window, self._flush_propagate, site)
                    else:
                        pending.append(seq_no)
            return
        # Adaptive mode.  A destination whose window has decayed to zero is
        # served immediately -- no buffer, no timer event, so an idle
        # adaptive cluster pays only two dict operations over the
        # non-batched path.  The probe watches arrival gaps: once
        # ``_PRESSURE_OPEN`` consecutive Propagates to the same destination
        # land within ``adaptive_step`` of each other, commits are
        # outpacing delivery and a window of one step opens.  From then on
        # sends buffer and the flush-time AIMD rule takes over: observed
        # batches grow the window additively, lone flushes decay it back
        # toward zero (and immediate sends).
        windows = self._adaptive_windows
        pressure = self._adaptive_pressure
        now = self.sim.now
        hot_gap = batching.adaptive_step
        propagate = None
        for site in targets:
            if site not in participant_sites and site != node_id:
                delay = windows.get(site, 0.0)
                if delay <= 0.0:
                    if propagate is None:
                        propagate = PropagateBody(node_id, seq_no)
                    self.node.send(site, MessageType.PROPAGATE, propagate)
                    last, hot = pressure.get(site, (-1.0, 0))
                    if 0.0 <= now - last <= hot_gap:
                        hot += 1
                        if hot >= _PRESSURE_OPEN:
                            windows[site] = hot_gap
                            hot = 0
                    else:
                        hot = 0
                    pressure[site] = (now, hot)
                    continue
                pending = buffer.get(site)
                if pending is None:
                    buffer[site] = [seq_no]
                    self.sim.call_later(delay, self._flush_propagate, site)
                else:
                    pending.append(seq_no)

    def _flush_propagate(self, site: int) -> None:
        """Close a destination's Propagate window and send the batch."""
        seq_nos = self._propagate_buffer.pop(site, None)
        if seq_nos:
            self.node.send(
                site,
                MessageType.PROPAGATE,
                PropagateBody(self.node_id, seq_nos[-1], tuple(seq_nos)),
            )
            batching = self.shared.config.batching
            if batching.adaptive:
                # AIMD on observed queue depth: depth beyond the target
                # band means commits far outpace the window (additive
                # growth, capped), a lone sequence number means idle
                # (multiplicative decay toward zero = immediate sends
                # again), and depths inside the band hold the window --
                # the equilibrium is a window a few inter-arrivals wide,
                # which coalesces messages without stalling the in-order
                # Decide apply path behind a ``max_window`` of traffic.
                windows = self._adaptive_windows
                current = windows.get(site, 0.0)
                if len(seq_nos) > _TARGET_DEPTH:
                    windows[site] = min(
                        current + batching.adaptive_step, batching.max_window
                    )
                elif len(seq_nos) == 1 and current > 0.0:
                    decayed = current * batching.adaptive_decay
                    windows[site] = 0.0 if decayed < 1e-9 else decayed

    def _group_writes_by_site(
        self, txn: Transaction
    ) -> Dict[int, Dict[Hashable, object]]:
        by_site: Dict[int, Dict[Hashable, object]] = {}
        for key, value in txn.writeset.items():
            by_site.setdefault(self.directory.site(key), {})[key] = value
        return by_site

    # ------------------------------------------------------------------
    # Protocol hooks
    # ------------------------------------------------------------------
    def _commit_read_only(self, txn: Transaction) -> None:
        """Read-only commit step (FW-KV sends Removes; Walter is a no-op)."""

    def _on_update_commit_decided(self, txn: Transaction) -> None:
        """Called once an update transaction's commit is decided."""

    def _collect_antideps(self, writes: Iterable[Hashable]):
        """Prepare-time VAS harvest (FW-KV); Walter collects nothing.

        Generator subroutine: may charge CPU time.  Returns a frozenset.
        """
        return frozenset()
        yield  # pragma: no cover - makes this a generator subroutine

    def _on_versions_installed(
        self, versions: List[Version], collected: frozenset
    ):
        """Decide-time VAS propagation (FW-KV); Walter does nothing.

        Generator subroutine: may charge CPU time.
        """
        return None
        yield  # pragma: no cover

    def _select_version(self, request: ReadRequestBody) -> Tuple[Version, int]:
        """Pick the version a read request observes.

        Returns ``(version, inspected_vas_entries)``.  Implemented by the
        protocol subclasses.
        """
        raise NotImplementedError

    def _read_needs_lock(self, request: ReadRequestBody) -> bool:
        """Whether the read handler must take the shared per-key lock."""
        raise NotImplementedError

    def _freshness_bound(
        self, request: ReadRequestBody, version: Version
    ) -> Optional[Tuple[int, ...]]:
        """The ``maxVC`` carried back by ReadReturn (None for Walter)."""
        raise NotImplementedError

    def _register_visible_read(
        self, request: ReadRequestBody, version: Version
    ) -> None:
        """Alg. 3 line 8 (FW-KV read-only only)."""

    # ------------------------------------------------------------------
    # Message handlers
    # ------------------------------------------------------------------
    def on_read_request(self, envelope: Envelope):
        """Alg. 3: version selection at the storage node."""
        request: ReadRequestBody = self.node.rpc.body_of(envelope)

        if self._recovering:
            yield from wait_until(
                self._recovered_cv, lambda: not self._recovering
            )

        if request.frozen and self.replication is not None:
            # Read-forwarding: a frozen read routed to this node as a
            # backup is served against the replicated frontier (or
            # forwarded to the primary); a False return means a failover
            # made us the owner meanwhile -- serve it normally below.
            handled = yield from self.replication.serve_or_forward(
                envelope, request
            )
            if handled:
                return

        # Snapshot-completeness wait.  The requester's T.VC may run ahead
        # of this node (it can learn a commit through its own Decide
        # participation while our in-order apply is still pending); serving
        # the read before catching up could miss a committed-but-not-yet-
        # installed version inside the snapshot -- a fractured read.  The
        # original Walter never hits this because every site holds a full
        # replica and reads locally; in the partitioned preferred-site port
        # the handler must wait until this node's clock dominates the
        # request's snapshot.  Without injected congestion the wait is
        # almost always vacuous.
        txn_vc = request.vc
        site_vc = self.site_vc
        membership = self.membership
        if len(txn_vc) != len(site_vc.entries):
            # Reconfiguration in flight: the requester began its snapshot
            # under a different clock width than ours.
            self.metrics.on_stale_width()
            need = 0
            for origin in range(len(site_vc.entries), len(txn_vc)):
                if txn_vc[origin] > 0 and origin not in membership.dropped:
                    need = origin + 1
            if need:
                # The snapshot saw an origin we have no entry for yet;
                # widen so the completeness wait below covers it (widen
                # extends the live entry list in place).  Entries for
                # retired, *dropped* origins stay truncated: the shrink
                # gate proved their full final frontier is applied here,
                # so any snapshot dependency on them is vacuously met --
                # re-widening them to zero would park this wait forever.
                site_vc.widen(need)
        site_entries = site_vc.entries

        def behind_snapshot() -> bool:
            for origin, target in enumerate(txn_vc):
                if target <= 0 or origin in membership.dropped:
                    continue
                if origin >= len(site_entries) or site_entries[origin] < target:
                    return True
            return False

        if behind_snapshot():
            stall_started = self.sim.now
            yield from wait_until(
                self.site_vc_changed, lambda: not behind_snapshot()
            )
            self.metrics.on_read_stall(self.sim.now - stall_started)
            self.tracer.emit(
                self.node_id, "stall", txn=request.txn_id,
                waited=self.sim.now - stall_started,
            )

        lock_key = request.key
        needs_lock = self._read_needs_lock(request)
        cost = self.costs.read_handler
        # Bound locally: a durable crash replaces ``self.locks`` mid-run,
        # and a handler that acquired on the old table must release there.
        locks = self.locks
        if needs_lock:
            # Shared mode: concurrent read handlers proceed together, but
            # conflicting update commits (write lockers) are excluded.
            self._read_token += 1
            lock_owner = ("read", request.txn_id, self._read_token)
            granted = yield locks.acquire_read(
                lock_key, owner=lock_owner, timeout=None
            )
            assert granted, "untimed lock acquisition cannot fail"
            cost += self.costs.lock_op

        chain = self.store.chain(request.key)
        version, inspected = self._select_version(request)
        self._register_visible_read(request, version)
        cost += (
            self.costs.version_scan_item * (chain.latest.vid - version.vid + 1)
            + self.costs.vas_item * inspected
        )
        yield from self.cpu.consume(cost)
        if inspected:
            self.metrics.on_vas_inspected(inspected)
        max_vc = self._freshness_bound(request, version)
        latest_vid = chain.latest.vid

        if needs_lock:
            locks.release_read(lock_key, owner=lock_owner)

        if self._shard_map is not None:
            self.metrics.on_shard_access(self._shard_map.shard_of(request.key))

        self.node.rpc.reply(
            envelope,
            ReadReturnBody(version.value, max_vc, version.vid, latest_vid),
        )

    def on_prepare(self, envelope: Envelope):
        """Alg. 5 lines 1-13: lock, validate, harvest anti-dependencies."""
        request: PrepareBody = self.node.rpc.body_of(envelope)
        vote = yield from self._handle_prepare(request)
        self.node.rpc.reply(envelope, vote)

    def _handle_prepare(self, request: PrepareBody):
        """The prepare logic itself, callable inline for local commits.

        Idempotent under retries: a duplicated Prepare for an
        already-prepared transaction replays the recorded vote instead of
        re-acquiring (and then leaking) the same owner's locks, and a
        duplicate racing the original through its lock wait votes no.
        """
        if self._recovering:
            yield from wait_until(
                self._recovered_cv, lambda: not self._recovering
            )
        existing = self._prepared.get(request.txn_id)
        if existing is not None:
            if existing.round == request.round:
                return existing.vote
            if request.round < existing.round:
                # A stale round's retried Prepare arrived after its
                # successor round already prepared here.
                return VoteBody(False, reason="moved")
            # A newer round supersedes the stale entry: the coordinator
            # has aborted that round (its abort Decide may still be in
            # flight), so unstage it before preparing afresh.
            self._abort_prepared(request.txn_id, existing)
        if request.txn_id in self._preparing:
            return VoteBody(False, reason=AbortReason.VOTE_NO)
        self._preparing.add(request.txn_id)
        # Bound locally: a durable crash replaces ``self.locks`` mid-run,
        # and locks acquired on the old table must be released there.
        locks = self.locks
        try:
            keys = list(request.writes)
            membership = self.membership
            if membership.view.epoch > 0 or membership.moving_all or membership.moving:
                # Elastic membership: a key mid-handoff parks the prepare
                # until the fence lifts (view commit), then the ownership
                # re-check below answers "moved" if the directory flipped
                # -- the coordinator regroups and retries, so the handoff
                # costs a round trip, never an abort.
                if membership.is_fenced(keys):
                    yield from wait_until(
                        membership.changed,
                        lambda: not membership.is_fenced(keys),
                    )
                if any(
                    self.directory.site(key) != self.node_id for key in keys
                ):
                    return VoteBody(False, reason="moved")
            timeout = self.shared.config.lock_timeout
            granted = yield from locks.acquire_write_all(
                keys, owner=request.txn_id, timeout=timeout
            )
            if not granted:
                yield from self.cpu.consume(self.costs.lock_op * len(keys))
                return VoteBody(False, reason=AbortReason.LOCK_TIMEOUT)

            yield from self.cpu.consume(
                (self.costs.lock_op + self.costs.prepare_key) * len(keys)
            )
            if not self._validate(request):
                locks.release_write_all(keys, owner=request.txn_id)
                return VoteBody(False, reason=AbortReason.VALIDATION)

            collected = yield from self._collect_antideps(keys)
            if self.locks is not locks:
                # The node crashed durably while this prepare was in
                # flight: its locks and validation belong to the wiped
                # incarnation.  Unwind on the old table and vote no --
                # the coordinator (whose RPC may still be live now that
                # the node is back up) simply aborts.
                locks.release_write_all(keys, owner=request.txn_id)
                return VoteBody(False, reason=AbortReason.VOTE_NO)
            vote = VoteBody(True, collected)
            entry = _PreparedTxn(
                request.writes, keys, vote, request.coordinator,
                round=request.round,
            )
            if self.wal is not None:
                # Log-before-vote: once the yes-vote can reach the
                # coordinator, a recovered replica must re-stage these
                # writes (they may be committed without its knowledge).
                lsn = self.wal.append(
                    PrepareRecord(
                        request.txn_id,
                        request.coordinator,
                        tuple(request.writes.items()),
                    )
                )
                if (
                    self.flusher.active
                    and request.coordinator != self.node_id
                ):
                    # Group commit: the yes-vote must not leave the node
                    # before its PrepareRecord is on disk -- a committed
                    # transaction's re-announced Decide carries no writes,
                    # so a participant that lost the prepare could never
                    # re-stage them.  Self-coordinated prepares skip the
                    # wait: their vote never leaves the node, and the
                    # decision record's sync (higher LSN, prefix-durable)
                    # covers this one before any external effect.
                    durable = yield from self.flusher.ensure_durable(lsn)
                    if not durable or self.locks is not locks:
                        # Crashed before the group hit disk: the vote and
                        # the staged writes die together -- unwind on the
                        # old table and vote no (presumed abort).
                        locks.release_write_all(keys, owner=request.txn_id)
                        return VoteBody(False, reason=AbortReason.VOTE_NO)
            if self.replication is not None:
                # Stream the staged writes to the written shards' backups
                # before the yes-vote can escape (sync mode waits for the
                # acks, bounded): a backup promoted after our crash can
                # then resolve this prepare through the coordinator.
                yield from self.replication.replicate_prepare(request)
                if self.locks is not locks:
                    # Durable crash during the replication wait: unwind on
                    # the old table and vote no (presumed abort).
                    locks.release_write_all(keys, owner=request.txn_id)
                    return VoteBody(False, reason=AbortReason.VOTE_NO)
            self._prepared[request.txn_id] = entry
            lease = self.shared.config.prepared_lease
            if lease is not None:
                self.sim.call_later(
                    lease, self._expire_prepared, request.txn_id, entry
                )
            if self._shard_map is not None:
                for key in keys:
                    self.metrics.on_shard_access(
                        self._shard_map.shard_of(key)
                    )
            self.tracer.emit(
                self.node_id, "prepare", txn=request.txn_id,
                keys=len(keys), collected=len(collected),
            )
            return vote
        finally:
            self._preparing.discard(request.txn_id)

    def _expire_prepared(self, txn_id: int, entry: _PreparedTxn) -> None:
        """Prepared-lock lease fired: presume abort, or ask the coordinator.

        Fires ``prepared_lease`` after the yes-vote.  If the Decide arrived
        in time the entry was already popped (or replaced) and this is a
        no-op.  Otherwise the historical behaviour -- and the default --
        presumes the coordinator dead and aborts unilaterally, which is
        *wrong* when the coordinator committed and only the Decide was
        lost: this site drops a committed transaction's writes (the
        ROADMAP termination-protocol gap).  With
        ``durability.termination_query`` on, the participant instead asks
        the coordinator for the recorded outcome and applies it.
        """
        if self._prepared.get(txn_id) is not entry:
            return
        durability = self.shared.config.durability
        if durability.termination_query and entry.coordinator != self.node_id:
            self.sim.spawn(
                self._terminate_in_doubt(txn_id, entry),
                name=f"n{self.node_id}:terminate-{txn_id}",
            )
            return
        self._abort_prepared(txn_id, entry)
        self.metrics.on_lease_expired()
        self.tracer.emit(self.node_id, "lease_expire", txn=txn_id)

    def _abort_prepared(self, txn_id: int, entry: _PreparedTxn) -> None:
        """Resolve a prepared transaction as aborted and free its locks."""
        del self._prepared[txn_id]
        if self.wal is not None:
            self.wal.append(AbortRecord(txn_id))
        if self.replication is not None:
            self.replication.note_abort(txn_id, entry.writes, entry.round)
        self.locks.release_write_all(entry.locked_keys, owner=txn_id)

    def _terminate_in_doubt(self, txn_id: int, entry: _PreparedTxn):
        """Ask the coordinator how an in-doubt prepare actually ended.

        The coordinator logs commit decisions *before* sending any Decide,
        so its answer is definitive: committed (apply exactly as the lost
        Decide would have) or not-on-record (abort is safe).  Queries are
        retried up to ``termination_max_attempts`` rounds -- the RPC layer
        retries within each round -- and only when the coordinator stays
        unreachable past the whole budget does the participant fall back
        to the old presumed abort rather than hold the locks forever.
        """
        durability = self.shared.config.durability
        round_wait = self.shared.config.prepared_lease or 1e-3
        for attempt in range(durability.termination_max_attempts):
            if self._prepared.get(txn_id) is not entry:
                return  # the real Decide (or recovery) won the race
            ok, reply = yield from self.node.rpc.call_settled(
                entry.coordinator,
                MessageType.TXN_STATUS,
                TxnStatusRequestBody(txn_id),
            )
            if self._prepared.get(txn_id) is not entry:
                return
            if ok:
                self.metrics.on_indoubt_resolved(reply.committed)
                self.tracer.emit(
                    self.node_id, "indoubt", txn=txn_id,
                    committed=reply.committed, attempts=attempt + 1,
                )
                if reply.committed:
                    yield from self._apply_committed_decide(
                        DecideBody(
                            txn_id=txn_id,
                            outcome=True,
                            origin=reply.origin,
                            seq_no=reply.seq_no,
                            commit_vc=reply.commit_vc,
                            collected=reply.collected,
                        )
                    )
                else:
                    self._abort_prepared(txn_id, entry)
                return
            yield self.sim.timeout(round_wait)
        if self._prepared.get(txn_id) is not entry:
            return
        self._abort_prepared(txn_id, entry)
        self.metrics.on_lease_expired()
        self.tracer.emit(self.node_id, "lease_expire", txn=txn_id)

    def _validate(self, request: PrepareBody) -> bool:
        """First-committer-wins validation of the written keys.

        For a key the transaction also *read*, the latest version must be
        exactly the version it observed (``read_vids``).  For Walter this
        is equivalent to the paper's clock test (a frozen ``T.VC`` makes
        "visible" and "validates" coincide), but for FW-KV the clock test
        alone (Alg. 5 lines 27-34) is unsound: ``T.VC[j]`` can advance past
        a version's sequence number via a fresh contact or the begin
        snapshot while the *read* of that key was constrained to an older
        version -- the clock test then passes and the intermediate version
        is silently overwritten (a lost update, caught by the randomized
        soak test).  Blind writes keep the paper's clock rule.
        """
        txn_vc = request.vc
        dropped = self.membership.dropped
        for key in request.writes:
            if key not in self.store:
                continue  # fresh insert: nothing to have been overwritten
            last = self.store.chain(key).latest
            read_vid = request.read_vids.get(key)
            if read_vid is not None:
                if last.vid != read_vid:
                    return False
            elif last.origin in dropped:
                # The key's last write came from a retired origin whose
                # dropped clock entry the shrink gate proved fully
                # applied everywhere; every current snapshot covers it.
                continue
            elif last.origin >= len(txn_vc) or last.seq > txn_vc[last.origin]:
                # A missing entry counts as zero (elastic membership: the
                # transaction began before the version's origin joined),
                # so any committed sequence number is past its snapshot.
                return False
        return True

    def on_decide(self, envelope: Envelope):
        """Alg. 5 lines 14-26: ordered application of a decided commit."""
        body: DecideBody = envelope.payload
        if not body.outcome:
            prepared = self._prepared.get(body.txn_id)
            # Round-gated: a moved-retry's abort for round N must not
            # cancel the successor round's prepared entry.
            if prepared is not None and prepared.round == body.round:
                del self._prepared[body.txn_id]
                if self.wal is not None:
                    self.wal.append(AbortRecord(body.txn_id))
                if self.replication is not None:
                    self.replication.note_abort(
                        body.txn_id, prepared.writes, prepared.round
                    )
                self.locks.release_write_all(
                    prepared.locked_keys, owner=body.txn_id
                )
            return
        yield from self._apply_committed_decide(body)

    def _apply_committed_decide(self, body: DecideBody):
        """Apply one committed Decide: in-order install + clock advance.

        Also the terminal step of in-doubt termination and recovery --
        those paths synthesize the ``DecideBody`` from the coordinator's
        recorded decision and funnel through here so the install, VAS
        propagation, WAL apply record, and lock release stay identical to
        a Decide that arrived on time.
        """
        assert body.seq_no is not None and body.commit_vc is not None
        if body.origin >= len(self.site_vc):
            if body.origin in self.membership.dropped:
                return  # straggler from a retired origin, fully applied
            # A commit from a freshly joined origin can outrun the view
            # commit that widens the clock; widening here is equivalent
            # (new entries start at zero either way).
            self.site_vc.widen(body.origin + 1)
        # Alg. 5 line 16: apply commits from one origin in sequence order.
        # The prepared entry stays in the table across this wait so the
        # lease can still reclaim its locks: if a predecessor Decide was
        # lost to a crash, this wait never completes and would otherwise
        # pin the locks forever.
        yield from wait_until(
            self.site_vc_changed,
            lambda: body.origin >= len(self.site_vc)
            or self.site_vc[body.origin] >= body.seq_no - 1,
        )
        if body.origin >= len(self.site_vc):
            # The origin retired and its clock entry was dropped while
            # this applier waited; the shrink gate proved everything at
            # or below its final frontier -- including this commit --
            # was already applied here.  Just release any leftover entry.
            stale = self._prepared.pop(body.txn_id, None)
            if stale is not None:
                self.locks.release_write_all(
                    stale.locked_keys, owner=body.txn_id
                )
            return
        prepared = self._prepared.pop(body.txn_id, None)
        # The entry popped (and the locks it holds) belong to the current
        # incarnation; if a durable crash wipes the node across one of the
        # yields below, this process must stop mutating the rebuilt state
        # -- the WAL's in-doubt machinery re-applies the commit instead.
        locks = self.locks
        incarnation = self._incarnation
        # From here to the ApplyRecord the transaction is in neither the
        # prepared table nor (yet) the log while its versions may already
        # sit in the live store; checkpoints must not observe the window.
        marking = self.wal is not None
        if marking:
            self._applying[body.txn_id] = incarnation
        try:
            if self.site_vc[body.origin] < body.seq_no:
                writes = prepared.writes if prepared is not None else {}
                if writes:
                    yield from self.cpu.consume(
                        self.costs.install_key * len(writes)
                    )
                if self._incarnation != incarnation:
                    if prepared is not None:
                        locks.release_write_all(
                            prepared.locked_keys, owner=body.txn_id
                        )
                    return
                commit_vc = VectorClock(body.commit_vc)
                installed: List[Version] = []
                for key, value in writes.items():
                    version = self.store.install(
                        key,
                        value,
                        commit_vc.copy(),
                        origin=body.origin,
                        seq=body.seq_no,
                        writer_txn=body.txn_id,
                        installed_at=self.sim.now,
                    )
                    installed.append(version)
                    self._maybe_collect_garbage(key)
                yield from self._on_versions_installed(installed, body.collected)
                if self._incarnation != incarnation:
                    if prepared is not None:
                        locks.release_write_all(
                            prepared.locked_keys, owner=body.txn_id
                        )
                    return
                if self.wal is not None:
                    # Logged atomically with the clock advance (no yields
                    # between): a crash before this point leaves the prepare
                    # in doubt and recovery re-applies it; a crash after has
                    # the full install on record.
                    self.wal.append(
                        ApplyRecord(
                            body.txn_id,
                            body.origin,
                            body.seq_no,
                            body.commit_vc,
                            tuple(writes.items()),
                        )
                    )
                self.site_vc[body.origin] = body.seq_no  # Alg. 5 line 21
                self.site_vc_changed.notify_all()
                if self.replication is not None:
                    # Stream the installed versions (and the advanced
                    # frontier) to the written shards' backups; the
                    # frontier snapshot taken *after* the clock advance
                    # provably covers this install.
                    self.replication.note_apply(body, writes)
                if self.tracer._enabled:
                    self.tracer.emit(
                        self.node_id, "decide", txn=body.txn_id,
                        origin=body.origin, seq=body.seq_no,
                    )
            if prepared is not None:
                locks.release_write_all(prepared.locked_keys, owner=body.txn_id)
        finally:
            if marking and self._applying.get(body.txn_id) == incarnation:
                del self._applying[body.txn_id]

    def _maybe_collect_garbage(self, key: Hashable) -> None:
        """Reclaim cold versions once a chain outgrows the trigger length."""
        config = self.shared.config
        if not config.gc_enabled:
            return
        chain = self.store.chain(key)
        if len(chain) > config.gc_trigger_length:
            dropped = chain.collect_garbage(
                config.gc_keep_versions, config.gc_min_age, self.sim.now
            )
            if dropped:
                self.metrics.on_versions_reclaimed(dropped)

    def on_propagate(self, envelope: Envelope) -> None:
        """Alg. 6 lines 1-4: ordered snapshot advance at uninvolved nodes.

        A batched Propagate replays the window's sequence numbers one by
        one, each with the same in-order wait as a single message, so the
        per-origin apply order -- and therefore every siteVC transition --
        is identical to the unbatched schedule.

        Registered as a plain handler: the overwhelmingly common case (the
        next expected sequence number, or a duplicate) applies inline at
        delivery time; only an out-of-order arrival -- one that must wait
        for a predecessor -- pays for a spawned process.
        """
        body: PropagateBody = envelope.payload
        origin = body.origin
        seq_nos = body.seq_nos if body.seq_nos is not None else (body.seq_no,)
        site_vc = self.site_vc
        if origin >= len(site_vc):
            if origin in self.membership.dropped:
                return  # straggler from a retired origin, fully applied
            site_vc.widen(origin + 1)
        for index, seq_no in enumerate(seq_nos):
            current = site_vc[origin]
            if current >= seq_no:
                continue
            if current == seq_no - 1:
                if self.wal is not None:
                    self.wal.append(PropagateRecord(origin, seq_no))
                site_vc[origin] = seq_no
                self.site_vc_changed.notify_all()
                if self.replication is not None:
                    self.replication.note_frontier()
                if self.tracer._enabled:
                    self.tracer.emit(
                        self.node_id, "propagate", origin=origin, seq=seq_no
                    )
            else:
                self.sim.spawn(
                    self._apply_propagate(origin, seq_nos[index:]),
                    name="Propagate",
                )
                return

    def _apply_propagate(self, origin: int, seq_nos: Tuple[int, ...]):
        """Slow path: wait out the in-order gap, then apply the rest."""
        incarnation = self._incarnation
        for seq_no in seq_nos:
            yield from wait_until(
                self.site_vc_changed,
                lambda bound=seq_no - 1: origin >= len(self.site_vc)
                or self.site_vc[origin] >= bound,
            )
            if self._incarnation != incarnation:
                return  # a durable crash wiped the clock this was advancing
            if origin >= len(self.site_vc):
                return  # the origin retired and its entry was truncated
            if self.site_vc[origin] < seq_no:
                if self.wal is not None:
                    self.wal.append(PropagateRecord(origin, seq_no))
                self.site_vc[origin] = seq_no
                self.site_vc_changed.notify_all()
                if self.replication is not None:
                    self.replication.note_frontier()
                self.tracer.emit(
                    self.node_id, "propagate", origin=origin, seq=seq_no
                )

    # ------------------------------------------------------------------
    # Recovery RPCs
    # ------------------------------------------------------------------
    def on_txn_status(self, envelope: Envelope) -> None:
        """Answer an in-doubt termination query from our decision log.

        No commit decision on record means no Decide was ever sent (the
        decision is logged first), so ``committed=False`` is definitive --
        the presumed-abort rule, now actually safe to act on.
        """
        request: TxnStatusRequestBody = self.node.rpc.body_of(envelope)
        decision = self._decisions.get(request.txn_id)
        if decision is not None:
            reply = TxnStatusReplyBody(
                txn_id=request.txn_id,
                committed=True,
                origin=decision.origin,
                seq_no=decision.seq_no,
                commit_vc=decision.commit_vc,
                collected=decision.collected,
            )
        else:
            reply = TxnStatusReplyBody(
                txn_id=request.txn_id, committed=False, origin=self.node_id
            )
        self.node.rpc.reply(envelope, reply)

    def on_sync(self, envelope: Envelope) -> None:
        """Report this node's applied commit frontier (anti-entropy).

        Gossip digests additionally carry the requester's own ``siteVC``;
        its entry for *our* origin is durable-frontier evidence the
        checkpoint manager uses to decide WAL truncation.
        """
        request: SyncRequestBody = self.node.rpc.body_of(envelope)
        if request.site_vc is not None and self.node_id < len(request.site_vc):
            self.healing.note_peer_frontier(
                request.requester, request.site_vc[self.node_id]
            )
        self.node.rpc.reply(envelope, SyncReplyBody(self.site_vc.to_tuple()))

    def on_heartbeat(self, envelope: Envelope) -> None:
        """A peer's liveness beacon (the arrival itself fed the detector
        via ``Node.arrival_hook``); harvest its frontier evidence."""
        body: HeartbeatBody = envelope.payload
        self.healing.on_heartbeat(envelope.src, body.site_vc)

    def checkpoint_now(self):
        """Snapshot durable state into the WAL (see CheckpointManager)."""
        return self.healing.checkpoints.checkpoint_now()

    # ------------------------------------------------------------------
    # Snapshot install (receiver side of checkpoint transfer)
    # ------------------------------------------------------------------
    def on_snapshot_offer(self, envelope: Envelope) -> None:
        """Admit or reject a peer's checkpoint transfer (see daemon).

        Acceptance raises the read/prepare fence (``_recovering``) for
        the duration of the transfer: requests served against the store
        mid-replacement could observe a fractured snapshot.  Decide and
        Propagate handlers stay live -- concurrent commits are exactly
        what the install-time dominance re-check guards against.
        """
        offer: SnapshotOfferBody = self.node.rpc.body_of(envelope)
        self.node.rpc.reply(envelope, self._admit_snapshot(offer))

    def _admit_snapshot(self, offer: SnapshotOfferBody) -> SnapshotAckBody:
        def reject(reason: str) -> SnapshotAckBody:
            return SnapshotAckBody(
                offer.snapshot_id, accepted=False, reason=reason
            )

        if offer.shard:
            # Shard handoff (membership): the chains are authoritative for
            # keys this node is *about to own* -- no staleness gate (our
            # clock says nothing about them) and no read/prepare fence
            # (our own keys stay fully servable during the transfer).
            if self._snapshot_pending is not None:
                return reject("busy")
            if self._recovering:
                return reject("recovering")
        else:
            if (
                not self.shared.config.healing.snapshot.enabled
                or self.wal is None
            ):
                return reject("disabled")
            if self._snapshot_pending is not None:
                return reject("busy")
            if self._recovering:
                return reject("recovering")
            site_vc = self.site_vc
            mine = site_vc.entries
            shared_width = min(len(mine), len(offer.site_vc))
            own_sender_entry = (
                mine[offer.sender] if offer.sender < len(mine) else 0
            )
            if (
                any(
                    mine[origin] > offer.site_vc[origin]
                    for origin in range(shared_width)
                )
                or any(entry > 0 for entry in mine[shared_width:])
                or offer.site_vc[offer.sender] <= own_sender_entry
            ):
                # Installing must never regress an origin (an origin the
                # offer lacks counts as zero), and an offer that does not
                # even advance the sender's own frontier fixes nothing --
                # wait for a fresher checkpoint.
                return reject("stale")
        pending: Dict[str, object] = {
            "sender": offer.sender,
            "snapshot_id": offer.snapshot_id,
            "site_vc": offer.site_vc,
            "curr_seq_no": offer.curr_seq_no,
            "fingerprint": offer.fingerprint,
            "total": offer.total_chunks,
            "next_index": 0,
            "chains": [],
            "incarnation": self._incarnation,
            "activity": 0,
            "shard": offer.shard,
        }
        self._snapshot_pending = pending
        if not offer.shard:
            self._recovering = True
        # Watchdog: a sender that dies mid-transfer must not leave the
        # fence up forever.  Re-armed while chunks keep arriving.
        timeout = self.node.rpc.config.request_timeout
        if timeout is None:
            timeout = self.shared.config.healing.digest_timeout
        deadline = 4 * timeout
        pending["deadline"] = deadline
        self.sim.call_later(deadline, self._watch_snapshot, pending, 0)
        if self.tracer._enabled:
            self.tracer.emit(
                self.node_id, "snapshot_accept", sender=offer.sender,
                snapshot_id=offer.snapshot_id, chunks=offer.total_chunks,
            )
        return SnapshotAckBody(offer.snapshot_id, accepted=True)

    def _watch_snapshot(self, pending: Dict[str, object], activity: int) -> None:
        """Abandon a stalled inbound transfer so the fence comes down."""
        if self._snapshot_pending is not pending:
            return
        if pending["activity"] != activity:
            self.sim.call_later(
                pending["deadline"],
                self._watch_snapshot,
                pending,
                pending["activity"],
            )
            return
        self._abandon_snapshot("timeout")

    def _abandon_snapshot(self, reason: str) -> None:
        """Drop the pending transfer and lower the fence it raised.

        The fence is only lowered when no durable crash retook it in the
        meantime (``_recovering`` then belongs to recovery, which wiped
        the pending transfer anyway).
        """
        pending = self._snapshot_pending
        if pending is None:
            return
        self._snapshot_pending = None
        if self._incarnation == pending["incarnation"] and not pending.get("shard"):
            self._recovering = False
            self._recovered_cv.notify_all()
        self.metrics.on_snapshot_abandoned()
        if self.tracer._enabled:
            self.tracer.emit(
                self.node_id, "snapshot_abandon",
                sender=pending["sender"],
                snapshot_id=pending["snapshot_id"], reason=reason,
            )

    def on_snapshot_chunk(self, envelope: Envelope):
        """Collect one chunk; the final chunk triggers the install."""
        chunk: SnapshotChunkBody = self.node.rpc.body_of(envelope)
        pending = self._snapshot_pending
        if (
            pending is None
            or pending["snapshot_id"] != chunk.snapshot_id
            or pending["sender"] != envelope.src
            or pending["next_index"] != chunk.index
        ):
            # Out-of-order, duplicated, or stale chunk: refuse; the
            # sender abandons and simply re-offers next gossip round.
            self.node.rpc.reply(
                envelope,
                SnapshotAckBody(
                    chunk.snapshot_id, accepted=False, reason="unexpected"
                ),
            )
            return
        pending["activity"] += 1
        pending["chains"].extend(chunk.chains)
        pending["next_index"] += 1
        if chunk.index + 1 < pending["total"]:
            self.node.rpc.reply(
                envelope, SnapshotAckBody(chunk.snapshot_id, accepted=True)
            )
            return
        installed = yield from self._install_snapshot(pending)
        self.node.rpc.reply(
            envelope,
            SnapshotAckBody(
                chunk.snapshot_id,
                accepted=installed,
                installed=installed,
                reason=None if installed else "stale",
            ),
        )
        if installed:
            # One-way confirmation: even if the chunk reply above is
            # lost, the sender still learns this node now holds its
            # origin through the checkpoint (truncation evidence).
            self.node.send(
                envelope.src,
                MessageType.SNAPSHOT_ACK,
                SnapshotAckBody(
                    chunk.snapshot_id,
                    accepted=True,
                    installed=True,
                    site_vc=self.site_vc.to_tuple(),
                ),
            )

    def _install_snapshot(self, pending: Dict[str, object]):
        """Verify and adopt a fully received checkpoint snapshot.

        Generator subroutine returning True on success.  The adoption
        itself is synchronous (no yields between the final check and the
        post-install checkpoint), so no message delivery can observe the
        store mid-replacement.
        """
        incarnation = pending["incarnation"]
        # Drain in-flight Decide appliers: a transaction between its
        # version install and its ApplyRecord lives in neither the
        # incoming snapshot nor our log -- replacing the store under it
        # would lose the commit.  New reads/prepares are fenced; Decides
        # that arrive during the drain finish before the loop exits.
        while self._applying:
            yield self.sim.timeout(1e-6)
            if (
                self._incarnation != incarnation
                or self._snapshot_pending is not pending
            ):
                return False
        if (
            self._incarnation != incarnation
            or self._snapshot_pending is not pending
        ):
            return False
        site_vc = pending["site_vc"]
        shard = bool(pending.get("shard"))
        if not shard:
            mine = self.site_vc.entries
            shared_width = min(len(mine), len(site_vc))
            if any(
                mine[origin] > site_vc[origin]
                for origin in range(shared_width)
            ) or any(entry > 0 for entry in mine[shared_width:]):
                # A concurrent Decide advanced us past the checkpoint while
                # the chunks streamed; installing now would regress.  The
                # suffix we are missing still arrives via the normal push.
                self._abandon_snapshot("stale")
                return False
        record = CheckpointRecord(
            site_vc=tuple(site_vc),
            # The sender's counter participates in the fingerprint; it
            # is verified, never adopted (see below).
            curr_seq_no=pending["curr_seq_no"],
            chains=tuple(pending["chains"]),
            in_doubt=(),
            decisions=(),
            fingerprint=pending["fingerprint"],
        )
        try:
            store = restore_store(record)
        except CheckpointMismatchError:
            self._abandon_snapshot("fingerprint")
            return False
        adopted = 0
        if shard:
            # Shard handoff: every carried chain is a key whose ownership
            # is moving *to* this node -- adopt all of them verbatim (a
            # stale leftover chain from an earlier epoch is overwritten by
            # the authoritative copy).  The clock and coordinator counter
            # are untouched: commit propagation from the chains' origins
            # reaches this node through the normal fan-out, and advancing
            # the clock here could skip a locally prepared transaction's
            # install.
            for key in store.keys():
                self.store._chains[key] = store.chain(key)
                adopted += 1
            self._snapshot_pending = None
        else:
            # Adopt only the chains this node is the preferred site for.
            # Under the preferred-site placement the sender's store holds
            # the *sender's* keys, so for a healed straggler this set is
            # usually empty and the verified clock jump below is the whole
            # repair; a replacement node rebuilding from nothing adopts its
            # share of the data here.  Foreign chains must not be kept --
            # this node would start answering reads for keys it does not
            # own the moment the directory routed one here.
            for key in store.keys():
                if self.directory.site(key) == self.node_id:
                    self.store._chains[key] = store.chain(key)
                    adopted += 1
            vc = self.site_vc
            if len(site_vc) > len(vc.entries):
                vc.widen(len(site_vc))
            for origin in range(len(site_vc)):
                if site_vc[origin] > vc[origin]:
                    vc[origin] = site_vc[origin]
            self.site_vc_changed.notify_all()
            # Never adopt the sender's coordinator counter: our own assigned
            # sequence numbers are bounded by our clock entry, which the
            # dominance check just proved the checkpoint covers.
            self.curr_seq_no = max(self.curr_seq_no, vc[self.node_id])
            self._snapshot_pending = None
            self._recovering = False
            self._recovered_cv.notify_all()
        # Durability: our WAL's surviving prefix replays to the *old*
        # state, so immediately checkpoint the adopted state -- replay
        # resets at the newest checkpoint, making the install durable.
        if self.wal is not None:
            self.healing.checkpoints.checkpoint_now()
        self.snapshot_installs += 1
        self.metrics.on_snapshot_install(len(record.chains))
        if self.tracer._enabled:
            self.tracer.emit(
                self.node_id, "snapshot_install",
                sender=pending["sender"],
                snapshot_id=pending["snapshot_id"],
                chains=len(record.chains),
                adopted=adopted,
                shard=shard,
                frontier=site_vc[pending["sender"]],
            )
        return True

    def on_snapshot_ack(self, envelope: Envelope) -> None:
        """One-way install confirmation: frontier evidence for healing."""
        self.healing.on_snapshot_ack(envelope.src, envelope.payload)

    # ------------------------------------------------------------------
    # Durable crash & recovery
    # ------------------------------------------------------------------
    def crash_durably(self) -> None:
        """Mark the durable-crash instant.

        The network-level crash model leaves in-flight handler generators
        running (their outputs are dropped); freezing the WAL here keeps
        any of that zombie compute from becoming durable.  The volatile
        wipe itself happens at restart, inside :meth:`begin_recovery`.
        """
        if self.wal is None:
            raise RuntimeError(
                "durable crash requires durability.wal_enabled"
            )
        self.wal.freeze()
        if self.flusher is not None:
            # Abort any in-flight sync (its group never lands) and wake
            # ensure_durable waiters so their commit paths observe the
            # frozen log and report failure.
            self.flusher.on_crash()
        self._recovering = True

    def begin_recovery(self):
        """Wipe volatile state and spawn the recovery process (at restart).

        The wipe is synchronous -- from the first post-restart instant the
        node presents empty-until-recovered state, and the read/prepare
        fence (``_recovering``) parks incoming requests until the rebuild
        finishes.  Returns the recovery :class:`~repro.sim.Process`.
        """
        if self.wal is None:
            raise RuntimeError("recovery requires durability.wal_enabled")
        self._recovering = True
        records = self.wal.records()
        self.wal.unfreeze()
        if self.flusher is not None:
            self.flusher.on_recovery()
        result = replay(
            records, max(self.shared.num_nodes, self.node_id + 1)
        )
        self._wipe_volatile()
        self._install_replayed(result)
        # Restore membership knowledge logged before the crash; epochs
        # committed during the outage arrive via gossip's view piggyback.
        self.membership.restore(result.view, result.pending_view)
        return self.sim.spawn(
            self._recover(result), name=f"n{self.node_id}:recover"
        )

    def _wipe_volatile(self) -> None:
        """Durable-state loss: everything but the WAL is gone.

        ``site_vc`` is zeroed *in place* (never replaced): read handlers
        blocked across the crash hold references to its entries list, and
        a replacement object would let them satisfy their snapshot waits
        against a stale clock.
        """
        self._incarnation += 1
        self.store = MultiVersionStore()
        self.locks = LockTable(self.sim)
        self._prepared = {}
        self._preparing = set()
        self._propagate_buffer = {}
        self._adaptive_windows = {}
        self._adaptive_pressure = {}
        self._decisions = {}
        self._decisions_by_seq = {}
        self._applying = {}
        self._snapshot_pending = None
        site_vc = self.site_vc
        for origin in range(len(site_vc.entries)):
            site_vc[origin] = 0
        self.curr_seq_no = 0
        self._on_volatile_wiped()

    def _on_volatile_wiped(self) -> None:
        """Protocol hook: clear subclass volatile state (FW-KV Removes)."""

    def _install_replayed(self, result: ReplayResult) -> None:
        """Adopt the WAL-rebuilt store, clock, decisions and in-doubt set."""
        self.store = result.store
        site_vc = self.site_vc
        replayed = result.site_vc
        if len(replayed) > len(site_vc.entries):
            site_vc.widen(len(replayed))
        for origin in range(len(site_vc.entries)):
            site_vc[origin] = replayed[origin] if origin < len(replayed) else 0
        # Never hand out a sequence number at or below one that escaped:
        # every escaped seq has a DecisionRecord (logged before fan-out).
        self.curr_seq_no = max(result.curr_seq_no, site_vc[self.node_id])
        if self._track_decisions:
            for txn_id, decision in result.decisions.items():
                body = DecideBody(
                    txn_id=txn_id,
                    outcome=True,
                    origin=self.node_id,
                    seq_no=decision.seq_no,
                    commit_vc=decision.commit_vc,
                )
                self._decisions[txn_id] = body
                self._decisions_by_seq[decision.seq_no] = body
        for txn_id, record in sorted(result.in_doubt.items()):
            writes = dict(record.writes)
            entry = _PreparedTxn(
                writes, list(writes), VoteBody(True), record.coordinator
            )
            # Re-stage on the fresh lock table so whichever path resolves
            # this entry (recovery's own termination, a late Decide, or a
            # lease) releases locks it actually holds.  The table is
            # brand-new, so the acquires are uncontended and synchronous.
            for key in entry.locked_keys:
                granted = self.locks.lock_for(key).acquire_write(txn_id)
                assert granted.triggered, "fresh lock table cannot block"
            self._prepared[txn_id] = entry
        if self.replication is not None:
            self.replication.on_recovered(result.replication)

    def _recover(self, result: ReplayResult):
        """Rebuild from the WAL: terminate in-doubt prepares, catch up.

        Runs with the ``_recovering`` fence up.  Steps:

        1. Resolve every in-doubt prepare via the coordinator's decision
           log (our own log, when this node coordinated).  Committed ones
           are applied through :meth:`_apply_committed_decide` -- their
           sequence numbers are *reserved* so step 3 leaves the clock
           advance to the applier.
        2. Anti-entropy SYNC: ask every peer for its ``siteVC``; the
           element-wise max is the catch-up target.  Runs after step 1's
           queries so a coordinator that just answered is included.
        3. Per-origin catch-up to the target: sequence numbers whose
           Propagate was lost while we were down carry no data for us
           (anything with data had us as a 2PC participant, hence is in
           the WAL), so the clock advance is safe.  Our *own* origin is
           additionally caught up to ``curr_seq_no``: every assigned
           sequence number has a durable decision record, but a commit
           whose loopback Decide died with the crash never advanced our
           own clock entry.
        4. Re-announce our own origin to peers the SYNC replies showed
           behind on it: a commit decided just before the crash may have
           lost its entire Decide/Propagate fan-out, and nobody but this
           node can ever tell uninvolved peers that sequence number
           exists -- without this their in-order apply wedges behind the
           gap forever.  The re-announcement is a full Decide rebuilt
           from the WAL's decision records, never a clock-only
           Propagate: a participant that still holds the prepared writes
           must install them, and a bare clock advance past the sequence
           number would make its apply path skip the install.
        """
        durability = self.shared.config.durability
        incarnation = self._incarnation
        waiters = []
        reserved: Dict[int, Set[int]] = {}
        for txn_id, record in sorted(result.in_doubt.items()):
            if self._incarnation != incarnation:
                return  # crashed again mid-recovery; a newer recovery owns it
            entry = self._prepared.get(txn_id)
            if entry is None:
                continue
            if record.coordinator == self.node_id:
                decision = self._decisions.get(txn_id)
                committed = decision is not None
                body = decision
            else:
                committed = False
                body = None
                round_wait = self.shared.config.prepared_lease or 1e-3
                for _attempt in range(durability.termination_max_attempts):
                    ok, reply = yield from self.node.rpc.call_settled(
                        record.coordinator,
                        MessageType.TXN_STATUS,
                        TxnStatusRequestBody(txn_id),
                    )
                    if ok:
                        committed = reply.committed
                        if committed:
                            body = DecideBody(
                                txn_id=txn_id,
                                outcome=True,
                                origin=reply.origin,
                                seq_no=reply.seq_no,
                                commit_vc=reply.commit_vc,
                                collected=reply.collected,
                            )
                        break
                    yield self.sim.timeout(round_wait)
            if self._prepared.get(txn_id) is not entry:
                continue  # resolved concurrently (e.g. a late Decide)
            self.metrics.on_indoubt_resolved(committed)
            self.tracer.emit(
                self.node_id, "indoubt", txn=txn_id, committed=committed,
                during_recovery=True,
            )
            if committed:
                reserved.setdefault(body.origin, set()).add(body.seq_no)
                waiters.append(
                    self.sim.spawn(
                        self._apply_committed_decide(body),
                        name=f"n{self.node_id}:recover-apply-{txn_id}",
                    )
                )
            else:
                self._abort_prepared(txn_id, entry)

        # Anti-entropy: learn the commit frontier we slept through.  The
        # SYNC fan-out is the healing layer's digest machinery -- recovery
        # is one invocation of the same code the background gossip runs.
        targets, peer_frontiers = yield from self.healing.collect_frontiers()
        if self._incarnation != incarnation:
            return
        if self.curr_seq_no > targets[self.node_id]:
            targets[self.node_id] = self.curr_seq_no
        if len(targets) > len(self.site_vc.entries):
            # A peer's reply was wider than our clock (origins joined
            # while we were down); widen before the per-origin catch-up.
            self.site_vc.widen(len(targets))
        for origin, target in enumerate(targets):
            if target > self.site_vc[origin]:
                waiters.append(
                    self.sim.spawn(
                        self._catch_up_origin(
                            origin, target, reserved.get(origin, frozenset())
                        ),
                        name=f"n{self.node_id}:catchup-{origin}",
                    )
                )
        if waiters:
            yield AllOf(self.sim, waiters)
        if self._incarnation != incarnation:
            return

        # Step 4: re-announce our own origin.  Duplicates are harmless
        # (the apply path skips sequence numbers at or below the clock),
        # and peers cannot have advanced past us on our own origin while
        # the recovering fence blocked new commits here.
        own_frontier = self.site_vc[self.node_id]
        by_seq = {
            decision.seq_no: (txn_id, decision.commit_vc)
            for txn_id, decision in result.decisions.items()
        }
        for peer, frontier in sorted(peer_frontiers.items()):
            for seq_no in range(frontier + 1, own_frontier + 1):
                if seq_no not in by_seq:
                    continue
                txn_id, commit_vc = by_seq[seq_no]
                self.node.send(
                    peer,
                    MessageType.DECIDE,
                    DecideBody(
                        txn_id=txn_id,
                        outcome=True,
                        origin=self.node_id,
                        seq_no=seq_no,
                        commit_vc=commit_vc,
                    ),
                )

        self.recoveries += 1
        self.metrics.on_recovery(
            replayed=result.replayed, in_doubt=len(result.in_doubt)
        )
        self._recovering = False
        self._recovered_cv.notify_all()
        self.tracer.emit(
            self.node_id, "recover", replayed=result.replayed,
            in_doubt=len(result.in_doubt),
        )

    def _catch_up_origin(self, origin: int, target: int, reserved):
        """Advance ``siteVC[origin]`` to ``target`` (lost Propagates).

        Sequence numbers in ``reserved`` belong to recovery's in-doubt
        commit appliers; this process waits for the applier to make that
        transition instead of stealing it (the applier must install the
        writes under the same clock tick).  Regular Propagate handlers
        may race us harmlessly -- both sides re-check the clock before
        each advance.
        """
        site_vc = self.site_vc
        incarnation = self._incarnation
        advanced = 0
        while site_vc[origin] < target:
            seq_no = site_vc[origin] + 1
            if seq_no in reserved:
                yield from wait_until(
                    self.site_vc_changed,
                    lambda bound=seq_no: site_vc[origin] >= bound,
                )
                if self._incarnation != incarnation:
                    return
                continue
            if self.wal is not None:
                self.wal.append(PropagateRecord(origin, seq_no))
            site_vc[origin] = seq_no
            advanced += 1
            self.site_vc_changed.notify_all()
        if advanced:
            self.metrics.on_catchup(advanced)
            self.tracer.emit(
                self.node_id, "catchup", origin=origin, advanced=advanced,
                target=target,
            )
