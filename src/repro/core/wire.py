"""Wire formats for protocol messages.

Bodies carry plain tuples/dicts (snapshots), never live coordinator
objects, so a storage node cannot mutate a remote transaction's state --
the same discipline a real message-passing deployment enforces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Hashable, Optional, Tuple


@dataclass(slots=True)
class ReadRequestBody:
    """Coordinator -> storage node, one key (FW-KV and Walter)."""

    txn_id: int
    is_read_only: bool
    key: Hashable
    vc: Tuple[int, ...]
    has_read: Tuple[bool, ...]
    #: Read-forwarding (docs/replication.md): a read routed to a backup
    #: is *frozen* -- served Walter-style against the carried snapshot
    #: (``max_vc=None``, so the requester's clock never advances) and
    #: only when the backup's replicated frontier dominates ``vc``;
    #: otherwise the backup forwards it to the primary.
    frozen: bool = False


@dataclass(slots=True)
class ReadReturnBody:
    """Storage node -> coordinator reply."""

    value: object
    #: Visibility bound to merge into ``T.VC`` (Alg. 2 line 9); ``None``
    #: for Walter, whose snapshot never advances after begin.
    max_vc: Optional[Tuple[int, ...]]
    vid: int
    #: Newest vid at the serving node when the read executed; powers the
    #: freshness metric and the history checker.
    latest_vid: int


@dataclass(slots=True)
class PrepareBody:
    """2PC phase one: the writes this participant must lock and validate."""

    txn_id: int
    coordinator: int
    writes: Dict[Hashable, object]
    vc: Tuple[int, ...]
    #: For written keys the transaction also *read*: the vid it observed.
    #: Validation requires the key's latest version to still be exactly
    #: that vid (first-committer-wins against the snapshot actually used).
    #: The paper's clock-only rule (Alg. 5 line 29) admits a lost update
    #: when ``T.VC`` has outrun the per-key read snapshot; see
    #: MVCCNode._validate.
    read_vids: Dict[Hashable, int] = field(default_factory=dict)
    #: Prepare round within one commit attempt.  A coordinator whose
    #: prepare straddled a membership handoff ("moved" vote) aborts the
    #: round and re-prepares against the refreshed directory under
    #: ``round + 1``; participants use the round to supersede a stale
    #: prepared entry and to ignore a stale round's abort.
    round: int = 0


@dataclass(slots=True)
class VoteBody:
    """2PC phase one reply."""

    ok: bool
    #: FW-KV only: read-only transaction ids harvested from the VAS of the
    #: versions about to be overwritten (Alg. 5 lines 8-10).
    collected: FrozenSet[int] = frozenset()
    reason: Optional[str] = None


@dataclass(slots=True)
class DecideBody:
    """2PC phase two (one-way)."""

    txn_id: int
    outcome: bool
    origin: int
    seq_no: Optional[int]
    commit_vc: Optional[Tuple[int, ...]]
    #: FW-KV only: merged anti-dependency set to propagate into the new
    #: versions (Alg. 5 line 19).
    collected: FrozenSet[int] = frozenset()
    #: Matches :attr:`PrepareBody.round`; an abort decide only cancels the
    #: prepared entry of the *same* round (a moved-retry's abort must not
    #: cancel the successor round's prepare).
    round: int = 0


@dataclass(slots=True)
class PropagateBody:
    """Asynchronous commit propagation to uninvolved nodes (Alg. 6).

    With :class:`~repro.config.BatchingConfig` windows enabled the origin
    coalesces a commit window into one message per destination:
    ``seq_nos`` lists every sequence number in the window, in commit
    order.  The handler applies them one by one with the same in-order
    wait as the unbatched path -- a plain ``max`` would deadlock the
    destination on windows with gaps (sequence numbers it participated in
    via Decide but has not applied yet).  ``seq_nos is None`` is the
    unbatched wire format carrying the single ``seq_no``.
    """

    origin: int
    seq_no: int
    seq_nos: Optional[Tuple[int, ...]] = None


@dataclass(slots=True)
class RemoveBody:
    """FW-KV read-only cleanup (Alg. 6 lines 5-10).

    The paper sends one Remove per read key; since the handler erases a
    transaction id from *every* VAS at the node anyway, identifiers are
    batched per destination node and flushed on a short timer -- identical
    semantics (cleanup delayed by at most the flush interval), far fewer
    messages.
    """

    txn_ids: Tuple[int, ...]


@dataclass(slots=True)
class TxnStatusRequestBody:
    """In-doubt termination query: participant -> coordinator.

    Sent when a prepared-lock lease expires with the termination
    protocol enabled, and during crash recovery for every in-doubt
    prepare restored from the WAL.
    """

    txn_id: int


@dataclass(slots=True)
class TxnStatusReplyBody:
    """Coordinator's definitive answer to a status query.

    ``committed=False`` covers both a logged abort decision and a
    transaction the coordinator has never decided: decisions are logged
    (durably, when the WAL is on) *before* any Decide leaves the
    coordinator, so "no commit decision on record" proves no participant
    can have installed the transaction -- presumed abort is safe.
    """

    txn_id: int
    committed: bool
    origin: int
    seq_no: Optional[int] = None
    commit_vc: Optional[Tuple[int, ...]] = None
    collected: FrozenSet[int] = frozenset()


@dataclass(slots=True)
class SyncRequestBody:
    """Anti-entropy digest: a recovering node's catch-up request, or one
    side of the periodic background gossip exchange.

    ``site_vc`` (gossip only) is the requester's own applied frontier; the
    handler records ``site_vc[handler]`` as the requester's durable
    knowledge of the handler's origin, the evidence WAL truncation waits
    on.  Recovery-time requests omit it -- a half-rebuilt clock is not
    evidence of anything.
    """

    requester: int
    site_vc: Optional[Tuple[int, ...]] = None


@dataclass(slots=True)
class SyncReplyBody:
    """A peer's current ``siteVC``: the per-origin commit frontier it has
    applied.  The recovering node advances toward the element-wise max
    over all replies -- every sequence number at or below a peer's entry
    either had the recoverer as a 2PC participant (restored from its own
    WAL and terminated explicitly) or carried no data for it (clock-only
    Propagate), so the advance is always safe.
    """

    site_vc: Tuple[int, ...]


@dataclass(slots=True)
class SnapshotOfferBody:
    """Snapshot transfer, phase one: sender -> receiver RPC.

    Announces the sender's newest checkpoint -- its clock, fingerprint,
    and how many ``SNAPSHOT_CHUNK`` messages will follow -- so the
    receiver can decide acceptance *before* any bulk data moves.  The
    receiver accepts only when the checkpoint's ``site_vc`` dominates
    its own clock (installing must never regress an origin; a peer with
    local progress the checkpoint has not absorbed rejects and waits
    for a later, fresher offer) and raises its read/prepare fence for
    the duration of the transfer.
    """

    sender: int
    #: The checkpoint's captured clock; becomes the receiver's clock.
    site_vc: Tuple[int, ...]
    #: The sender's own coordinator counter at checkpoint time (carried
    #: for tracing; the receiver never adopts another node's counter).
    curr_seq_no: int
    #: sha256 digest verified by the receiver after reassembly.
    fingerprint: str
    total_chunks: int
    #: Per-sender transfer identifier; chunks must match it.
    snapshot_id: int
    #: Shard-scoped transfer (membership handoff): the receiver adopts
    #: every carried chain verbatim and merges -- rather than replaces --
    #: its clock and store.  Full-checkpoint offers leave this false.
    shard: bool = False


@dataclass(slots=True)
class SnapshotChunkBody:
    """One bounded slice of the checkpoint's store chains (RPC).

    Chunks carry ``chunk_records`` chains each (see
    :class:`~repro.config.SnapshotTransferConfig`) and must arrive in
    index order -- the receiver rejects gaps, aborting the transfer, and
    the sender simply re-offers on its next gossip round.
    """

    snapshot_id: int
    index: int
    total: int
    #: Slice of ``CheckpointRecord.chains``.
    chains: Tuple[object, ...]


@dataclass(slots=True)
class SnapshotAckBody:
    """Receiver's verdict on an offer or chunk.

    As an RPC reply: ``accepted`` answers the offer/chunk itself and
    ``installed`` turns true on the final chunk's reply once the
    fingerprint verified and the snapshot was adopted.  The receiver
    additionally sends one *one-way* ``SNAPSHOT_ACK`` message after a
    successful install: the sender's handler harvests it as frontier
    evidence (the receiver now provably holds the sender's origin up to
    the checkpoint clock) even if the chunk reply itself is lost.
    """

    snapshot_id: int
    accepted: bool
    installed: bool = False
    #: Receiver's post-install clock (one-way ack only).
    site_vc: Optional[Tuple[int, ...]] = None
    reason: Optional[str] = None


@dataclass(slots=True)
class ReplicationEntry:
    """One record on a primary -> backup replication stream.

    Streams are per-(primary, backup) FIFOs with dense sequence numbers;
    the backup applies records strictly in ``seq`` order and
    acknowledges cumulatively, so an unacknowledged suffix simply
    retransmits after a partition or backup restart.  ``kind`` selects
    the payload:

    * ``"prepare"`` -- stage ``writes`` of an in-flight 2PC participant
      (``txn_id``, ``coordinator``, ``round``); promotion resolves
      staged entries through the coordinator's decision log.
    * ``"abort"`` -- drop the staged entry for ``txn_id``.
    * ``"decision"`` -- the primary, as coordinator, committed
      ``txn_id`` at (``origin``, ``seq_no``) with ``commit_vc``; backs
      the promoted node's TXN_STATUS answers and decision re-announce.
    * ``"apply"`` -- the primary installed ``writes`` at (``origin``,
      ``seq_no``); the backup installs them verbatim, in stream order,
      never touching its own clock.
    * ``"frontier"`` -- clock-only freshness update (coalesced).

    ``frontier`` (apply/frontier records) is the primary's ``siteVC``
    snapshot after the install; a backup may serve a frozen read only
    for snapshots its newest frontier dominates.
    """

    seq: int
    kind: str
    txn_id: Optional[int] = None
    coordinator: Optional[int] = None
    origin: Optional[int] = None
    seq_no: Optional[int] = None
    commit_vc: Optional[Tuple[int, ...]] = None
    writes: Tuple = ()
    collected: FrozenSet[int] = frozenset()
    frontier: Optional[Tuple[int, ...]] = None
    round: int = 0


@dataclass(slots=True)
class ReplicateBody:
    """Primary -> backup stream batch (RPC request)."""

    primary: int
    entries: Tuple[ReplicationEntry, ...]


@dataclass(slots=True)
class ReplicateAckBody:
    """Backup's cumulative acknowledgment: every stream record at or
    below ``applied`` has been applied (prefix semantics).  ``-1``
    refuses the batch outright -- the stream was closed by a failover
    (the sender was deposed) and the deposed primary must stop pumping.
    """

    applied: int


@dataclass(slots=True)
class ViewProposeBody:
    """Membership view change, phase one: coordinator -> every member.

    Carries the complete proposed view (not a delta) so acceptance is a
    pure epoch comparison and a re-sent propose is idempotent.
    """

    epoch: int
    #: (node_id, state) pairs -- the full proposed membership view.
    members: Tuple[Tuple[int, str], ...]
    #: (site, final_seq) pairs for decommissioned sites: the frontier the
    #: clock-shrink rule waits on (see docs/membership.md).
    retired: Tuple[Tuple[int, int], ...]
    proposer: int


@dataclass(slots=True)
class ViewAckBody:
    """A member's epoch-gated verdict on a proposed view.

    ``ok`` is false when the member has already committed an epoch at or
    past the proposal's -- the proposer must re-read the current view and
    retry from there.
    """

    epoch: int
    member: int
    ok: bool
    #: The acker's committed epoch, for proposer diagnostics on reject.
    current_epoch: int = -1


@dataclass(slots=True)
class ViewCommitBody:
    """Phase two: apply the view (one-way fan-out, idempotent).

    A member applies the commit iff ``epoch`` is newer than its committed
    epoch; stale or duplicate commits are ignored, so the coordinator and
    the anti-entropy layer may both (re-)send it freely.
    """

    epoch: int
    members: Tuple[Tuple[int, str], ...]
    retired: Tuple[Tuple[int, int], ...]


@dataclass(slots=True)
class HeartbeatBody:
    """Failure-detector beacon (one-way, background channel).

    Carries the sender's ``siteVC`` so receivers harvest per-peer frontier
    evidence (for WAL truncation) from liveness traffic for free.
    """

    site_vc: Tuple[int, ...]


# ----------------------------------------------------------------------
# 2PC-baseline wire formats (single-version store)
# ----------------------------------------------------------------------


@dataclass(slots=True)
class SimpleReadRequestBody:
    txn_id: int
    key: Hashable


@dataclass(slots=True)
class SimpleReadReturnBody:
    value: object
    version: int


@dataclass(slots=True)
class SimplePrepareBody:
    """Read validation plus write intent for one participant."""

    txn_id: int
    #: key -> version the transaction read; participant re-checks equality.
    reads: Dict[Hashable, int]
    writes: Dict[Hashable, object]


@dataclass(slots=True)
class SimpleVoteBody:
    ok: bool
    #: Version each written key will receive if the commit decides yes
    #: (stable while the write lock is held); used for history recording.
    install_versions: Dict[Hashable, int] = field(default_factory=dict)
    reason: Optional[str] = None


@dataclass(slots=True)
class SimpleDecideBody:
    txn_id: int
    outcome: bool
