"""Walter (SOSP '11): the reference PSI concurrency control."""

from repro.core.walter.node import WalterNode
from repro.core.walter.visibility import select_walter_version

__all__ = ["WalterNode", "select_walter_version"]
