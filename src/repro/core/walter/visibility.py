"""Walter's version-selection rule, as a pure function."""

from __future__ import annotations

from typing import AbstractSet, Sequence, Tuple

from repro.storage.chain import VersionChain
from repro.storage.version import Version

_NO_DROPPED: AbstractSet[int] = frozenset()


def select_walter_version(
    chain: VersionChain,
    txn_vc: Sequence[int],
    dropped: AbstractSet[int] = _NO_DROPPED,
) -> Tuple[Version, int]:
    """The freshest version within the begin-time snapshot.

    Walter stamps each version with ``<origin site, seqno>``; a version is
    visible to a transaction whose start vector is ``txn_vc`` iff
    ``txn_vc[origin] >= seqno``.  The snapshot never advances during the
    transaction, so reads "can return arbitrarily old values" when the
    asynchronous propagation lags (paper Sections 1 and 3.1).

    ``dropped`` holds retired origins whose clock entry a membership
    shrink truncated; the shrink gate proved their full final frontier
    is applied at every member, so their versions are always visible
    (a start vector minted after the shrink has no entry to compare).
    """
    for version in chain.newest_first():
        if version.origin in dropped:
            return version, 0
        if version.origin < len(txn_vc) and version.seq <= txn_vc[version.origin]:
            return version, 0
    raise RuntimeError(
        f"no visible version of {chain.key!r}; the initial version "
        "(seq 0) should always be visible"
    )
