"""The Walter protocol node: PSI with a begin-time frozen snapshot."""

from __future__ import annotations

from typing import Optional, Tuple

from repro.core.mvcc_node import MVCCNode
from repro.core.walter.visibility import select_walter_version
from repro.core.wire import ReadRequestBody
from repro.storage.version import Version


class WalterNode(MVCCNode):
    """The state-of-the-art PSI baseline FW-KV improves upon.

    Everything is inherited from :class:`~repro.core.mvcc_node.MVCCNode`;
    the overrides pin down Walter's simpler behaviour:

    * reads are served lock-free against the begin-time snapshot and never
      advance ``T.VC`` (``maxVC`` is ``None``);
    * no version-access-sets, so prepare collects nothing, decide
      propagates nothing, and read-only commits send no Remove messages;
    * consequently, a non-local update transaction whose snapshot lags the
      preferred site's latest version fails validation and aborts until
      the asynchronous Propagate arrives -- the behaviour the delayed-
      propagation experiments (Figures 7 and 9a) measure.
    """

    protocol_name = "walter"

    def _read_needs_lock(self, request: ReadRequestBody) -> bool:
        return False

    def _select_version(self, request: ReadRequestBody) -> Tuple[Version, int]:
        return select_walter_version(
            self.store.chain(request.key),
            request.vc,
            self.membership.dropped,
        )

    def _freshness_bound(
        self, request: ReadRequestBody, version: Version
    ) -> Optional[Tuple[int, ...]]:
        return None
