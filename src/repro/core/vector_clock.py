"""Vector clocks (Mattern-style logical time) for PSI concurrency control."""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence, Tuple


class VectorClock:
    """A fixed-size vector of per-site logical timestamps.

    Entry ``j`` of a node's clock is "the last transaction from node ``N_j``
    that was committed at this site" (paper Section 4.1).  Transaction and
    version clocks are snapshots of node clocks, so they share this type.
    """

    __slots__ = ("_entries",)

    def __init__(self, entries: Iterable[int]) -> None:
        self._entries: List[int] = list(entries)

    @classmethod
    def zeros(cls, size: int) -> "VectorClock":
        if size <= 0:
            raise ValueError("vector clock size must be positive")
        return cls([0] * size)

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __getitem__(self, index: int) -> int:
        return self._entries[index]

    def __setitem__(self, index: int, value: int) -> None:
        self._entries[index] = value

    def __iter__(self) -> Iterator[int]:
        return iter(self._entries)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, VectorClock):
            return self._entries == other._entries
        return NotImplemented

    def __hash__(self) -> int:
        return hash(tuple(self._entries))

    def __repr__(self) -> str:
        return f"VC<{','.join(str(e) for e in self._entries)}>"

    # ------------------------------------------------------------------
    # Clock algebra
    # ------------------------------------------------------------------
    def copy(self) -> "VectorClock":
        return VectorClock(self._entries)

    def merge(self, other: "VectorClock") -> None:
        """Entry-wise maximum, in place (Alg. 2 line 9)."""
        self._check_size(other)
        self._entries = [max(a, b) for a, b in zip(self._entries, other._entries)]

    def merged(self, other: "VectorClock") -> "VectorClock":
        """Entry-wise maximum, as a new clock."""
        result = self.copy()
        result.merge(other)
        return result

    def leq(self, other: "VectorClock") -> bool:
        """True when every entry is <= the corresponding entry of ``other``."""
        self._check_size(other)
        return all(a <= b for a, b in zip(self._entries, other._entries))

    def dominates(self, other: "VectorClock") -> bool:
        """True when every entry is >= the corresponding entry of ``other``."""
        return other.leq(self)

    def leq_on(self, other: "VectorClock", positions: Sequence[bool]) -> bool:
        """``leq`` restricted to positions where ``positions`` is true.

        This is the FW-KV visibility test (Alg. 3 line 4): a version clock
        must not exceed the transaction clock at any *already-read* site.
        """
        self._check_size(other)
        return all(
            a <= b
            for a, b, active in zip(self._entries, other._entries, positions)
            if active
        )

    def to_tuple(self) -> Tuple[int, ...]:
        return tuple(self._entries)

    def _check_size(self, other: "VectorClock") -> None:
        if len(other._entries) != len(self._entries):
            raise ValueError(
                f"vector clock size mismatch: {len(self._entries)} vs "
                f"{len(other._entries)}"
            )
