"""Vector clocks (Mattern-style logical time) for PSI concurrency control."""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple


class VectorClock:
    """A dynamically widenable vector of per-site logical timestamps.

    Entry ``j`` of a node's clock is "the last transaction from node ``N_j``
    that was committed at this site" (paper Section 4.1).  Transaction and
    version clocks are snapshots of node clocks, so they share this type.

    Widths may differ while a membership change is in flight: a clock
    stamped before a join is one entry short of a clock stamped after it.
    All algebra therefore treats a missing entry as zero -- merging a wider
    clock widens this one in place, and comparisons score absent positions
    as 0 on either side -- so old-width clocks in messages still being
    delivered remain valid forever.  Shrinking (decommission) is the
    membership layer's job: it truncates only trailing retired sites and
    only once their final frontier is dominated everywhere, which keeps the
    zero-default rule sound (see ``docs/membership.md``).

    Clock algebra runs on every message a node serves, so the methods below
    are written for the CPython fast path: plain index loops with early
    exits, no intermediate list allocations, and direct ``_entries`` access
    instead of the container protocol.  The equal-width case -- all traffic
    outside a reconfiguration window -- never pays for the width checks
    beyond one ``len`` comparison.  Hot callers may read :attr:`entries` to
    bind the underlying list locally; they must never mutate it.
    """

    __slots__ = ("_entries", "_tuple")

    def __init__(self, entries: Iterable[int]) -> None:
        self._entries: List[int] = list(entries)
        # Cached to_tuple() result; every mutator resets it to None.  Wire
        # envelopes serialize the same committed version clock once per
        # reader, so the cache collapses repeated tuple() materializations
        # of clocks that are stamped once and never change again.
        self._tuple: Optional[Tuple[int, ...]] = None

    @classmethod
    def zeros(cls, size: int) -> "VectorClock":
        if size <= 0:
            raise ValueError("vector clock size must be positive")
        vc = cls.__new__(cls)
        vc._entries = [0] * size
        vc._tuple = None
        return vc

    @classmethod
    def zero(cls, size: int) -> "VectorClock":
        """The interned all-zero clock of ``size`` entries.

        Initial-data loads stamp every seeded version with the zero clock;
        interning one immutable instance per size turns millions of list
        allocations into dictionary hits.  The returned clock rejects
        mutation -- callers that need a private zero clock must use
        :meth:`zeros` (or :meth:`copy` the interned one).
        """
        clock = _ZERO_CACHE.get(size)
        if clock is None:
            if size <= 0:
                raise ValueError("vector clock size must be positive")
            clock = _ImmutableVectorClock.__new__(_ImmutableVectorClock)
            clock._entries = [0] * size
            clock._tuple = None
            _ZERO_CACHE[size] = clock
        return clock

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __getitem__(self, index: int) -> int:
        return self._entries[index]

    def __setitem__(self, index: int, value: int) -> None:
        self._entries[index] = value
        self._tuple = None

    def __iter__(self) -> Iterator[int]:
        return iter(self._entries)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, VectorClock):
            return self._entries == other._entries
        return NotImplemented

    def __hash__(self) -> int:
        return hash(tuple(self._entries))

    def __repr__(self) -> str:
        return f"VC<{','.join(str(e) for e in self._entries)}>"

    @property
    def entries(self) -> Sequence[int]:
        """The underlying entry list, for read-only hot-path iteration."""
        return self._entries

    # ------------------------------------------------------------------
    # Clock algebra
    # ------------------------------------------------------------------
    def copy(self) -> "VectorClock":
        vc = VectorClock.__new__(VectorClock)
        vc._entries = self._entries.copy()
        vc._tuple = self._tuple
        return vc

    def merge(self, other: "VectorClock") -> None:
        """Entry-wise maximum, in place (Alg. 2 line 9).

        Allocation-free in the equal-width case: the loop is a fused
        dominance check -- entries we already dominate are skipped without
        a write, and merging a clock we fully dominate (the common case
        once a snapshot has caught up) touches nothing.  A wider ``other``
        widens this clock first (unknown sites start at zero); a narrower
        one leaves the extra local entries untouched.
        """
        mine = self._entries
        theirs = other._entries
        if theirs is mine:
            return
        self._tuple = None
        if len(theirs) > len(mine):
            mine.extend([0] * (len(theirs) - len(mine)))
        index = 0
        for value in theirs:
            if value > mine[index]:
                mine[index] = value
            index += 1

    def merge_seq(self, values: Sequence[int]) -> None:
        """:meth:`merge` against a raw entry sequence (no wrapper clock).

        Wire messages carry clocks as plain tuples; merging them directly
        saves one :class:`VectorClock` allocation per message.
        """
        mine = self._entries
        self._tuple = None
        if len(values) > len(mine):
            mine.extend([0] * (len(values) - len(mine)))
        index = 0
        for value in values:
            if value > mine[index]:
                mine[index] = value
            index += 1

    def merged(self, other: "VectorClock") -> "VectorClock":
        """Entry-wise maximum, as a new clock."""
        result = self.copy()
        result.merge(other)
        return result

    def merged_tuple(self, other: "VectorClock") -> Tuple[int, ...]:
        """``self.merged(other).to_tuple()`` without the throwaway clock.

        The FW-KV fresh-contact freshness bound materializes exactly this
        -- a merged snapshot that goes straight onto the wire -- so fusing
        the merge and the tuple() skips one list copy and one
        :class:`VectorClock` allocation per fresh read.
        """
        mine = self._entries
        theirs = other._entries
        if theirs is mine:
            return self.to_tuple()
        if len(mine) < len(theirs):
            mine, theirs = theirs, mine
        result = list(mine)
        index = 0
        for value in theirs:
            if value > result[index]:
                result[index] = value
            index += 1
        return tuple(result)

    def leq(self, other: "VectorClock") -> bool:
        """True when every entry is <= the corresponding entry of ``other``.

        Positions absent from the shorter clock count as zero, so a clock
        stamped before a join is <= any clock that has seen the new site.
        """
        mine = self._entries
        theirs = other._entries
        for a, b in zip(mine, theirs):
            if a > b:
                return False
        if len(mine) > len(theirs):
            for a in mine[len(theirs):]:
                if a > 0:
                    return False
        return True

    def dominates(self, other: "VectorClock") -> bool:
        """True when every entry is >= the corresponding entry of ``other``."""
        return other.leq(self)

    def leq_on(self, other: "VectorClock", positions: Sequence[bool]) -> bool:
        """``leq`` restricted to positions where ``positions`` is true.

        This is the FW-KV visibility test (Alg. 3 line 4): a version clock
        must not exceed the transaction clock at any *already-read* site.
        No-copy: iterates the raw entries with an early exit on the first
        violated position.  Positions beyond the shorter clock score its
        missing entries as zero.
        """
        mine = self._entries
        theirs = other._entries
        for a, b, active in zip(mine, theirs, positions):
            if active and a > b:
                return False
        n_theirs = len(theirs)
        if len(mine) > n_theirs:
            limit = min(len(mine), len(positions))
            for index in range(n_theirs, limit):
                if positions[index] and mine[index] > 0:
                    return False
        return True

    def widen(self, size: int) -> None:
        """Grow to at least ``size`` entries in place (new sites at zero)."""
        mine = self._entries
        if size > len(mine):
            mine.extend([0] * (size - len(mine)))
            self._tuple = None

    def shrink(self, size: int) -> None:
        """Truncate to the first ``size`` entries in place.

        The in-place form exists because a node's ``siteVC`` identity must
        never change -- blocked handlers hold references to it -- so the
        membership layer shrinks the live clock rather than swapping it.
        Soundness preconditions match :meth:`shrunk`.
        """
        mine = self._entries
        if size < len(mine):
            del mine[size:]
            self._tuple = None

    def shrunk(self, size: int) -> "VectorClock":
        """A copy truncated to the first ``size`` entries.

        Only sound once every dropped trailing site is retired and its
        final frontier is dominated everywhere; the membership layer
        enforces that before shrinking (see ``docs/membership.md``).
        """
        vc = VectorClock.__new__(VectorClock)
        vc._entries = self._entries[:size]
        vc._tuple = None
        return vc

    def to_tuple(self) -> Tuple[int, ...]:
        cached = self._tuple
        if cached is None:
            cached = self._tuple = tuple(self._entries)
        return cached


class _ImmutableVectorClock(VectorClock):
    """An interned clock that refuses in-place mutation (see ``zero``)."""

    __slots__ = ()

    def __setitem__(self, index: int, value: int) -> None:
        raise TypeError(
            "interned zero clock is immutable; use VectorClock.zeros() or "
            "copy() for a private instance"
        )

    def merge(self, other: "VectorClock") -> None:
        raise TypeError(
            "interned zero clock is immutable; use VectorClock.zeros() or "
            "copy() for a private instance"
        )

    def merge_seq(self, values: Sequence[int]) -> None:
        raise TypeError(
            "interned zero clock is immutable; use VectorClock.zeros() or "
            "copy() for a private instance"
        )

    def widen(self, size: int) -> None:
        raise TypeError(
            "interned zero clock is immutable; use VectorClock.zeros() or "
            "copy() for a private instance"
        )

    def shrink(self, size: int) -> None:
        raise TypeError(
            "interned zero clock is immutable; use VectorClock.zeros() or "
            "copy() for a private instance"
        )


_ZERO_CACHE: Dict[int, VectorClock] = {}
