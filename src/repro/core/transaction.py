"""Transaction descriptors and their lifecycle metadata."""

from __future__ import annotations

import enum
from typing import Dict, Hashable, List, Optional, Set, Tuple

from repro.core.vector_clock import VectorClock


class TransactionStatus(enum.Enum):
    ACTIVE = "active"
    COMMITTED = "committed"
    ABORTED = "aborted"


class Transaction:
    """Coordinator-side state of one transaction attempt.

    Fields mirror the paper's metadata (Section 4.1): ``vc`` is ``T.VC``
    (the visibility bound), ``has_read`` is ``T.hasRead`` (per-site frozen
    flags, FW-KV only), ``writeset`` the lazy-update buffer, ``read_keys``
    the keys a read-only transaction must send ``Remove`` for, and
    ``collected_set`` the anti-dependency identifiers gathered during 2PC.

    A retried transaction is a *new* ``Transaction`` with a fresh id; the
    client loop owns retry accounting.
    """

    __slots__ = (
        "txn_id",
        "node_id",
        "is_read_only",
        "vc",
        "has_read",
        "writeset",
        "read_keys",
        "collected_set",
        "seq_no",
        "commit_vc",
        "status",
        "start_time",
        "end_time",
        "profile",
        "ops",
        "read_cache",
        "read_versions",
        "_has_read_tuple",
    )

    def __init__(
        self,
        txn_id: int,
        node_id: int,
        num_sites: int,
        is_read_only: bool,
        start_time: float = 0.0,
        profile: Optional[str] = None,
    ) -> None:
        self.txn_id = txn_id
        self.node_id = node_id
        self.is_read_only = is_read_only
        # Interned: every MVCC protocol replaces this with a snapshot copy
        # in its begin hook, and the interned instance rejects mutation.
        self.vc = VectorClock.zero(num_sites)
        self.has_read: List[bool] = [False] * num_sites
        # Cached tuple(has_read) for wire envelopes; invalidated by
        # note_read_site.  Reads between site contacts reuse one tuple.
        self._has_read_tuple: Optional[Tuple[bool, ...]] = None
        self.writeset: Dict[Hashable, object] = {}
        self.read_keys: Set[Hashable] = set()
        self.collected_set: Set[int] = set()
        self.seq_no: Optional[int] = None
        self.commit_vc: Optional[VectorClock] = None
        self.status = TransactionStatus.ACTIVE
        self.start_time = start_time
        self.end_time: Optional[float] = None
        self.profile = profile
        #: (kind, key, vid, latest_vid) tuples for history recording.
        self.ops: List[tuple] = []
        #: Coordinator-side cache so a re-read of the same key returns the
        #: version already observed (keeps the snapshot stable without a
        #: second visible-read registration).
        self.read_cache: Dict[Hashable, object] = {}
        #: key -> version observed by this transaction's reads: the scalar
        #: record version under the 2PC baseline, the vid under the MVCC
        #: protocols.  Commit validation compares it against the current
        #: latest (first-committer-wins).
        self.read_versions: Dict[Hashable, int] = {}

    @property
    def is_update(self) -> bool:
        return not self.is_read_only

    @property
    def first_read_done(self) -> bool:
        """True once any site has been read (``T.hasRead`` has a true bit)."""
        return any(self.has_read)

    def note_read_site(self, site: int) -> bool:
        """Set ``has_read[site]``; returns True on the first contact.

        Grows the flag list on demand: a transaction begun before a view
        change can be routed to a site past the static width it was born
        with (elastic membership).
        """
        has_read = self.has_read
        if site >= len(has_read):
            has_read.extend([False] * (site + 1 - len(has_read)))
        first = not has_read[site]
        if first:
            has_read[site] = True
            self._has_read_tuple = None
        return first

    def has_read_tuple(self) -> Tuple[bool, ...]:
        """``tuple(has_read)``, cached between site contacts."""
        cached = self._has_read_tuple
        if cached is None:
            cached = self._has_read_tuple = tuple(self.has_read)
        return cached

    def buffered_write(self, key: Hashable):
        """The value this transaction wrote for ``key``, if any.

        Returns a ``(found, value)`` pair so ``None`` values are writable.
        """
        if key in self.writeset:
            return True, self.writeset[key]
        return False, None

    def mark_committed(self, now: float) -> None:
        self.status = TransactionStatus.COMMITTED
        self.end_time = now

    def mark_aborted(self, now: float) -> None:
        self.status = TransactionStatus.ABORTED
        self.end_time = now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "ro" if self.is_read_only else "up"
        return f"<Txn {self.txn_id} {kind}@{self.node_id} {self.status.value}>"
