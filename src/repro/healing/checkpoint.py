"""WAL checkpointing and distributed-evidence truncation.

A checkpoint is a :class:`~repro.storage.wal.CheckpointRecord` -- a
fingerprinted snapshot of the node's durable state -- appended to the WAL
so replay resets to it and only consumes the suffix.  Locally that makes
truncating everything below the newest checkpoint state-preserving by
construction; *distributed* safety needs one more condition:

    every peer has applied this node's own commit frontier as of the
    checkpoint.

Until then a peer (or this node recovering on a truncated log) might
still need a below-checkpoint DecisionRecord re-announced: a Decide or
Propagate lost to a fault is repaired from the decision log, and the
decision log below the checkpoint survives only inside the snapshot.
The evidence is the per-peer frontier map the healing daemon harvests
from heartbeats and anti-entropy digests; once the floor of that map
reaches the checkpoint's own-origin frontier, no peer can ever again ask
about anything below it (a TxnStatus query is only sent by a node still
holding the prepare, and applying the sequence number resolves the
prepare first), so the same evidence also lets the in-memory decision
log be pruned -- precise GC for both the log and the table.
"""

from __future__ import annotations

from typing import Optional

from repro.storage.wal import (
    CheckpointRecord,
    DecisionRecord,
    PrepareRecord,
    build_checkpoint,
)


class CheckpointManager:
    """Checkpoint/truncation policy for one node's WAL."""

    def __init__(self, owner, healing) -> None:
        self.owner = owner
        self.healing = healing
        self.config = healing.config.checkpoint
        #: Cumulative WAL append count as of the previous checkpoint
        #: (survives truncation, which only shifts the record list).
        self._last_logical = 0
        #: Own-origin frontier captured by the newest checkpoint; the
        #: truncation evidence must reach it.  ``None`` = nothing pending.
        self._stable_required: Optional[int] = None
        #: Checkpoints taken at this node (test probe).
        self.taken = 0
        #: Own-origin sequence numbers at or below this were pruned from
        #: the in-memory decision log (and the WAL below the matching
        #: checkpoint truncated).  A peer whose frontier sits below it
        #: can no longer be repaired record by record -- the trigger for
        #: snapshot transfer (see NodeHealing).
        self.pruned_floor = 0
        #: The newest CheckpointRecord this node holds (taken here, or
        #: recovered from the WAL); the payload a snapshot offer ships.
        self._latest: Optional[CheckpointRecord] = None

    def _logical_length(self) -> int:
        """Records ever appended (list length plus truncated prefix)."""
        wal = self.owner.wal
        return len(wal) + wal.truncated

    # ------------------------------------------------------------------
    # Taking checkpoints
    # ------------------------------------------------------------------
    def maybe_checkpoint(self) -> bool:
        """Take a checkpoint if enough records accumulated; True if taken."""
        owner = self.owner
        if owner.wal is None or owner.wal.frozen or owner._recovering:
            return False
        if self._logical_length() - self._last_logical < self.config.min_records:
            return False
        return self.checkpoint_now() is not None

    def checkpoint_now(self) -> Optional[CheckpointRecord]:
        """Snapshot the node's durable state into the WAL immediately.

        Returns ``None`` (and takes nothing) while any Decide applier is
        between installing its versions and logging its ApplyRecord
        (``owner._applying``): in that window the live store holds
        versions the log does not yet explain, so a snapshot of it would
        not equal replay-of-prefix -- the invariant the whole scheme
        rests on.  The window is a few simulated microseconds; the next
        attempt succeeds.
        """
        owner = self.owner
        if owner.wal is None or owner.wal.frozen or owner._recovering:
            return None
        if owner._applying:
            return None
        in_doubt = [
            PrepareRecord(txn_id, entry.coordinator, tuple(entry.writes.items()))
            for txn_id, entry in sorted(owner._prepared.items())
        ]
        decisions = [
            DecisionRecord(txn_id, decision.seq_no, decision.commit_vc)
            for txn_id, decision in sorted(owner._decisions.items())
        ]
        membership = getattr(owner, "membership", None)
        view = None
        if membership is not None and membership.view.epoch > 0:
            # Stamp the committed view so replay-from-checkpoint restores
            # membership even after the ViewChangeRecords are truncated.
            # Epoch-0 (static) runs keep the historical record layout.
            view = membership.view.to_triple()
        record = build_checkpoint(
            owner.store,
            owner.site_vc,
            owner.curr_seq_no,
            in_doubt=in_doubt,
            decisions=decisions,
            records_below=len(owner.wal),
            view=view,
        )
        owner.wal.append(record)
        self._last_logical = self._logical_length()
        self._stable_required = owner.site_vc[owner.node_id]
        self._latest = record
        self.taken += 1
        owner.metrics.on_checkpoint()
        if owner.tracer._enabled:
            owner.tracer.emit(
                owner.node_id, "checkpoint",
                records_below=record.records_below,
                in_doubt=len(in_doubt),
                own_frontier=self._stable_required,
            )
        return record

    def latest_checkpoint(self) -> Optional[CheckpointRecord]:
        """The newest checkpoint on record (cached, else a WAL scan).

        The WAL scan covers the node that recovered from a checkpointed
        log without ever taking a fresh checkpoint itself: the record is
        still the durable payload a snapshot offer must ship.
        """
        if self._latest is not None:
            return self._latest
        wal = self.owner.wal
        if wal is None:
            return None
        for record in reversed(wal.records()):
            if isinstance(record, CheckpointRecord):
                self._latest = record
                return record
        return None

    # ------------------------------------------------------------------
    # Truncation
    # ------------------------------------------------------------------
    def stable_floor(self) -> Optional[int]:
        """The own-origin frontier every *retained* peer has applied.

        ``None`` until evidence from every peer has arrived -- with a
        peer unheard from, nothing is provably stable.  A single-node
        cluster has no peers and everything is trivially stable.

        With ``max_peer_lag`` set (bounded retention), a peer whose
        evidence lags our frontier beyond the bound -- or that has never
        reported while our frontier exceeds the bound -- is stranded:
        dropped from the floor so truncation is not held hostage by one
        long-partitioned node.  A stranded peer lands below the pruned
        floor and is repaired by snapshot transfer instead of the
        record-by-record push; its below-floor TxnStatus queries resolve
        as presumed-abort, which the snapshot install supersedes.  When
        *every* peer is stranded the floor is our own frontier.
        """
        peers = self.healing.peers
        own = self.owner.site_vc[self.owner.node_id]
        if not peers:
            return own
        max_lag = self.config.max_peer_lag
        frontiers = self.healing.peer_frontiers
        floor = None
        for peer in peers:
            frontier = frontiers.get(peer)
            if frontier is None:
                if max_lag is not None and own > max_lag:
                    continue  # stranded: never heard from, bound exceeded
                return None
            if max_lag is not None and own - frontier > max_lag:
                continue  # stranded: beyond bounded retention
            if floor is None or frontier < floor:
                floor = frontier
        return own if floor is None else floor

    def maybe_truncate(self) -> int:
        """Truncate below the newest checkpoint once it is stable.

        Returns the number of records dropped (0 when disabled, when no
        checkpoint is pending, or when the evidence has not caught up).
        Also prunes the in-memory decision log below the stable floor --
        the same evidence proves no TxnStatus query or gossip stream can
        ever need those entries again.
        """
        owner = self.owner
        if (
            not self.config.truncate
            or owner.wal is None
            or owner.wal.frozen
            or self._stable_required is None
        ):
            return 0
        floor = self.stable_floor()
        if floor is None or floor < self._stable_required:
            return 0
        dropped = owner.wal.truncate_to_checkpoint()
        self._stable_required = None
        self._prune_decisions(floor)
        if dropped:
            owner.metrics.on_truncate(dropped)
            if owner.tracer._enabled:
                owner.tracer.emit(
                    owner.node_id, "truncate", dropped=dropped, floor=floor
                )
        return dropped

    def _prune_decisions(self, floor: int) -> None:
        """Drop decision-log entries at or below the stable floor."""
        if floor > self.pruned_floor:
            self.pruned_floor = floor
        decisions = self.owner._decisions
        by_seq = self.owner._decisions_by_seq
        stale = [
            txn_id
            for txn_id, decision in decisions.items()
            if decision.seq_no is not None and decision.seq_no <= floor
        ]
        for txn_id in stale:
            decision = decisions.pop(txn_id)
            by_seq.pop(decision.seq_no, None)
