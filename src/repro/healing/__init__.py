"""Self-healing layer: failure detection, anti-entropy, checkpointing.

See docs/self_healing.md for the design and
:class:`~repro.config.HealingConfig` for the knobs.  Everything here is
off (or inert) under the default configuration, preserving the paper
model bit for bit.
"""

from repro.healing.checkpoint import CheckpointManager
from repro.healing.daemon import NodeHealing
from repro.healing.detector import ALIVE, DEAD, SUSPECT, FailureDetector

__all__ = [
    "ALIVE",
    "SUSPECT",
    "DEAD",
    "FailureDetector",
    "NodeHealing",
    "CheckpointManager",
]
