"""Per-node self-healing daemon: heartbeats, gossip, checkpoints.

One :class:`NodeHealing` rides along with every MVCC protocol node and
runs up to three background loops, each armed only by configuration
(:class:`~repro.config.HealingConfig`) so the paper-model defaults spawn
nothing and change nothing:

* the **heartbeat loop** beacons this node's ``siteVC`` to every peer on
  a jittered period, feeding the accrual failure detector at the
  receivers.  Heartbeats to a peer with traffic already in flight are
  suppressed (foreground messages are themselves liveness evidence);
* the **gossip loop** picks a seeded-random peer each period and runs one
  anti-entropy round: exchange ``siteVC`` digests over the existing SYNC
  RPC, push the full Decides of our own origin the peer is missing, and
  pull the clock advances we are missing -- after resolving any in-doubt
  prepares a lagging origin coordinated, so a committed transaction's
  buffered writes are installed rather than skipped.  This is the same
  machinery crash recovery invokes (its SYNC fan-out is
  :meth:`NodeHealing.collect_frontiers`), which is what lets a node that
  slept through a partition converge again *without* a restart and
  without foreground traffic;
* the **checkpoint loop** snapshots the node's durable state into the
  WAL and truncates the log below the newest checkpoint once the
  per-peer frontier evidence (harvested from heartbeats and digests)
  shows it stable everywhere -- see
  :class:`~repro.healing.checkpoint.CheckpointManager`.

Every loop draws from one seeded RNG stream per node
(``make_rng(seed, "healing", node_id)``), so a healing-enabled run is a
pure function of its seed like everything else in the simulator.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.config import RpcConfig
from repro.core.wire import (
    DecideBody,
    HeartbeatBody,
    SnapshotChunkBody,
    SnapshotOfferBody,
    SyncRequestBody,
    TxnStatusRequestBody,
)
from repro.healing.detector import FailureDetector
from repro.net.message import MessageType
from repro.sim import AllOf
from repro.sim.rng import make_rng


class NodeHealing:
    """The self-healing layer of one MVCC protocol node."""

    def __init__(self, owner) -> None:
        self.owner = owner
        shared = owner.shared
        self.sim = owner.sim
        self.node_id = owner.node_id
        self.config = shared.config.healing
        self.metrics = owner.metrics
        self.tracer = owner.tracer
        self._static_peers = [
            peer for peer in shared.config.node_ids if peer != self.node_id
        ]
        self._rng = make_rng(shared.config.seed, "healing", self.node_id)
        #: peer -> newest sequence number of *our* origin known applied
        #: there (from heartbeats and gossip digests); the evidence WAL
        #: truncation and decision-log pruning wait on.
        self.peer_frontiers: Dict[int, int] = {}
        #: Completed anti-entropy rounds at this node (test probe).
        self.rounds = 0
        #: Snapshots shipped to truncation-gapped peers (test probe).
        self.snapshots_shipped = 0
        #: Per-node transfer id counter (deterministic, never reused).
        self._snapshot_ids = 0
        self._stopped = False
        self._started = False
        #: Bumped by every :meth:`start`; loops capture the generation at
        #: spawn and exit when it moves on, so a stop/start cycle can
        #: never leave two copies of the same loop running.
        self._generation = 0

        config = self.config
        self.detector: Optional[FailureDetector] = None
        #: Whether the detector actually receives evidence.  Without a
        #: heartbeat period or an RPC timeout there is none, and leaving
        #: the hooks uninstalled keeps delivery and the RPC retry ladder
        #: on their original fast paths -- tier-1 runs are bit-identical.
        self.armed = False
        if config.detector_enabled:
            self.detector = FailureDetector(
                self.sim,
                self.node_id,
                shared.num_nodes,
                config,
                metrics=self.metrics,
                tracer=self.tracer,
            )
            if (
                config.heartbeat_interval is not None
                or owner.node.rpc.config.request_timeout is not None
            ):
                owner.node.rpc.detector = self.detector
                owner.node.arrival_hook = self.detector.on_arrival
                self.armed = True

        # Gossip RPCs must never hang a round on a dead peer: under the
        # paper's reliable-channel default (no global timeout) they get a
        # private single-attempt deadline; with a global timeout they use
        # the endpoint's own (detector-capped) policy.
        if owner.node.rpc.config.request_timeout is None:
            self._rpc_config: Optional[RpcConfig] = RpcConfig(
                request_timeout=config.digest_timeout, max_attempts=1
            )
        else:
            self._rpc_config = None

        # Imported here to keep repro.healing free of an import cycle
        # through repro.storage at module load order.
        from repro.healing.checkpoint import CheckpointManager

        self.checkpoints = CheckpointManager(owner, self)

    # ------------------------------------------------------------------
    # Peers
    # ------------------------------------------------------------------
    @property
    def peers(self) -> List[int]:
        """Current gossip/heartbeat partners, derived from the live view.

        At epoch zero (static membership) this is exactly the historical
        seed peer list; once views change it tracks the committed view's
        fan-out set (active, draining and joining members) minus self.
        """
        membership = getattr(self.owner, "membership", None)
        if membership is None or membership.view.epoch == 0:
            return self._static_peers
        return [
            peer for peer in membership.view.fanout_ids
            if peer != self.node_id
        ]

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Spawn whichever periodic loops the configuration arms.

        Idempotent: a second start while running is a no-op, and a
        stop/start cycle bumps the generation so a stale loop that has
        not yet noticed the stop exits at its next wake-up instead of
        running alongside its replacement.
        """
        if self._started:
            return
        self._started = True
        self._stopped = False
        self._generation += 1
        generation = self._generation
        config = self.config
        name = f"n{self.node_id}"
        if config.heartbeat_interval is not None and self.peers:
            self.sim.spawn(
                self._heartbeat_loop(generation), name=f"{name}:heartbeat"
            )
        if config.anti_entropy_interval is not None and self.peers:
            self.sim.spawn(
                self._gossip_loop(generation), name=f"{name}:gossip"
            )
        if config.checkpoint.interval is not None and self.owner.wal is not None:
            self.sim.spawn(
                self._checkpoint_loop(generation), name=f"{name}:checkpoint"
            )

    def stop(self) -> None:
        """Wind down the periodic loops (each exits at its next wake-up).

        Idempotent: stopping an already-stopped daemon changes nothing.
        """
        self._stopped = True
        self._started = False

    def _stale(self, generation: int) -> bool:
        return self._stopped or generation != self._generation

    def _own_entry(self, vc) -> int:
        """This node's entry of a peer-reported clock, zero when absent.

        A digest minted before this node joined is narrower than our id;
        the peer has applied none of our origin, which is exactly 0.
        """
        return vc[self.node_id] if self.node_id < len(vc) else 0

    # ------------------------------------------------------------------
    # Frontier evidence
    # ------------------------------------------------------------------
    def note_peer_frontier(self, peer: int, frontier: int) -> None:
        """Record that ``peer`` has applied our origin up to ``frontier``."""
        if frontier > self.peer_frontiers.get(peer, -1):
            self.peer_frontiers[peer] = frontier

    def on_heartbeat(self, src: int, site_vc) -> None:
        """A peer's beacon arrived (liveness went through arrival_hook)."""
        self.note_peer_frontier(src, self._own_entry(site_vc))

    # ------------------------------------------------------------------
    # Heartbeats
    # ------------------------------------------------------------------
    def _heartbeat_loop(self, generation: int):
        config = self.config
        interval = config.heartbeat_interval
        owner = self.owner
        network = owner.node.network
        while not self._stale(generation):
            delay = interval
            if config.heartbeat_jitter > 0:
                delay += self._rng.uniform(
                    0.0, config.heartbeat_jitter * interval
                )
            yield self.sim.timeout(delay)
            if self._stale(generation):
                return
            if owner._recovering:
                continue
            now = self.sim.now
            body = HeartbeatBody(owner.site_vc.to_tuple())
            for peer in self.peers:
                if (
                    config.heartbeat_suppression
                    and network.last_send_horizon(self.node_id, peer) >= now
                ):
                    # A message to this peer is already in flight; it
                    # carries the same liveness signal for free.
                    self.metrics.on_heartbeat(sent=False)
                    continue
                owner.node.send(peer, MessageType.HEARTBEAT, body)
                self.metrics.on_heartbeat(sent=True)

    # ------------------------------------------------------------------
    # Anti-entropy gossip
    # ------------------------------------------------------------------
    def _gossip_loop(self, generation: int):
        config = self.config
        interval = config.anti_entropy_interval
        owner = self.owner
        while not self._stale(generation):
            delay = interval
            if config.heartbeat_jitter > 0:
                delay += self._rng.uniform(
                    0.0, config.heartbeat_jitter * interval
                )
            yield self.sim.timeout(delay)
            if self._stale(generation):
                return
            if owner._recovering:
                continue
            if not self.peers:
                continue
            yield from self.gossip_round(self.pick_gossip_peer())

    def pick_gossip_peer(self) -> int:
        """Choose the next gossip partner (seeded, deterministic).

        With ``snapshot.lag_bias == 0`` (default) this is the historical
        uniform draw, bit for bit.  With a positive bias each peer's
        selection weight is ``1 + lag_bias * lag``, where ``lag`` is how
        far the peer's digest-reported frontier of *our* origin trails
        our own -- wide partitions heal in fewer rounds because rounds
        concentrate on the peer that is actually behind.  A peer never
        heard from counts as maximally lagging (frontier 0).  When every
        lag is equal (including the all-converged steady state) the
        draw falls back to the same uniform ``randrange`` call, so a
        converged biased run consumes its RNG stream exactly like an
        unbiased one.
        """
        peers = self.peers
        bias = self.config.snapshot.lag_bias
        if bias > 0 and len(peers) > 1:
            own = self.owner.site_vc[self.node_id]
            frontiers = self.peer_frontiers
            lags = [
                max(0, own - frontiers.get(peer, 0)) for peer in peers
            ]
            if max(lags) != min(lags):
                weights = [1.0 + bias * lag for lag in lags]
                draw = self._rng.random() * sum(weights)
                acc = 0.0
                for peer, weight in zip(peers, weights):
                    acc += weight
                    if draw < acc:
                        return peer
                return peers[-1]
        return peers[self._rng.randrange(len(peers))]

    def gossip_round(self, peer: int):
        """One full anti-entropy exchange with ``peer``.

        Generator subroutine (tests drive it directly against a chosen
        peer).  Exchanges digests, pushes the peer's missing share of our
        own origin, pulls our missing share of everything else, then lets
        the checkpoint manager re-evaluate truncation with the fresh
        frontier evidence.
        """
        owner = self.owner
        incarnation = owner._incarnation
        ok, reply = yield from owner.node.rpc.call_settled(
            peer,
            MessageType.SYNC,
            SyncRequestBody(self.node_id, owner.site_vc.to_tuple()),
            config=self._rpc_config,
        )
        if (
            not ok
            or self._stopped
            or owner._recovering
            or owner._incarnation != incarnation
        ):
            return
        peer_vc = reply.site_vc
        if owner.membership.view.epoch > 0:
            # Piggyback the committed view on anti-entropy: a peer that
            # slept through the VIEW_COMMIT fan-out (partition, crash)
            # converges on membership the same way it converges on data.
            owner.membership.send_commit_to(peer)
        self.note_peer_frontier(peer, self._own_entry(peer_vc))
        if self._snapshot_gap(self._own_entry(peer_vc)):
            installed = yield from self.ship_snapshot(peer, incarnation)
            if (
                self._stopped
                or owner._recovering
                or owner._incarnation != incarnation
            ):
                return
            if installed:
                # The peer now sits at the checkpoint clock; stream and
                # pull against that frontier so this same round tops it
                # up with the post-checkpoint suffix.
                record = self.checkpoints.latest_checkpoint()
                width = max(len(peer_vc), len(record.site_vc))
                peer_vc = tuple(
                    max(
                        peer_vc[i] if i < len(peer_vc) else 0,
                        record.site_vc[i] if i < len(record.site_vc) else 0,
                    )
                    for i in range(width)
                )
        streamed = self._stream_own_origin(peer, self._own_entry(peer_vc))
        yield from self._pull(peer_vc, incarnation)
        self.rounds += 1
        self.metrics.on_anti_entropy_round(streamed)
        if self.tracer._enabled:
            self.tracer.emit(
                self.node_id, "anti_entropy", peer=peer, streamed=streamed
            )
        self.checkpoints.maybe_truncate()

    def _stream_own_origin(self, peer: int, frontier: int) -> int:
        """Send ``peer`` the full Decides of our origin it has not applied.

        Always safe: re-announcing our own commits duplicates at worst
        (the apply path skips sequence numbers at or below the peer's
        clock), and a *full* Decide -- never a clock-only Propagate -- is
        required because the peer may still hold the prepared writes and
        must install them under the clock tick.  Bounded per round by
        ``max_stream_per_round``; the next round resumes from the peer's
        advanced digest.
        """
        owner = self.owner
        own_frontier = owner.site_vc[self.node_id]
        if frontier >= own_frontier:
            return 0
        by_seq = owner._decisions_by_seq
        limit = self.config.max_stream_per_round
        streamed = 0
        first = last = None
        for seq_no in range(frontier + 1, own_frontier + 1):
            if streamed >= limit:
                break
            decision = by_seq.get(seq_no)
            if decision is None:
                continue
            owner.node.send(peer, MessageType.DECIDE, decision)
            streamed += 1
            if first is None:
                first = seq_no
            last = seq_no
        if streamed:
            if self.tracer._enabled:
                self.tracer.emit(
                    self.node_id, "stream", peer=peer,
                    first=first, last=last, count=streamed,
                )
        return streamed

    def _pull(self, peer_vc, incarnation: int):
        """Advance our clock toward a peer's digest, without losing writes.

        A lagging origin may have committed a transaction we hold
        *prepared*: advancing ``siteVC`` past its sequence number with
        the writes still buffered would silently drop them.  So in-doubt
        prepares coordinated by a lagging origin are resolved first via
        TxnStatus (exactly recovery's step 1); committed ones are applied
        through the normal Decide path with their sequence numbers
        reserved, and only then does the clock-only catch-up run.  An
        origin whose coordinator cannot be reached is skipped this round
        rather than advanced past unresolved state.
        """
        owner = self.owner
        site_vc = owner.site_vc
        lagging: Dict[int, int] = {}
        for origin, target in enumerate(peer_vc):
            if origin == self.node_id or target <= 0:
                continue
            if origin >= len(site_vc.entries):
                if origin in owner.membership.dropped:
                    # A retired origin we already truncated; the peer's
                    # wider digest is stale, not news.
                    continue
                site_vc.widen(origin + 1)
            if target > site_vc[origin]:
                lagging[origin] = target
        if not lagging:
            return
        reserved: Dict[int, Set[int]] = {}
        unresolved: Set[int] = set()
        for txn_id, entry in sorted(owner._prepared.items()):
            coordinator = entry.coordinator
            if coordinator not in lagging or coordinator in unresolved:
                continue
            ok, reply = yield from owner.node.rpc.call_settled(
                coordinator,
                MessageType.TXN_STATUS,
                TxnStatusRequestBody(txn_id),
                config=self._rpc_config,
            )
            if (
                self._stopped
                or owner._recovering
                or owner._incarnation != incarnation
            ):
                return
            if not ok:
                unresolved.add(coordinator)
                continue
            if owner._prepared.get(txn_id) is not entry:
                continue  # a racing Decide resolved it meanwhile
            self.metrics.on_indoubt_resolved(reply.committed)
            if self.tracer._enabled:
                self.tracer.emit(
                    self.node_id, "indoubt", txn=txn_id,
                    committed=reply.committed, via="anti_entropy",
                )
            if reply.committed:
                reserved.setdefault(reply.origin, set()).add(reply.seq_no)
                self.sim.spawn(
                    owner._apply_committed_decide(
                        DecideBody(
                            txn_id=txn_id,
                            outcome=True,
                            origin=reply.origin,
                            seq_no=reply.seq_no,
                            commit_vc=reply.commit_vc,
                            collected=reply.collected,
                        )
                    ),
                    name=f"n{self.node_id}:gossip-apply-{txn_id}",
                )
            else:
                owner._abort_prepared(txn_id, entry)
        for origin in sorted(lagging):
            if origin in unresolved:
                continue
            target = lagging[origin]
            if target > site_vc[origin]:
                yield from owner._catch_up_origin(
                    origin, target, reserved.get(origin, frozenset())
                )
            if self._stopped or owner._incarnation != incarnation:
                return

    # ------------------------------------------------------------------
    # Snapshot transfer
    # ------------------------------------------------------------------
    def _snapshot_gap(self, frontier: int) -> bool:
        """Is ``frontier`` beyond record-by-record repair from here?

        True when decision-log pruning has dropped own-origin sequence
        numbers the peer still needs: ``_stream_own_origin`` silently
        skips missing entries, so a peer at or below ``pruned_floor``
        can never converge through the normal push -- only a checkpoint
        snapshot covers the gap.  ``offer_threshold`` widens the trigger
        so operators can prefer bulk transfer even for shallow gaps.
        """
        cfg = self.config.snapshot
        if not cfg.enabled or self.owner.wal is None:
            return False
        floor = self.checkpoints.pruned_floor
        if floor <= 0 or frontier + cfg.offer_threshold >= floor:
            return False
        return self.checkpoints.latest_checkpoint() is not None

    def ship_snapshot(self, peer: int, incarnation: int):
        """Stream our newest checkpoint to ``peer`` in bounded chunks.

        Generator subroutine returning True iff the receiver verified
        the fingerprint and installed.  The offer RPC carries the
        checkpoint's clock and fingerprint so the receiver can reject
        before bulk data moves (it must: installing never regresses an
        origin).  Chunks go in index order; any rejection or lost reply
        abandons the transfer -- the next gossip round that still sees a
        gap simply re-offers.  On success the receiver's frontier of our
        origin provably equals the checkpoint clock's own entry, which
        this side records as truncation evidence immediately.
        """
        owner = self.owner
        record = self.checkpoints.latest_checkpoint()
        cfg = self.config.snapshot
        chunk_size = max(1, cfg.chunk_records)
        chains = record.chains
        total = max(1, (len(chains) + chunk_size - 1) // chunk_size)
        self._snapshot_ids += 1
        snapshot_id = self._snapshot_ids
        offer = SnapshotOfferBody(
            sender=self.node_id,
            site_vc=record.site_vc,
            curr_seq_no=record.curr_seq_no,
            fingerprint=record.fingerprint,
            total_chunks=total,
            snapshot_id=snapshot_id,
        )
        self.metrics.on_snapshot_offer()
        if self.tracer._enabled:
            self.tracer.emit(
                self.node_id, "snapshot_offer", peer=peer,
                snapshot_id=snapshot_id, chunks=total,
                frontier=record.site_vc[self.node_id],
            )
        ok, reply = yield from owner.node.rpc.call_settled(
            peer, MessageType.SNAPSHOT_OFFER, offer, config=self._rpc_config
        )
        if (
            self._stopped
            or owner._recovering
            or owner._incarnation != incarnation
        ):
            return False
        if not ok or not reply.accepted:
            self.metrics.on_snapshot_rejected()
            return False
        installed = False
        for index in range(total):
            chunk = SnapshotChunkBody(
                snapshot_id=snapshot_id,
                index=index,
                total=total,
                chains=chains[index * chunk_size:(index + 1) * chunk_size],
            )
            ok, reply = yield from owner.node.rpc.call_settled(
                peer,
                MessageType.SNAPSHOT_CHUNK,
                chunk,
                config=self._rpc_config,
            )
            if (
                self._stopped
                or owner._recovering
                or owner._incarnation != incarnation
            ):
                return False
            if not ok or not reply.accepted:
                self.metrics.on_snapshot_rejected()
                return False
            self.metrics.on_snapshot_chunk(len(chunk.chains))
            installed = reply.installed
        if not installed:
            return False
        self.note_peer_frontier(peer, record.site_vc[self.node_id])
        self.snapshots_shipped += 1
        self.metrics.on_snapshot_shipped()
        if self.tracer._enabled:
            self.tracer.emit(
                self.node_id, "snapshot_shipped", peer=peer,
                snapshot_id=snapshot_id,
                frontier=record.site_vc[self.node_id],
            )
        return True

    def ship_shard(self, peer: int, keys, incarnation: int):
        """Stream the chains of ``keys`` to their new owner verbatim.

        Generator subroutine for membership handoff (join bootstrap and
        decommission drain); returns True iff the receiver verified the
        fingerprint and installed.  The reconfiguration driver has
        already fenced the keys and drained their write locks, so the
        chains are stable for the duration of the transfer.  The offer
        is flagged ``shard=True``: the receiver adopts the chains
        without touching its clock or regressing anything, so no
        staleness gate applies.  Any rejection or lost reply simply
        returns False -- the driver retries or abandons the view change.
        """
        from repro.storage.store import MultiVersionStore
        from repro.storage.wal import build_checkpoint

        owner = self.owner
        shard_store = MultiVersionStore()
        for key in sorted(keys, key=repr):
            if key in owner.store:
                shard_store._chains[key] = owner.store.chain(key)
        record = build_checkpoint(
            shard_store, owner.site_vc, owner.curr_seq_no
        )
        cfg = self.config.snapshot
        chunk_size = max(1, cfg.chunk_records)
        chains = record.chains
        total = max(1, (len(chains) + chunk_size - 1) // chunk_size)
        self._snapshot_ids += 1
        snapshot_id = self._snapshot_ids
        offer = SnapshotOfferBody(
            sender=self.node_id,
            site_vc=record.site_vc,
            curr_seq_no=record.curr_seq_no,
            fingerprint=record.fingerprint,
            total_chunks=total,
            snapshot_id=snapshot_id,
            shard=True,
        )
        self.metrics.on_snapshot_offer()
        if self.tracer._enabled:
            self.tracer.emit(
                self.node_id, "shard_offer", peer=peer,
                snapshot_id=snapshot_id, keys=len(chains), chunks=total,
            )
        ok, reply = yield from owner.node.rpc.call_settled(
            peer, MessageType.SNAPSHOT_OFFER, offer, config=self._rpc_config
        )
        if owner._incarnation != incarnation:
            return False
        if not ok or not reply.accepted:
            self.metrics.on_snapshot_rejected()
            return False
        installed = False
        for index in range(total):
            chunk = SnapshotChunkBody(
                snapshot_id=snapshot_id,
                index=index,
                total=total,
                chains=chains[index * chunk_size:(index + 1) * chunk_size],
            )
            ok, reply = yield from owner.node.rpc.call_settled(
                peer,
                MessageType.SNAPSHOT_CHUNK,
                chunk,
                config=self._rpc_config,
            )
            if owner._incarnation != incarnation:
                return False
            if not ok or not reply.accepted:
                self.metrics.on_snapshot_rejected()
                return False
            self.metrics.on_snapshot_chunk(len(chunk.chains))
            installed = reply.installed
        if installed and self.tracer._enabled:
            self.tracer.emit(
                self.node_id, "shard_shipped", peer=peer,
                snapshot_id=snapshot_id, keys=len(chains),
            )
        return bool(installed)

    def on_snapshot_ack(self, src: int, body) -> None:
        """One-way install confirmation: harvest as frontier evidence.

        Redundant with the final chunk's RPC reply when that reply
        arrives, but this path survives a lost reply -- the sender still
        learns the receiver holds its origin through the checkpoint.
        """
        if body.site_vc is not None:
            self.note_peer_frontier(src, self._own_entry(body.site_vc))

    # ------------------------------------------------------------------
    # Recovery's shared SYNC fan-out
    # ------------------------------------------------------------------
    def collect_frontiers(self):
        """Digest every peer at once: recovery's anti-entropy step.

        Generator subroutine returning ``(targets, peer_frontiers)`` --
        the element-wise max clock over all replies and each reachable
        peer's applied frontier of *our* origin.  The request omits our
        own ``siteVC`` on purpose: a half-rebuilt clock is not frontier
        evidence.  Uses the endpoint's normal RPC policy (recovery keeps
        its historical retry semantics).
        """
        owner = self.owner
        peers = self.peers
        settles = [
            owner.node.rpc.spawn_call(
                peer, MessageType.SYNC, SyncRequestBody(self.node_id)
            )
            for peer in peers
        ]
        replies = yield AllOf(self.sim, settles)
        targets = [0] * max(
            owner.shared.num_nodes, len(owner.site_vc.entries)
        )
        peer_frontiers: Dict[int, int] = {}
        for peer, (ok, reply) in zip(peers, replies):
            if not ok:
                continue
            own = self._own_entry(reply.site_vc)
            peer_frontiers[peer] = own
            self.note_peer_frontier(peer, own)
            for origin, frontier in enumerate(reply.site_vc):
                if origin >= len(targets):
                    targets.extend([0] * (origin + 1 - len(targets)))
                if frontier > targets[origin]:
                    targets[origin] = frontier
        return targets, peer_frontiers

    # ------------------------------------------------------------------
    # Checkpoints
    # ------------------------------------------------------------------
    def _checkpoint_loop(self, generation: int):
        interval = self.config.checkpoint.interval
        owner = self.owner
        while not self._stale(generation):
            yield self.sim.timeout(interval)
            if self._stale(generation):
                return
            if owner._recovering:
                continue
            self.checkpoints.maybe_checkpoint()
            self.checkpoints.maybe_truncate()
