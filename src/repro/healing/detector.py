"""Accrual failure detection from message arrivals and RPC timeouts.

One :class:`FailureDetector` per node classifies every peer as ALIVE,
SUSPECT, or DEAD from two evidence streams, both driven by simulator
time and therefore fully deterministic:

* **passive** -- every delivered message from a peer is an arrival;
  every timed-out RPC attempt against it is a strike.  Consecutive
  strikes past ``suspect_after_timeouts`` / ``dead_after_timeouts``
  raise the classification; any arrival clears it.  This stream costs
  nothing until ``RpcConfig.request_timeout`` is configured, so the
  paper's reliable-channel model never accrues evidence and the
  detector stays inert.
* **accrual** (phi, Hayashibara-style) -- when active heartbeats are
  configured the detector tracks each peer's mean inter-arrival time
  (EWMA) and scores the silence since the last arrival in units of that
  mean: ``phi = (now - last_arrival) / mean_interval``.  ``phi``
  crossing ``phi_suspect`` / ``phi_dead`` raises the classification,
  which -- unlike a fixed timeout -- adapts to however slow the peer
  has actually been, so a consistently slow-but-alive peer is not
  falsely declared dead.

Consumers:

* :meth:`attempts_budget` caps the RPC retry ladder (1 attempt for a
  DEAD peer, ``suspect_max_attempts`` for a SUSPECT one);
* :meth:`is_dead` feeds the coordinator's commit fail-fast;
* suspicion transitions are counted in the metrics recorder and emitted
  as ``suspect`` / ``trust`` trace events.
"""

from __future__ import annotations

from typing import List, Optional

from repro.config import HealingConfig

#: Peer classifications, ordered by increasing suspicion.
ALIVE = "alive"
SUSPECT = "suspect"
DEAD = "dead"

_RANK = {ALIVE: 0, SUSPECT: 1, DEAD: 2}

#: EWMA weight of the newest inter-arrival sample.
_EWMA_ALPHA = 0.2


class FailureDetector:
    """Per-node accrual failure detector over the cluster's peers."""

    def __init__(
        self,
        sim,
        node_id: int,
        num_nodes: int,
        config: HealingConfig,
        metrics=None,
        tracer=None,
    ) -> None:
        self.sim = sim
        self.node_id = node_id
        self.num_nodes = num_nodes
        self.config = config
        self.metrics = metrics
        self.tracer = tracer
        self._state: List[str] = [ALIVE] * num_nodes
        self._strikes: List[int] = [0] * num_nodes
        self._last_arrival: List[Optional[float]] = [None] * num_nodes
        self._mean_interval: List[Optional[float]] = [None] * num_nodes
        #: Whether phi scoring is armed (heartbeats configured).
        self._accrual = config.heartbeat_interval is not None

    def _ensure(self, peer: int) -> None:
        """Grow the per-peer slots on first contact with a joined node."""
        if peer < len(self._state):
            return
        grow = peer + 1 - len(self._state)
        self._state.extend([ALIVE] * grow)
        self._strikes.extend([0] * grow)
        self._last_arrival.extend([None] * grow)
        self._mean_interval.extend([None] * grow)

    def forget(self, peer: int) -> None:
        """Drop all evidence about ``peer`` (it left the membership).

        Resets to the pristine ALIVE state rather than deleting the
        slot, so a later rejoin of the same identifier starts fresh and
        no stale DEAD verdict shortens its RPC ladders.
        """
        if peer >= len(self._state):
            return
        self._state[peer] = ALIVE
        self._strikes[peer] = 0
        self._last_arrival[peer] = None
        self._mean_interval[peer] = None

    # ------------------------------------------------------------------
    # Evidence
    # ------------------------------------------------------------------
    def on_arrival(self, peer: int) -> None:
        """Any message from ``peer`` was delivered here: it is alive."""
        if peer == self.node_id:
            return
        self._ensure(peer)
        now = self.sim.now
        last = self._last_arrival[peer]
        if last is not None:
            sample = now - last
            mean = self._mean_interval[peer]
            if mean is None:
                self._mean_interval[peer] = sample
            else:
                self._mean_interval[peer] = (
                    mean + _EWMA_ALPHA * (sample - mean)
                )
        self._last_arrival[peer] = now
        self._strikes[peer] = 0
        if self._state[peer] != ALIVE:
            self._transition(peer, ALIVE)

    def on_rpc_timeout(self, peer: int) -> None:
        """One RPC attempt against ``peer`` hit its reply deadline."""
        if peer == self.node_id:
            return
        self._ensure(peer)
        self._strikes[peer] += 1
        self._reclassify(peer)

    # ------------------------------------------------------------------
    # Classification
    # ------------------------------------------------------------------
    def phi(self, peer: int) -> float:
        """Silence since the peer's last arrival, in mean intervals."""
        self._ensure(peer)
        last = self._last_arrival[peer]
        mean = self._mean_interval[peer]
        if last is None or mean is None or mean <= 0.0:
            return 0.0
        return (self.sim.now - last) / mean

    def state(self, peer: int) -> str:
        """The peer's current classification (re-scored on read).

        Accrual evidence is time-driven, so the score can cross a
        threshold between evidence events; re-scoring on read keeps the
        answer current without a polling process.
        """
        self._reclassify(peer)
        return self._state[peer]

    def is_dead(self, peer: int) -> bool:
        return self.state(peer) == DEAD

    def is_suspect(self, peer: int) -> bool:
        """SUSPECT or worse."""
        return _RANK[self.state(peer)] >= _RANK[SUSPECT]

    def attempts_budget(self, peer: int, configured: int) -> int:
        """Retry attempts :meth:`RpcEndpoint.call` should spend on ``peer``.

        A known-dead peer gets a single probe (enough to notice it came
        back); a suspect peer gets a shortened ladder.  A healthy peer
        keeps the configured budget.
        """
        state = self.state(peer)
        if state == DEAD:
            return 1
        if state == SUSPECT:
            return max(1, min(configured, self.config.suspect_max_attempts))
        return configured

    def _reclassify(self, peer: int) -> None:
        self._ensure(peer)
        config = self.config
        verdict = ALIVE
        strikes = self._strikes[peer]
        if strikes >= config.dead_after_timeouts:
            verdict = DEAD
        elif strikes >= config.suspect_after_timeouts:
            verdict = SUSPECT
        if self._accrual and _RANK[verdict] < _RANK[DEAD]:
            phi = self.phi(peer)
            if phi >= config.phi_dead:
                verdict = DEAD
            elif phi >= config.phi_suspect and verdict == ALIVE:
                verdict = SUSPECT
        if verdict != self._state[peer]:
            self._transition(peer, verdict)

    def _transition(self, peer: int, verdict: str) -> None:
        previous = self._state[peer]
        self._state[peer] = verdict
        raised = _RANK[verdict] > _RANK[previous]
        if self.metrics is not None:
            self.metrics.on_suspicion(raised)
        if self.tracer is not None and self.tracer._enabled:
            self.tracer.emit(
                self.node_id,
                "suspect" if raised else "trust",
                peer=peer,
                state=verdict,
                was=previous,
            )
