"""Drive a workload against a cluster with closed-loop clients.

The paper's methodology (Section 5): five application threads per node
inject transactions in a closed loop -- a client issues a new request only
when the previous one has returned -- and an aborted transaction is
retried until it commits.  Results are measured over a window that starts
after a warmup period.
"""

from __future__ import annotations

import gc
import time
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.cluster.directory import Directory
from repro.config import ClusterConfig, RunConfig
from repro.net.rpc import RpcTimeoutError
from repro.sim.rng import make_rng
from repro.system import Cluster
from repro.workloads.base import Rollback, TxnContext, Workload

#: Pause before retrying an aborted transaction, jittered per attempt.
DEFAULT_RETRY_BACKOFF = 100e-6


@dataclass
class ExperimentResult:
    """Everything a figure needs from one (protocol, parameters) run."""

    protocol: str
    workload: str
    params: Dict[str, object]
    metrics: Dict[str, object]
    wall_seconds: float
    cluster: Cluster = field(repr=False, default=None)

    @property
    def throughput_ktps(self) -> float:
        """Committed transactions per second, in thousands."""
        return self.metrics["throughput"] / 1e3

    @property
    def abort_rate(self) -> float:
        """The run's abort rate (aborted attempts / all attempts)."""
        return self.metrics["abort_rate"]

    @property
    def mean_antidep(self) -> float:
        """Mean anti-dependency set size collected at prepare (Figure 6)."""
        return self.metrics["antidep_collected"]["mean"]


def client_loop(
    cluster: Cluster,
    node_id: int,
    client_id: int,
    workload: Workload,
    stop_time: float,
    backoff: float,
    max_retries: Optional[int],
):
    """One closed-loop client process."""
    sim = cluster.sim
    node = cluster.node(node_id)
    costs = cluster.config.costs
    rng = make_rng(cluster.config.seed, "client", node_id, client_id)

    while sim.now < stop_time:
        program = workload.generate(rng, node_id)
        first_attempt_started = sim.now
        attempts = 0
        while True:
            attempts += 1
            txn = node.begin(program.is_read_only, program.profile)
            ctx = TxnContext(node, txn)
            if costs.client_overhead:
                yield sim.sleep(costs.client_overhead)
            try:
                yield from program.run(ctx)
                ok = yield from node.commit(txn)
            except Rollback:
                node.abort(txn)
                break  # intended outcome; no retry
            except RpcTimeoutError:
                # A read (or commit-path) RPC exhausted its retries --
                # the peer is crashed or partitioned.  Roll back and retry
                # the whole transaction like any other aborted attempt.
                node.abort(txn)
                ok = False
            if ok:
                cluster.metrics.on_commit(
                    txn, sim.now - first_attempt_started, attempts
                )
                break
            if max_retries is not None and attempts > max_retries:
                break
            yield sim.sleep(backoff * (1.0 + rng.random()))
        if costs.client_think:
            yield sim.sleep(costs.client_think)


def run_experiment(
    protocol: str,
    workload: Workload,
    cluster_config: ClusterConfig,
    run_config: RunConfig,
    directory: Optional[Directory] = None,
    record_history: bool = False,
    backoff: float = DEFAULT_RETRY_BACKOFF,
    params: Optional[Dict[str, object]] = None,
) -> ExperimentResult:
    """Build a cluster, load the workload, run clients, return metrics."""
    cluster = Cluster(
        protocol, cluster_config, directory=directory, record_history=record_history
    )
    cluster.load_many(workload.load_items())

    stop_time = run_config.warmup + run_config.duration
    cluster.metrics.open_window(run_config.warmup, stop_time)
    for node_id in cluster_config.node_ids:
        for client_id in range(cluster_config.clients_per_node):
            cluster.spawn(
                client_loop(
                    cluster,
                    node_id,
                    client_id,
                    workload,
                    stop_time,
                    backoff,
                    run_config.max_retries,
                ),
                name=f"client-{node_id}-{client_id}",
            )

    started = time.perf_counter()
    # The loaded keyspace and cluster wiring stay live for the whole run;
    # freezing them keeps the cyclic collector from rescanning hundreds of
    # thousands of static objects on every oldest-generation pass.  Unfreeze
    # afterwards so repeated experiments in one process still collect them.
    gc.freeze()
    try:
        cluster.run(until=stop_time)
    finally:
        gc.unfreeze()
    wall = time.perf_counter() - started

    metrics = cluster.metrics.summary()
    utilizations = cluster.cpu_utilization(stop_time)
    metrics["mean_cpu_utilization"] = (
        sum(utilizations) / len(utilizations) if utilizations else 0.0
    )
    return ExperimentResult(
        protocol=protocol,
        workload=workload.name,
        params=dict(params or {}),
        metrics=metrics,
        wall_seconds=wall,
        cluster=cluster,
    )
