"""Experiment harness: closed-loop clients, runners, figures, reports."""

from repro.harness.runner import ExperimentResult, run_experiment
from repro.harness.report import ascii_chart, format_table, group_series

__all__ = [
    "ExperimentResult",
    "ascii_chart",
    "format_table",
    "group_series",
    "run_experiment",
]
