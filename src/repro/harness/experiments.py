"""One function per figure of the paper's evaluation (Section 5).

Every function returns a list of row dicts ready for
:func:`repro.harness.report.format_table`.  Parameters default to the
paper's configuration; the benchmark suite passes scaled-down values
(fewer virtual seconds, smaller TPC-C warehouses) recorded in
EXPERIMENTS.md.  Node counts, key counts, read-only mixes, and the
delayed-propagation setup follow the paper exactly.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.config import ClusterConfig, CostModel, NetworkConfig, RunConfig
from repro.harness.runner import ExperimentResult, run_experiment
from repro.workloads.tpcc import TPCCConfig, TPCCWorkload, tpcc_directory
from repro.workloads.ycsb import YCSBConfig, YCSBWorkload

PSI_PROTOCOLS = ("fwkv", "walter")
ALL_PROTOCOLS = ("fwkv", "walter", "2pc")

#: Keys that identify a configuration point when averaging across trials.
_GROUP_KEYS = ("figure", "ro", "keys", "nodes", "protocol", "w_per_node", "delayed")


def average_trials(per_trial_rows: "List[List[Dict[str, object]]]") -> "List[Dict[str, object]]":
    """Average numeric fields across trials (the paper averages 5 runs).

    Rows are matched positionally -- every trial produces the same grid in
    the same order -- and their identifying fields are asserted equal.
    Numeric fields become means; a ``trials`` field records the count.
    """
    if len(per_trial_rows) == 1:
        return per_trial_rows[0]
    base = per_trial_rows[0]
    averaged: List[Dict[str, object]] = []
    for position, row in enumerate(base):
        merged = dict(row)
        for other in per_trial_rows[1:]:
            other_row = other[position]
            for key in _GROUP_KEYS:
                assert row.get(key) == other_row.get(key), (
                    f"trial grids diverged at {key}: "
                    f"{row.get(key)} vs {other_row.get(key)}"
                )
        for field_name, value in row.items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            if field_name in _GROUP_KEYS:
                continue
            samples = [trial[position][field_name] for trial in per_trial_rows]
            merged[field_name] = sum(samples) / len(samples)
        merged["trials"] = len(per_trial_rows)
        averaged.append(merged)
    return averaged


def run_trials(figure_fn, trials: int, seed: int, **kwargs):
    """Run a figure function ``trials`` times with distinct seeds and
    average the resulting grids."""
    if trials < 1:
        raise ValueError("trials must be >= 1")
    grids = [figure_fn(seed=seed + trial, **kwargs) for trial in range(trials)]
    return average_trials(grids)

#: The paper delays Propagate messages by 1 ms ("around 5x slowdown of
#: network delay, which might be due to congestion at high utilization").
PROPAGATE_DELAY = 1e-3


def _cluster_config(
    num_nodes: int,
    seed: int,
    propagate_delay: float = 0.0,
    costs: Optional[CostModel] = None,
    remove_broadcast: bool = True,
) -> ClusterConfig:
    network = NetworkConfig()
    if propagate_delay:
        network = network.with_propagate_delay(propagate_delay)
    kwargs = {"num_nodes": num_nodes, "clients_per_node": 5, "seed": seed,
              "network": network, "remove_broadcast": remove_broadcast}
    if costs is not None:
        kwargs["costs"] = costs
    return ClusterConfig(**kwargs)


def _run_ycsb(
    protocol: str,
    num_nodes: int,
    num_keys: int,
    ro_frac: float,
    run: RunConfig,
    seed: int,
    propagate_delay: float = 0.0,
    remove_broadcast: bool = True,
) -> ExperimentResult:
    workload = YCSBWorkload(
        YCSBConfig(num_keys=num_keys, read_only_fraction=ro_frac)
    )
    return run_experiment(
        protocol,
        workload,
        _cluster_config(
            num_nodes, seed, propagate_delay, remove_broadcast=remove_broadcast
        ),
        run,
        params={
            "nodes": num_nodes,
            "keys": num_keys,
            "ro": ro_frac,
            "delay": propagate_delay,
        },
    )


def _run_tpcc(
    protocol: str,
    num_nodes: int,
    warehouses_per_node: int,
    ro_frac: float,
    run: RunConfig,
    seed: int,
    propagate_delay: float = 0.0,
    tpcc_sizing: Optional[TPCCConfig] = None,
) -> ExperimentResult:
    sizing = tpcc_sizing or TPCCConfig()
    import dataclasses

    config = dataclasses.replace(
        sizing,
        num_warehouses=num_nodes * warehouses_per_node,
        read_only_fraction=ro_frac,
    )
    workload = TPCCWorkload(config, num_nodes=num_nodes, seed=seed)
    return run_experiment(
        protocol,
        workload,
        _cluster_config(num_nodes, seed, propagate_delay),
        run,
        directory=tpcc_directory(num_nodes),
        params={
            "nodes": num_nodes,
            "w_per_node": warehouses_per_node,
            "ro": ro_frac,
            "delay": propagate_delay,
        },
    )


# ----------------------------------------------------------------------
# Figure 5: YCSB throughput vs number of nodes
# ----------------------------------------------------------------------
def figure5_ycsb_throughput(
    nodes: Sequence[int] = (5, 10, 15, 20),
    key_counts: Sequence[int] = (50_000, 500_000),
    ro_fracs: Sequence[float] = (0.2, 0.5),
    protocols: Sequence[str] = ALL_PROTOCOLS,
    run: RunConfig = RunConfig(duration=0.04, warmup=0.012),
    seed: int = 1,
) -> List[Dict[str, object]]:
    """Throughput (KTxs/s) while varying nodes, keys, and %read-only."""
    rows = []
    for ro in ro_fracs:
        for keys in key_counts:
            for n in nodes:
                for protocol in protocols:
                    result = _run_ycsb(protocol, n, keys, ro, run, seed)
                    rows.append(
                        {
                            "figure": "5a" if ro == ro_fracs[0] else "5b",
                            "ro": ro,
                            "keys": keys,
                            "nodes": n,
                            "protocol": protocol,
                            "throughput_ktps": result.throughput_ktps,
                            "abort_rate": result.abort_rate,
                        }
                    )
    return rows


# ----------------------------------------------------------------------
# Figure 6: anti-dependencies collected at prepare (FW-KV)
# ----------------------------------------------------------------------
def figure6_antidep(
    ro_fracs: Sequence[float] = (0.2, 0.5, 0.8),
    key_counts: Sequence[int] = (50_000, 100_000, 500_000),
    num_nodes: int = 20,
    run: RunConfig = RunConfig(duration=0.04, warmup=0.012),
    seed: int = 1,
) -> List[Dict[str, object]]:
    """Mean size of the VAS set collected by FW-KV update transactions.

    Runs with the paper-literal Remove scope (``remove_broadcast=False``):
    identifiers propagated to nodes the reader never contacted are not
    garbage-collected, so repeated overwrites inherit them transitively --
    the effect behind the paper's "sharp jump" of collected sizes as the
    update fraction grows.
    """
    rows = []
    for keys in key_counts:
        for ro in ro_fracs:
            result = _run_ycsb(
                "fwkv", num_nodes, keys, ro, run, seed, remove_broadcast=False
            )
            rows.append(
                {
                    "figure": "6",
                    "keys": keys,
                    "ro": ro,
                    "mean_antidep": result.mean_antidep,
                    "max_antidep": result.metrics["antidep_collected"]["max"],
                    "samples": result.metrics["antidep_collected"]["count"],
                }
            )
    return rows


# ----------------------------------------------------------------------
# Figure 7: YCSB abort rate with delayed Propagate messages
# ----------------------------------------------------------------------
def figure7_ycsb_abort_delay(
    key_counts: Sequence[int] = (50_000, 100_000, 500_000),
    ro_fracs: Sequence[float] = (0.2, 0.5),
    num_nodes: int = 20,
    delay: float = PROPAGATE_DELAY,
    run: RunConfig = RunConfig(duration=0.04, warmup=0.012),
    seed: int = 1,
    include_undelayed: bool = False,
) -> List[Dict[str, object]]:
    """Update-transaction abort rate with Propagate delayed by 1 ms."""
    rows = []
    delays = [delay] + ([0.0] if include_undelayed else [])
    for keys in key_counts:
        for ro in ro_fracs:
            for propagate_delay in delays:
                for protocol in PSI_PROTOCOLS:
                    result = _run_ycsb(
                        protocol, num_nodes, keys, ro, run, seed,
                        propagate_delay=propagate_delay,
                    )
                    rows.append(
                        {
                            "figure": "7",
                            "keys": keys,
                            "ro": ro,
                            "delayed": propagate_delay > 0,
                            "protocol": protocol,
                            "abort_rate": result.abort_rate,
                            "throughput_ktps": result.throughput_ktps,
                        }
                    )
    return rows


# ----------------------------------------------------------------------
# Figure 8: TPC-C throughput vs number of nodes
# ----------------------------------------------------------------------
def figure8_tpcc_throughput(
    nodes: Sequence[int] = (5, 10, 15, 20),
    warehouses_per_node: Sequence[int] = (16, 32),
    ro_fracs: Sequence[float] = (0.2, 0.5),
    protocols: Sequence[str] = ALL_PROTOCOLS,
    run: RunConfig = RunConfig(duration=0.08, warmup=0.02),
    seed: int = 1,
    tpcc_sizing: Optional[TPCCConfig] = None,
) -> List[Dict[str, object]]:
    """TPC-C throughput varying nodes and warehouses per node."""
    rows = []
    for ro in ro_fracs:
        for w_per_node in warehouses_per_node:
            for n in nodes:
                for protocol in protocols:
                    result = _run_tpcc(
                        protocol, n, w_per_node, ro, run, seed,
                        tpcc_sizing=tpcc_sizing,
                    )
                    rows.append(
                        {
                            "figure": "8a" if ro == ro_fracs[0] else "8b",
                            "ro": ro,
                            "w_per_node": w_per_node,
                            "nodes": n,
                            "protocol": protocol,
                            "throughput_ktps": result.throughput_ktps,
                            "abort_rate": result.abort_rate,
                        }
                    )
    return rows


# ----------------------------------------------------------------------
# Figure 9a: TPC-C abort rate with delayed Propagate messages
# ----------------------------------------------------------------------
def figure9a_tpcc_abort_delay(
    warehouses_per_node: Sequence[int] = (16, 32),
    num_nodes: int = 20,
    ro_frac: float = 0.2,
    delay: float = PROPAGATE_DELAY,
    run: RunConfig = RunConfig(duration=0.08, warmup=0.02),
    seed: int = 1,
    tpcc_sizing: Optional[TPCCConfig] = None,
) -> List[Dict[str, object]]:
    """TPC-C abort rate at 20 nodes with Propagate delayed by 1 ms."""
    rows = []
    for w_per_node in warehouses_per_node:
        for protocol in PSI_PROTOCOLS:
            result = _run_tpcc(
                protocol, num_nodes, w_per_node, ro_frac, run, seed,
                propagate_delay=delay, tpcc_sizing=tpcc_sizing,
            )
            rows.append(
                {
                    "figure": "9a",
                    "w_per_node": w_per_node,
                    "protocol": protocol,
                    "abort_rate": result.abort_rate,
                    "throughput_ktps": result.throughput_ktps,
                }
            )
    return rows


# ----------------------------------------------------------------------
# Figure 9b: FW-KV slowdown vs Walter, varying warehouses per node
# ----------------------------------------------------------------------
def figure9b_slowdown(
    warehouses_per_node: Sequence[int] = (8, 16, 32),
    num_nodes: int = 20,
    ro_fracs: Sequence[float] = (0.2, 0.5),
    run: RunConfig = RunConfig(duration=0.08, warmup=0.02),
    seed: int = 1,
    tpcc_sizing: Optional[TPCCConfig] = None,
) -> List[Dict[str, object]]:
    """Throughput slowdown of FW-KV relative to Walter (percent)."""
    rows = []
    for ro in ro_fracs:
        for w_per_node in warehouses_per_node:
            results = {
                protocol: _run_tpcc(
                    protocol, num_nodes, w_per_node, ro, run, seed,
                    tpcc_sizing=tpcc_sizing,
                )
                for protocol in PSI_PROTOCOLS
            }
            walter = results["walter"].throughput_ktps
            fwkv = results["fwkv"].throughput_ktps
            slowdown = 100.0 * (walter - fwkv) / walter if walter > 0 else 0.0
            rows.append(
                {
                    "figure": "9b",
                    "ro": ro,
                    "w_per_node": w_per_node,
                    "walter_ktps": walter,
                    "fwkv_ktps": fwkv,
                    "slowdown_pct": slowdown,
                }
            )
    return rows
