"""Plain-text reporting of experiment rows (the benches print these)."""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Sequence, Tuple


def format_table(
    rows: Sequence[Dict[str, object]],
    columns: Sequence[str],
    title: str = "",
) -> str:
    """Render dict rows as an aligned ASCII table."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"

    def cell(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.3f}"
        return str(value)

    table = [[cell(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(line[i]) for line in table))
        for i, col in enumerate(columns)
    ]
    header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    rule = "  ".join("-" * w for w in widths)
    body = "\n".join(
        "  ".join(line[i].ljust(widths[i]) for i in range(len(columns)))
        for line in table
    )
    parts = [title, header, rule, body] if title else [header, rule, body]
    return "\n".join(parts)


def group_series(
    rows: Iterable[Dict[str, object]],
    x: str,
    y: str,
    group: Callable[[Dict[str, object]], str],
) -> Dict[str, List[Tuple[object, object]]]:
    """Turn rows into plot-like ``{series label: [(x, y), ...]}`` data."""
    series: Dict[str, List[Tuple[object, object]]] = {}
    for row in rows:
        series.setdefault(group(row), []).append((row[x], row[y]))
    for points in series.values():
        points.sort(key=lambda pair: pair[0])
    return series


def ascii_chart(
    series: Dict[str, List[Tuple[object, float]]],
    width: int = 40,
    title: str = "",
    value_format: str = "{:.1f}",
) -> str:
    """Horizontal bar chart of grouped series (terminal-friendly).

    ``series`` is the output of :func:`group_series`: one labelled list of
    ``(x, y)`` points per competitor.  Bars are scaled to the global
    maximum so relative magnitudes -- who wins, by what factor -- are
    visible at a glance.
    """
    points = [
        (label, x, float(y))
        for label, pairs in series.items()
        for x, y in pairs
    ]
    if not points:
        return f"{title}\n(no data)" if title else "(no data)"
    peak = max(y for _label, _x, y in points) or 1.0
    label_width = max(len(str(label)) for label in series)
    x_width = max(len(str(x)) for _label, x, _y in points)

    lines = [title] if title else []
    for label in series:
        for x, y in series[label]:
            bar = "#" * max(1, round(width * float(y) / peak)) if y > 0 else ""
            lines.append(
                f"{str(label):<{label_width}}  {str(x):>{x_width}}  "
                f"|{bar:<{width}}| {value_format.format(float(y))}"
            )
    return "\n".join(lines)


def relative_gap(baseline: float, other: float) -> float:
    """Fractional shortfall of ``other`` below ``baseline`` (0 if faster)."""
    if baseline <= 0:
        return 0.0
    return max(0.0, (baseline - other) / baseline)
