"""Fault injection: nemesis process and declarative fault schedules."""

from repro.faults.nemesis import Nemesis
from repro.faults.schedules import (
    CRASH,
    HEAL,
    PARTITION,
    RESTART,
    FaultEvent,
    crash_cycle,
    ordered,
    partition_cycle,
    random_schedule,
    staggered_crashes,
)

__all__ = [
    "Nemesis",
    "FaultEvent",
    "CRASH",
    "RESTART",
    "PARTITION",
    "HEAL",
    "crash_cycle",
    "partition_cycle",
    "staggered_crashes",
    "random_schedule",
    "ordered",
]
