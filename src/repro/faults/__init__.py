"""Fault injection: nemesis process and declarative fault schedules."""

from repro.faults.nemesis import DownWindow, Nemesis
from repro.faults.schedules import (
    CRASH,
    CRASH_DURABLE,
    HEAL,
    PARTITION,
    RESTART,
    FaultEvent,
    backup_lag_schedule,
    crash_cycle,
    durable_crash_cycle,
    failover_schedule,
    ordered,
    partition_cycle,
    random_schedule,
    shard_migration_schedule,
    staggered_crashes,
)

__all__ = [
    "Nemesis",
    "DownWindow",
    "FaultEvent",
    "CRASH",
    "CRASH_DURABLE",
    "RESTART",
    "PARTITION",
    "HEAL",
    "backup_lag_schedule",
    "crash_cycle",
    "durable_crash_cycle",
    "failover_schedule",
    "partition_cycle",
    "staggered_crashes",
    "random_schedule",
    "shard_migration_schedule",
    "ordered",
]
