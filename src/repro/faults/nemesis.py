"""The nemesis: a simulated process that injects faults on schedule.

Named after Jepsen's fault-injecting actor, the nemesis runs *inside* the
simulation as an ordinary process, so fault timing composes with virtual
time exactly like client and protocol activity -- same seed, same faults,
same interleaving, every run.

Usage::

    cluster = Cluster("fwkv", config)
    nemesis = Nemesis(cluster)
    nemesis.start(crash_cycle(node=1, at=2e-3, down_for=4e-3))
    ...spawn clients...
    cluster.run(until=stop_time)

Two crash flavours:

* :data:`~repro.faults.schedules.CRASH` is network-level (see
  ``Network.crash``): in-flight and future traffic drops, volatile state
  survives, and the matching RESTART simply reconnects.
* :data:`~repro.faults.schedules.CRASH_DURABLE` additionally freezes the
  node's write-ahead log at the crash instant; the matching RESTART wipes
  the node's volatile state (store, ``siteVC``, prepared table) and
  spawns WAL replay + recovery (``durability.wal_enabled`` required).

Every durable down window is accounted in a :class:`DownWindow`: which
messages the fault destroyed, by drop reason and -- for Propagate traffic
-- by exact ``(origin, seq_no)``, so tests can assert precisely which
clock advances anti-entropy must repair.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.faults.schedules import (
    CRASH,
    CRASH_DURABLE,
    HEAL,
    PARTITION,
    RESTART,
    FaultEvent,
    ordered,
)
from repro.net.message import MessageType


@dataclass
class DownWindow:
    """Accounting for one durable crash's down window at one node."""

    node: int
    started_at: float
    ended_at: Optional[float] = None
    #: Drop-reason -> count for messages to/from the node while down.
    drops_by_reason: Counter = field(default_factory=Counter)
    #: origin -> sorted sequence numbers of Propagates the node missed.
    lost_propagates: Dict[int, List[int]] = field(default_factory=dict)
    #: The recovery process spawned at restart (join it to await rebuild).
    recovery: Optional[object] = None
    #: Shards promoted away (cluster-wide ``failovers_completed`` delta)
    #: while this window was open -- the failover work the crash caused.
    promotions: int = 0
    #: Index into the nemesis drop log where this window opened.
    _log_start: int = 0

    @property
    def closed(self) -> bool:
        return self.ended_at is not None


class Nemesis:
    """Applies a :class:`FaultEvent` schedule to a cluster's network."""

    def __init__(self, cluster) -> None:
        self.cluster = cluster
        self.network = cluster.network
        self.sim = cluster.sim
        self.tracer = cluster.tracer
        #: Events already applied, in application order (for assertions).
        self.applied: List[FaultEvent] = []
        #: RESTART events applied (both crash flavours).
        self.restart_count = 0
        #: One record per durable crash, in crash order.
        self.down_windows: List[DownWindow] = []
        #: node -> its currently-open durable window.
        self._durable_down: Dict[int, DownWindow] = {}
        #: directed link -> (cut time, partition-drop counter at the cut),
        #: for the per-window accounting the heal event reports.
        self._partition_windows: Dict[Tuple[int, int], Tuple[float, int]] = {}
        #: One ``(a, b, duration, dropped, dropped_reverse)`` record per
        #: heal, in heal order -- what each partition window destroyed.
        #: ``dropped_reverse`` is None while the reverse direction is
        #: still cut (an asymmetric heal cannot account it yet).
        self.heal_reports: List[Tuple] = []
        #: Envelope drop feed, attached to the network while at least one
        #: durable window is open.
        self._drop_log: List[Tuple[str, object]] = []
        #: One ``(node, promotions, restarted_at)`` record per restart of
        #: a crashed node, in restart order: how many shard promotions
        #: (``failovers_completed`` delta) the down window triggered.
        self.promotion_reports: List[Tuple[int, int, float]] = []
        #: node -> ``failovers_completed`` at its (first) crash instant.
        self._failover_base: Dict[int, int] = {}

    def start(self, events: Iterable[FaultEvent]):
        """Spawn the nemesis process driving ``events``; returns it."""
        return self.cluster.spawn(self._run(ordered(events)), name="nemesis")

    def _run(self, events: List[FaultEvent]):
        for event in events:
            if event.at > self.sim.now:
                yield self.sim.timeout(event.at - self.sim.now)
            self.apply(event)

    def apply(self, event: FaultEvent) -> None:
        """Apply one fault transition immediately (also usable directly)."""
        if event.kind == CRASH:
            self._note_crash(event.a)
            self.network.crash(event.a)
        elif event.kind == CRASH_DURABLE:
            self._note_crash(event.a)
            self._crash_durable(event.a)
        elif event.kind == RESTART:
            self._restart(event.a)
        elif event.kind == PARTITION:
            self._partition(event.a, event.b)
        elif event.kind == HEAL:
            self.applied.append(event)
            self._heal(event.a, event.b)
            return  # _heal emits the enriched nemesis_heal trace event
        else:  # pragma: no cover - FaultEvent validates kinds
            raise ValueError(f"unknown fault kind {event.kind!r}")
        self.applied.append(event)
        self.tracer.emit(event.a, f"nemesis_{event.kind}", peer=event.b)

    # ------------------------------------------------------------------
    # Partition-window accounting
    # ------------------------------------------------------------------
    def _partition(self, a: int, b: int) -> None:
        self.network.partition(a, b)
        if (a, b) not in self._partition_windows:
            self._partition_windows[(a, b)] = (
                self.sim.now,
                self.network.stats.partition_drops[(a, b)],
            )

    def _heal(self, a: int, b: int) -> None:
        """Heal ``a -> b`` and report what the window destroyed.

        The trace event carries the window's duration and the messages
        the cut dropped in each direction, so a healed run's trace shows
        exactly how much state anti-entropy has to repair.  The reverse
        count reads the reverse window's running total without closing it
        -- in the common symmetric heal both directions stop dropping at
        the same instant, so the total is already final; with the reverse
        still cut it is an honest "destroyed so far".  ``0`` means the
        reverse direction was never cut.
        """
        self.network.heal(a, b)
        drops = self.network.stats.partition_drops
        window = self._partition_windows.pop((a, b), None)
        started, base = (
            window if window is not None else (self.sim.now, drops[(a, b)])
        )
        duration = self.sim.now - started
        dropped = drops[(a, b)] - base
        reverse = self._partition_windows.get((b, a))
        dropped_reverse = (
            drops[(b, a)] - reverse[1] if reverse is not None else 0
        )
        self.heal_reports.append((a, b, duration, dropped, dropped_reverse))
        self.tracer.emit(
            a, "nemesis_heal", peer=b, duration=duration,
            dropped=dropped, dropped_reverse=dropped_reverse,
        )

    # ------------------------------------------------------------------
    # Durable crash machinery
    # ------------------------------------------------------------------
    def _crash_durable(self, node_id: int) -> None:
        self.network.crash(node_id)
        self.cluster.nodes[node_id].crash_durably()
        if node_id not in self._durable_down:
            if self.network.drop_log is None:
                self.network.drop_log = self._drop_log
            window = DownWindow(
                node=node_id,
                started_at=self.sim.now,
                _log_start=len(self._drop_log),
            )
            self._durable_down[node_id] = window
            self.down_windows.append(window)

    def _note_crash(self, node_id: int) -> None:
        """Snapshot the cluster's promotion counter at the crash instant.

        The matching restart diffs against it: with failover armed, a
        crashed primary's shards promote to their freshest backups while
        it is down, and the delta is the promotion work this fault
        caused (heal accounting for failover, mirroring the partition
        windows' drop accounting).
        """
        self._failover_base.setdefault(
            node_id, self.cluster.metrics.failovers_completed
        )

    def _restart(self, node_id: int) -> None:
        self.network.restart(node_id)
        self.restart_count += 1
        base = self._failover_base.pop(node_id, None)
        promotions = (
            self.cluster.metrics.failovers_completed - base
            if base is not None
            else 0
        )
        if base is not None:
            self.promotion_reports.append(
                (node_id, promotions, self.sim.now)
            )
            self.tracer.emit(
                node_id, "nemesis_promotions", shards=promotions
            )
        window = self._durable_down.pop(node_id, None)
        if window is None:
            return  # plain (volatile-state-intact) restart
        window.promotions = promotions
        window.ended_at = self.sim.now
        self._account_window(window)
        if not self._durable_down and self.network.drop_log is self._drop_log:
            self.network.drop_log = None
        window.recovery = self.cluster.nodes[node_id].begin_recovery()

    def _account_window(self, window: DownWindow) -> None:
        """Summarise what the fault destroyed while ``window`` was open."""
        node_id = window.node
        for reason, envelope in self._drop_log[window._log_start:]:
            if envelope.src != node_id and envelope.dst != node_id:
                continue
            window.drops_by_reason[reason] += 1
            if (
                envelope.dst == node_id
                and envelope.msg_type == MessageType.PROPAGATE
            ):
                body = envelope.payload
                seq_nos = (
                    body.seq_nos if body.seq_nos is not None else (body.seq_no,)
                )
                window.lost_propagates.setdefault(body.origin, []).extend(
                    seq_nos
                )
        for seq_nos in window.lost_propagates.values():
            seq_nos.sort()
