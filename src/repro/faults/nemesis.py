"""The nemesis: a simulated process that injects faults on schedule.

Named after Jepsen's fault-injecting actor, the nemesis runs *inside* the
simulation as an ordinary process, so fault timing composes with virtual
time exactly like client and protocol activity -- same seed, same faults,
same interleaving, every run.

Usage::

    cluster = Cluster("fwkv", config)
    nemesis = Nemesis(cluster)
    nemesis.start(crash_cycle(node=1, at=2e-3, down_for=4e-3))
    ...spawn clients...
    cluster.run(until=stop_time)

Crash semantics are network-level (see ``Network.crash``): a crashed
node's in-flight and future traffic drops, modelling a crash-stop with
loss of volatile connectivity.  Restart reconnects the node with its
state intact; durable state loss / recovery is a roadmap item.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.faults.schedules import (
    CRASH,
    HEAL,
    PARTITION,
    RESTART,
    FaultEvent,
    ordered,
)


class Nemesis:
    """Applies a :class:`FaultEvent` schedule to a cluster's network."""

    def __init__(self, cluster) -> None:
        self.cluster = cluster
        self.network = cluster.network
        self.sim = cluster.sim
        self.tracer = cluster.tracer
        #: Events already applied, in application order (for assertions).
        self.applied: List[FaultEvent] = []

    def start(self, events: Iterable[FaultEvent]):
        """Spawn the nemesis process driving ``events``; returns it."""
        return self.cluster.spawn(self._run(ordered(events)), name="nemesis")

    def _run(self, events: List[FaultEvent]):
        for event in events:
            if event.at > self.sim.now:
                yield self.sim.timeout(event.at - self.sim.now)
            self.apply(event)

    def apply(self, event: FaultEvent) -> None:
        """Apply one fault transition immediately (also usable directly)."""
        if event.kind == CRASH:
            self.network.crash(event.a)
        elif event.kind == RESTART:
            self.network.restart(event.a)
        elif event.kind == PARTITION:
            self.network.partition(event.a, event.b)
        elif event.kind == HEAL:
            self.network.heal(event.a, event.b)
        else:  # pragma: no cover - FaultEvent validates kinds
            raise ValueError(f"unknown fault kind {event.kind!r}")
        self.applied.append(event)
        self.tracer.emit(event.a, f"nemesis_{event.kind}", peer=event.b)
