"""Declarative fault schedules for the nemesis.

A schedule is a plain list of :class:`FaultEvent` records, each naming a
virtual time and a primitive fault transition.  Builders below compose the
common shapes (crash/restart cycles, partition/heal windows, seeded random
mixes); tests can also hand-write event lists for precisely-timed
scenarios such as crash-during-prepare.

Everything is deterministic: builders that randomise draw from a seeded
stream (:func:`repro.sim.rng.make_rng`), so a schedule -- and therefore an
entire faulty run -- is a pure function of its seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

from repro.sim.rng import make_rng

#: Primitive fault transitions the nemesis knows how to apply.
CRASH = "crash"
#: Crash with durable-state loss: the node's store, ``siteVC``, and
#: prepared table are wiped, and the matching RESTART rebuilds them from
#: the write-ahead log (requires ``durability.wal_enabled``).
CRASH_DURABLE = "crash_durable"
RESTART = "restart"
PARTITION = "partition"
HEAL = "heal"

KINDS = frozenset({CRASH, CRASH_DURABLE, RESTART, PARTITION, HEAL})


@dataclass(frozen=True)
class FaultEvent:
    """One fault transition at a point in virtual time.

    ``kind`` is one of :data:`CRASH`/:data:`RESTART` (``a`` is the node)
    or :data:`PARTITION`/:data:`HEAL` (the *directed* link ``a -> b``).
    Builders emit both directions for symmetric splits.
    """

    at: float
    kind: str
    a: int
    b: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.kind in (PARTITION, HEAL) and self.b is None:
            raise ValueError(f"{self.kind} events need both link endpoints")
        if self.at < 0:
            raise ValueError(f"fault time must be non-negative, got {self.at}")


def ordered(events: Iterable[FaultEvent]) -> List[FaultEvent]:
    """Events sorted by time (ties keep kind/endpoint order for stability)."""
    return sorted(events, key=lambda ev: (ev.at, ev.kind, ev.a, ev.b or -1))


# ----------------------------------------------------------------------
# Builders
# ----------------------------------------------------------------------
def crash_cycle(node: int, at: float, down_for: float) -> List[FaultEvent]:
    """Crash ``node`` at ``at`` and restart it ``down_for`` later."""
    if down_for <= 0:
        raise ValueError("down_for must be positive")
    return [
        FaultEvent(at, CRASH, node),
        FaultEvent(at + down_for, RESTART, node),
    ]


def durable_crash_cycle(
    node: int, at: float, down_for: float
) -> List[FaultEvent]:
    """Durably crash ``node`` at ``at`` and restart it ``down_for`` later.

    Unlike :func:`crash_cycle` the node loses its volatile state; the
    restart wipes it and rebuilds from the WAL (recovery runs after the
    restart instant, so allow settle time before asserting on state).
    """
    if down_for <= 0:
        raise ValueError("down_for must be positive")
    return [
        FaultEvent(at, CRASH_DURABLE, node),
        FaultEvent(at + down_for, RESTART, node),
    ]


def partition_cycle(
    a: int,
    b: int,
    at: float,
    duration: float,
    symmetric: bool = True,
) -> List[FaultEvent]:
    """Cut the ``a``/``b`` link at ``at`` and heal it ``duration`` later.

    ``symmetric`` (default) cuts both directions; otherwise only
    ``a -> b`` drops, leaving the reverse path up (an asymmetric fault the
    reliable-channel model cannot express at all).
    """
    if duration <= 0:
        raise ValueError("duration must be positive")
    events = [
        FaultEvent(at, PARTITION, a, b),
        FaultEvent(at + duration, HEAL, a, b),
    ]
    if symmetric:
        events += [
            FaultEvent(at, PARTITION, b, a),
            FaultEvent(at + duration, HEAL, b, a),
        ]
    return ordered(events)


def isolate_cycle(
    node: int,
    node_ids: Sequence[int],
    at: float,
    duration: float,
) -> List[FaultEvent]:
    """Fully isolate ``node`` from every other node, then heal.

    Cuts both directions of every link between ``node`` and the rest of
    ``node_ids`` at ``at`` and heals them all ``duration`` later -- the
    canonical heal-without-restart scenario: the node keeps its volatile
    state, sleeps through the cluster's commits, and background
    anti-entropy must close the gap after the heal.
    """
    if duration <= 0:
        raise ValueError("duration must be positive")
    events: List[FaultEvent] = []
    for peer in node_ids:
        if peer == node:
            continue
        events += partition_cycle(node, peer, at, duration)
    return ordered(events)


def truncation_gap_schedule(
    victim: int,
    node_ids: Sequence[int],
    at: float,
    duration: float,
) -> List[FaultEvent]:
    """Isolate ``victim`` long enough to fall below the WAL floor.

    The canonical snapshot-transfer scenario: while ``victim`` is cut
    off, the survivors keep committing, checkpoint, and -- once their
    mutual frontier evidence covers the checkpoint -- truncate their
    WALs and prune their decision logs.  After the heal the victim's
    frontier sits *below* the survivors' ``pruned_floor``, so gossip's
    record-by-record push can no longer repair it; the next digest
    exchange must trigger a checkpoint snapshot transfer instead
    (see :class:`repro.config.SnapshotTransferConfig`).

    Identical event shape to :func:`isolate_cycle`; the distinct builder
    names the intent and anchors the integration tests and docs.
    """
    return isolate_cycle(victim, node_ids, at, duration)


def view_change_partition_schedule(
    subject: int,
    peers: Sequence[int],
    at: float,
    duration: float,
) -> List[FaultEvent]:
    """Cut ``subject`` off from ``peers`` across a view-change window.

    The reconfiguration analogue of :func:`isolate_cycle`, scoped to a
    peer subset: a joiner partitioned from part of the old membership
    mid-bootstrap, or a survivor that sleeps through a VIEW_COMMIT
    fan-out and must re-learn the view from gossip's commit piggyback.
    Both directions of every listed link are cut and later healed.
    """
    if duration <= 0:
        raise ValueError("duration must be positive")
    events: List[FaultEvent] = []
    for peer in peers:
        if peer == subject:
            continue
        events += partition_cycle(subject, peer, at, duration)
    return ordered(events)


def reconfiguration_chaos_schedule(
    subject: int,
    coordinator: int,
    peers: Sequence[int],
    at: float,
    window: float,
    *,
    durable: bool = False,
) -> List[FaultEvent]:
    """Chaos overlay for one online reconfiguration of ``subject``.

    Two overlapping faults inside the reconfiguration window: the
    ``subject`` (joiner or decommission victim) is partitioned from its
    ``peers`` for the first half, and the ``coordinator`` (the member
    expected to drive the view change, or a transaction coordinator
    racing the drain) crash-cycles across the middle half.  The view
    protocol must route proposals around the crashed coordinator and
    converge once the partition heals; drivers that cannot finish must
    abandon or revert cleanly.  ``durable`` selects a durable crash
    (state wiped, WAL replayed) over a volatile one.
    """
    if window <= 0:
        raise ValueError("window must be positive")
    events = view_change_partition_schedule(
        subject, peers, at, window / 2
    )
    cycle = durable_crash_cycle if durable else crash_cycle
    events += cycle(coordinator, at + window / 4, window / 2)
    return ordered(events)


def shard_migration_schedule(
    donor: int,
    recipient: int,
    at: float,
    window: float,
    *,
    crash_donor: bool = False,
    crash_recipient: bool = False,
    partition: bool = False,
    down_for: Optional[float] = None,
) -> List[FaultEvent]:
    """Chaos overlay for one live shard migration (docs/sharding.md).

    The migration starting at ``at`` fences, drains, and streams across
    ``window``; the selected faults land a quarter of the way in, when
    the shard-scoped snapshot stream is in flight:

    - ``crash_donor``: the sender dies mid-stream, so the in-flight
      chunks and the cutover settle against a dead peer.
    - ``crash_recipient``: the receiver dies before the final chunk, so
      its install never happens and the flip must not either.
    - ``partition``: the donor-recipient link is cut across the
      cutover; offers/chunks/acks are lost in both directions.

    Every fault heals after ``down_for`` (default half the window), and
    the failed migration must leave ownership, chains, and foreground
    traffic untouched -- the rebalancer unfences without flipping and
    the move is simply retried later.
    """
    if window <= 0:
        raise ValueError("window must be positive")
    if donor == recipient:
        raise ValueError("donor and recipient must differ")
    down = window / 2 if down_for is None else down_for
    events: List[FaultEvent] = []
    if crash_donor:
        events += crash_cycle(donor, at + window / 4, down)
    if crash_recipient:
        events += crash_cycle(recipient, at + window / 4, down)
    if partition:
        events += partition_cycle(donor, recipient, at + window / 4, down)
    return ordered(events)


def failover_schedule(
    primary: int,
    at: float,
    *,
    down_for: Optional[float] = None,
) -> List[FaultEvent]:
    """Crash ``primary`` so the failover driver promotes its shards.

    The canonical replication scenario (docs/replication.md): a
    network-level crash of a shard primary leaves its replication
    streams silent, the accrual detectors at a majority of live peers
    classify it dead, and the :class:`~repro.replication.shard.
    FailoverDriver` promotes the freshest backup of every shard it
    owned.  With ``down_for`` the node restarts that much later -- a
    deposed primary rejoins retired, its shards stay with their
    promoted successors, and the repair loop may re-enlist it as a
    backup; without it the crash is permanent.
    """
    events = [FaultEvent(at, CRASH, primary)]
    if down_for is not None:
        if down_for <= 0:
            raise ValueError("down_for must be positive")
        events.append(FaultEvent(at + down_for, RESTART, primary))
    return ordered(events)


def backup_lag_schedule(
    primary: int,
    backup: int,
    at: float,
    duration: float,
) -> List[FaultEvent]:
    """Cut the ``primary``/``backup`` link so the backup falls behind.

    While the link is down the primary's replication pump retries into
    the void: sync-mode commits degrade to async after ``sync_timeout``
    (counted in ``replication_sync_degraded``), the backup's replicated
    frontier stalls, and read-forwarding must route reads it can no
    longer prove fresh back to the primary.  After the heal the stream
    retransmits from the last acknowledged record and the backup
    converges without a bootstrap.  Identical event shape to
    :func:`partition_cycle`; the distinct builder names the intent.
    """
    if primary == backup:
        raise ValueError("primary and backup must differ")
    return partition_cycle(primary, backup, at, duration)


def staggered_crashes(
    node_ids: Sequence[int],
    start: float,
    down_for: float,
    gap: float,
) -> List[FaultEvent]:
    """One crash/restart cycle per node, ``gap`` apart, never overlapping.

    ``gap`` must exceed ``down_for`` so at most one node is down at a time
    (a minority-failure schedule).
    """
    if gap <= down_for:
        raise ValueError("gap must exceed down_for (one node down at a time)")
    events: List[FaultEvent] = []
    for index, node in enumerate(node_ids):
        events += crash_cycle(node, start + index * gap, down_for)
    return ordered(events)


def random_schedule(
    seed: int,
    node_ids: Sequence[int],
    start: float,
    end: float,
    mean_gap: float,
    down_for: float,
    partition_fraction: float = 0.5,
    durable_crashes: bool = False,
) -> List[FaultEvent]:
    """A seeded random mix of crash cycles and symmetric partition windows.

    Fault injections arrive with exponentially-distributed gaps of mean
    ``mean_gap`` between ``start`` and ``end``; each is a crash/restart of
    a random node, or (with probability ``partition_fraction``) a
    partition/heal of a random node pair.  Every fault heals after
    ``down_for``, and the returned schedule always ends fully healed.
    With ``durable_crashes`` the crashes wipe volatile state and recover
    from the WAL (``durability.wal_enabled`` required).
    """
    if len(node_ids) < 2:
        raise ValueError("random_schedule needs at least two nodes")
    rng = make_rng(seed, "nemesis-schedule")
    crash_builder = durable_crash_cycle if durable_crashes else crash_cycle
    events: List[FaultEvent] = []
    at = start
    while True:
        at += rng.expovariate(1.0 / mean_gap)
        if at >= end:
            break
        if rng.random() < partition_fraction:
            a, b = rng.sample(list(node_ids), 2)
            events += partition_cycle(a, b, at, down_for)
        else:
            node = rng.choice(list(node_ids))
            events += crash_builder(node, at, down_for)
    return ordered(events)
