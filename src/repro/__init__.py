"""FW-KV reproduction: a PSI transactional key-value store with fresh reads.

This package reproduces *FW-KV: Improving Read Guarantees in PSI*
(Javidi Kishi & Palmieri, Middleware 2021): the FW-KV concurrency control,
the Walter and 2PC baselines it is evaluated against, the YCSB and TPC-C
workloads, and the full benchmark harness for the paper's figures -- all on
top of a deterministic discrete-event simulation of a multi-node cluster.

Quickstart::

    from repro import Cluster, ClusterConfig

    cluster = Cluster("fwkv", ClusterConfig(num_nodes=4))
    cluster.load("account:alice", 100)
    cluster.load("account:bob", 0)

    def transfer():
        node = cluster.node(0)
        txn = node.begin(is_read_only=False)
        balance = yield from node.read(txn, "account:alice")
        node.write(txn, "account:alice", balance - 10)
        node.write(txn, "account:bob", 10)
        committed = yield from node.commit(txn)
        return committed

    assert cluster.run_process(transfer())
"""

from repro.config import (
    CheckpointConfig,
    ClusterConfig,
    CostModel,
    DurabilityConfig,
    HealingConfig,
    NetworkConfig,
    RpcConfig,
    RunConfig,
)
from repro.system import PROTOCOLS, Cluster

__version__ = "1.0.0"

__all__ = [
    "CheckpointConfig",
    "Cluster",
    "ClusterConfig",
    "CostModel",
    "DurabilityConfig",
    "HealingConfig",
    "NetworkConfig",
    "PROTOCOLS",
    "RpcConfig",
    "RunConfig",
    "__version__",
]
