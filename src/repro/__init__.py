"""FW-KV reproduction: a PSI transactional key-value store with fresh reads.

This package reproduces *FW-KV: Improving Read Guarantees in PSI*
(Javidi Kishi & Palmieri, Middleware 2021): the FW-KV concurrency control,
the Walter and 2PC baselines it is evaluated against, the YCSB and TPC-C
workloads, and the full benchmark harness for the paper's figures -- all on
top of a deterministic discrete-event simulation of a multi-node cluster.

Quickstart::

    from repro import Cluster, ClusterConfig

    cluster = Cluster("fwkv", ClusterConfig(num_nodes=4))
    cluster.load("account:alice", 100)
    cluster.load("account:bob", 0)

    def transfer(txn):
        balance = yield from txn.read("account:alice")
        txn.write("account:alice", balance - 10)
        txn.write("account:bob", 10)

    result = cluster.run_txn(transfer)
    assert result.committed

:meth:`~repro.system.Cluster.run_txn` begins the transaction, hands the
body a :class:`~repro.system.TxnHandle`, drives it, auto-commits, and
runs the simulator to quiescence.  Reads go over the simulated wire, so
they stay ``yield from``; writes buffer locally and are plain calls.
The lower-level API (``node.begin`` / ``yield from node.read`` /
``yield from node.commit`` inside a ``cluster.run_process`` generator)
remains fully supported for scripts that interleave transactions.

Every ``*Config`` dataclass round-trips through ``to_dict()`` /
``from_dict()`` for JSON serialization of experiment configs.
"""

from repro.cluster.membership import MembershipView, NodeMembership
from repro.config import (
    BatchingConfig,
    CheckpointConfig,
    ClusterConfig,
    CostModel,
    DurabilityConfig,
    HealingConfig,
    MembershipConfig,
    NetworkConfig,
    ReplicationConfig,
    RpcConfig,
    RunConfig,
    ShardingConfig,
    SnapshotTransferConfig,
    TransportConfig,
)
from repro.system import PROTOCOLS, Cluster, TxnHandle, TxnResult

__version__ = "1.4.0"

__all__ = [
    "BatchingConfig",
    "CheckpointConfig",
    "Cluster",
    "ClusterConfig",
    "CostModel",
    "DurabilityConfig",
    "HealingConfig",
    "MembershipConfig",
    "MembershipView",
    "NetworkConfig",
    "NodeMembership",
    "PROTOCOLS",
    "ReplicationConfig",
    "RpcConfig",
    "RunConfig",
    "ShardingConfig",
    "SnapshotTransferConfig",
    "TransportConfig",
    "TxnHandle",
    "TxnResult",
    "__version__",
]
