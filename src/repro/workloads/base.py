"""Workload abstractions.

A :class:`Workload` turns randomness into :class:`TxnProgram`\\ s; the
harness executes each program against a transaction through a
:class:`TxnContext`.  Programs are generator functions so transaction
logic can branch on the values it reads (TPC-C needs this), while reads
remain simulation-blocking operations.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Callable, Hashable, Iterable, Iterator, Tuple


class Rollback(Exception):
    """Raised by a transaction program to abort for business reasons.

    TPC-C's specification requires ~1% of NewOrder transactions to roll
    back upon selecting an unused item.  The client loop catches this,
    calls :meth:`BaseProtocolNode.abort`, and does *not* retry -- a
    rollback is an intended outcome, not a conflict.
    """


class TxnContext:
    """What a transaction program may do: read and write keys."""

    __slots__ = ("_node", "_txn")

    def __init__(self, node, txn) -> None:
        self._node = node
        self._txn = txn

    def read(self, key: Hashable):
        """Generator subroutine: ``value = yield from ctx.read(key)``."""
        value = yield from self._node.read(self._txn, key)
        return value

    def write(self, key: Hashable, value: object) -> None:
        self._node.write(self._txn, key, value)


class TxnProgram:
    """One transaction to execute (regenerated bodies support retries)."""

    __slots__ = ("profile", "is_read_only", "_body")

    def __init__(
        self,
        profile: str,
        is_read_only: bool,
        body: Callable[[TxnContext], Iterator],
    ) -> None:
        self.profile = profile
        self.is_read_only = is_read_only
        self._body = body

    def run(self, ctx: TxnContext):
        """Generator subroutine executing the program's operations."""
        result = yield from self._body(ctx)
        return result


class Workload(ABC):
    """A source of transaction programs plus the initial data set."""

    @abstractmethod
    def load_items(self) -> Iterable[Tuple[Hashable, object]]:
        """(key, value) pairs to install before the run."""

    @abstractmethod
    def generate(self, rng: random.Random, node_id: int) -> TxnProgram:
        """The next transaction for a client attached to ``node_id``."""

    @property
    @abstractmethod
    def name(self) -> str:
        """Short label used in reports."""
