"""YCSB ported to the transactional key-value model.

The paper's configuration (Section 5): two transaction profiles --
*update* reads two keys and writes the same two keys, *read-only* reads
two keys -- with 4-byte keys, 12-byte values, and uniform key selection.
Because updates rewrite exactly what they read, the execution is
"equivalent to an execution in which the concurrency control ensures
Serializability", which stresses snapshot freshness for update
transactions (a stale read means a failed validation).
"""

from __future__ import annotations

import random
import string
from dataclasses import dataclass, field
from typing import Iterable, List, Tuple

from repro.workloads.base import TxnContext, TxnProgram, Workload
from repro.workloads.distributions import (
    UniformChooser,
    ZipfianChooser,
    ZipfKeyGenerator,
)

READ_ONLY_PROFILE = "ycsb-ro"
UPDATE_PROFILE = "ycsb-up"

_VALUE_ALPHABET = string.ascii_letters + string.digits


@dataclass
class YCSBConfig:
    """Shape of the YCSB workload."""

    num_keys: int = 50_000
    read_only_fraction: float = 0.5
    keys_per_txn: int = 2
    value_size: int = 12
    #: "uniform" (the paper's setting), "zipfian" (YCSB scrambled,
    #: theta < 1), or "zipf" (rank-ordered, any s > 0 -- the sharding
    #: skew scenarios' heavy-tail regime; item 0 is the hottest key).
    distribution: str = "uniform"
    zipf_theta: float = 0.99
    #: Exponent for the "zipf" distribution.
    zipf_s: float = 1.1

    def __post_init__(self) -> None:
        if self.num_keys <= 0:
            raise ValueError("num_keys must be positive")
        if not 0.0 <= self.read_only_fraction <= 1.0:
            raise ValueError("read_only_fraction must be within [0, 1]")
        if self.keys_per_txn <= 0:
            raise ValueError("keys_per_txn must be positive")
        if self.distribution not in ("uniform", "zipfian", "zipf"):
            raise ValueError(f"unknown distribution {self.distribution!r}")


class YCSBWorkload(Workload):
    """Generates the paper's two YCSB transaction profiles."""

    def __init__(self, config: YCSBConfig) -> None:
        self.config = config
        if config.distribution == "uniform":
            self._chooser = UniformChooser(config.num_keys)
        elif config.distribution == "zipf":
            self._chooser = ZipfKeyGenerator(config.num_keys, config.zipf_s)
        else:
            self._chooser = ZipfianChooser(config.num_keys, config.zipf_theta)

    @property
    def name(self) -> str:
        return "ycsb"

    @staticmethod
    def key(index: int) -> str:
        # 4-byte-ish compact keys, matching the paper's tiny-key setup.
        return f"u{index}"

    def _random_value(self, rng: random.Random) -> str:
        return "".join(
            rng.choice(_VALUE_ALPHABET) for _ in range(self.config.value_size)
        )

    def load_items(self) -> Iterable[Tuple[str, str]]:
        pad = ("x" * self.config.value_size)
        for index in range(self.config.num_keys):
            yield self.key(index), pad

    def generate(self, rng: random.Random, node_id: int) -> TxnProgram:
        keys = [self.key(i) for i in self._chooser.sample(rng, self.config.keys_per_txn)]
        if rng.random() < self.config.read_only_fraction:
            return TxnProgram(READ_ONLY_PROFILE, True, self._read_only_body(keys))
        new_values = [self._random_value(rng) for _ in keys]
        return TxnProgram(UPDATE_PROFILE, False, self._update_body(keys, new_values))

    @staticmethod
    def _read_only_body(keys: List[str]):
        def body(ctx: TxnContext):
            values = []
            for key in keys:
                value = yield from ctx.read(key)
                values.append(value)
            return values

        return body

    @staticmethod
    def _update_body(keys: List[str], new_values: List[str]):
        def body(ctx: TxnContext):
            # Read-modify-write of the same keys (paper Section 5).
            for key in keys:
                yield from ctx.read(key)
            for key, value in zip(keys, new_values):
                ctx.write(key, value)

        return body
