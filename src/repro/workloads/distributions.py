"""Key-selection distributions (uniform and YCSB-style zipfian)."""

from __future__ import annotations

import bisect
import random
from typing import List


class UniformChooser:
    """Uniform choice over ``0..num_items-1``.

    The paper's evaluation uses a uniform distribution "to highlight the
    performance impact of FW-KV design" (local accesses would be fresh
    anyway); the zipfian chooser below exists for the skew extension.
    """

    def __init__(self, num_items: int) -> None:
        if num_items <= 0:
            raise ValueError("num_items must be positive")
        self.num_items = num_items

    def next(self, rng: random.Random) -> int:
        return rng.randrange(self.num_items)

    def sample(self, rng: random.Random, count: int) -> List[int]:
        """``count`` distinct indices."""
        if count > self.num_items:
            raise ValueError("cannot sample more distinct items than exist")
        return rng.sample(range(self.num_items), count)


class ZipfianChooser:
    """The standard YCSB scrambled-zipfian item chooser.

    Popularity follows a zipf law with parameter ``theta``; item ranks are
    scrambled by a multiplicative hash so popular items spread across the
    key space (and therefore across nodes).
    """

    def __init__(self, num_items: int, theta: float = 0.99) -> None:
        if num_items <= 0:
            raise ValueError("num_items must be positive")
        if not 0 < theta < 1:
            raise ValueError("theta must be in (0, 1)")
        self.num_items = num_items
        self.theta = theta
        self._zetan = self._zeta(num_items, theta)
        self._zeta2 = self._zeta(2, theta)
        self._alpha = 1.0 / (1.0 - theta)
        self._eta = (1 - (2.0 / num_items) ** (1 - theta)) / (
            1 - self._zeta2 / self._zetan
        )

    @staticmethod
    def _zeta(n: int, theta: float) -> float:
        return sum(1.0 / (i**theta) for i in range(1, n + 1))

    def next(self, rng: random.Random) -> int:
        u = rng.random()
        uz = u * self._zetan
        if uz < 1.0:
            rank = 0
        elif uz < 1.0 + 0.5**self.theta:
            rank = 1
        else:
            rank = int(self.num_items * (self._eta * u - self._eta + 1) ** self._alpha)
            rank = min(rank, self.num_items - 1)
        # Scramble so hot items are spread over the key space.
        return (rank * 0x9E3779B97F4A7C15 + 0x123456789) % self.num_items

    def sample(self, rng: random.Random, count: int) -> List[int]:
        """``count`` distinct indices (rejection sampling)."""
        if count > self.num_items:
            raise ValueError("cannot sample more distinct items than exist")
        chosen: List[int] = []
        seen = set()
        while len(chosen) < count:
            item = self.next(rng)
            if item not in seen:
                seen.add(item)
                chosen.append(item)
        return chosen


class ZipfKeyGenerator:
    """Rank-ordered zipf(s) chooser, exact for any exponent ``s > 0``.

    The sharding skew scenarios need the heavy-tailed ``s >= 1`` regime
    that :class:`ZipfianChooser`'s YCSB approximation excludes (its
    ``theta`` must stay below 1), and they need ranks *unscrambled* --
    item 0 is the hottest -- so a test can reason about exactly how much
    probability mass the top keys pin on one node.  Sampling is exact
    inverse-CDF over the finite item set: one uniform draw, one bisect.
    """

    def __init__(self, num_items: int, s: float = 1.1) -> None:
        if num_items <= 0:
            raise ValueError("num_items must be positive")
        if s <= 0:
            raise ValueError("s must be positive")
        self.num_items = num_items
        self.s = s
        total = 0.0
        cdf: List[float] = []
        for rank in range(1, num_items + 1):
            total += 1.0 / rank**s
            cdf.append(total)
        self._total = total
        self._cdf = cdf

    def probability(self, rank: int) -> float:
        """The exact probability of drawing item ``rank`` (0-based)."""
        if not 0 <= rank < self.num_items:
            raise ValueError(f"rank {rank} out of range")
        return (1.0 / (rank + 1) ** self.s) / self._total

    def next(self, rng: random.Random) -> int:
        index = bisect.bisect_right(self._cdf, rng.random() * self._total)
        return min(index, self.num_items - 1)

    def sample(self, rng: random.Random, count: int) -> List[int]:
        """``count`` distinct indices (rejection sampling)."""
        if count > self.num_items:
            raise ValueError("cannot sample more distinct items than exist")
        chosen: List[int] = []
        seen = set()
        while len(chosen) < count:
            item = self.next(rng)
            if item not in seen:
                seen.add(item)
                chosen.append(item)
        return chosen
