"""The five TPC-C transaction profiles as transaction-program bodies.

Each function returns a generator function over a
:class:`~repro.workloads.base.TxnContext`.  Access patterns follow the
spec's logic ported to whole-record key-value reads/writes; per the
paper's observation, the warehouse record is the first key every profile
touches ("the warehouse is often the first accessed key", Section 5.2),
and read-only profiles register on it -- which is what makes the
warehouse count the contention knob of Figures 8-9.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.workloads.base import Rollback, TxnContext
from repro.workloads.tpcc import schema

NEW_ORDER = "tpcc-new-order"
PAYMENT = "tpcc-payment"
DELIVERY = "tpcc-delivery"
ORDER_STATUS = "tpcc-order-status"
STOCK_LEVEL = "tpcc-stock-level"

UPDATE_PROFILES = (NEW_ORDER, PAYMENT, DELIVERY)
READ_ONLY_PROFILES = (ORDER_STATUS, STOCK_LEVEL)


def new_order_body(
    w: int,
    d: int,
    c: int,
    lines: List[Tuple[int, int, int]],
    invalid_item: bool = False,
):
    """NewOrder: place an order of ``lines`` = [(item, supply_w, qty)].

    With ``invalid_item`` the order references an unused item number and
    rolls back after the initial reads, per the spec's required ~1%
    rollback rate (clause 2.4.1.4).
    """

    def body(ctx: TxnContext):
        warehouse = yield from ctx.read(schema.warehouse_key(w))
        district = yield from ctx.read(schema.district_key(w, d))
        _customer = yield from ctx.read(schema.customer_key(w, d, c))
        if invalid_item:
            raise Rollback("NewOrder selected an unused item number")

        o_id = district["next_o_id"]
        ctx.write(
            schema.district_key(w, d), {**district, "next_o_id": o_id + 1}
        )

        total = 0.0
        for line_no, (item_id, supply_w, quantity) in enumerate(lines):
            item = yield from ctx.read(schema.item_key(item_id))
            stock = yield from ctx.read(schema.stock_key(supply_w, item_id))
            new_quantity = stock["quantity"] - quantity
            if new_quantity < 10:
                new_quantity += 91
            ctx.write(
                schema.stock_key(supply_w, item_id),
                {
                    **stock,
                    "quantity": new_quantity,
                    "ytd": stock["ytd"] + quantity,
                    "order_cnt": stock["order_cnt"] + 1,
                },
            )
            amount = quantity * item["price"]
            total += amount
            ctx.write(
                schema.order_line_key(w, d, o_id, line_no),
                schema.order_line_record(item_id, supply_w, quantity, amount),
            )

        total *= (1 + warehouse["tax"] + district["tax"])
        ctx.write(
            schema.order_key(w, d, o_id),
            schema.order_record(w, d, o_id, c, len(lines)),
        )
        ctx.write(schema.new_order_key(w, d, o_id), {"delivered": False})
        ctx.write(schema.customer_last_order_key(w, d, c), {"order": o_id})
        return o_id

    return body


def payment_body(w: int, d: int, cw: int, cd: int, c: int, amount: float, nonce: int):
    """Payment: credit warehouse/district YTD, debit the customer.

    The customer may live in a *remote* warehouse (``cw != w`` with 15%
    probability per spec) -- the cross-node write the paper's contention
    analysis leans on.
    """

    def body(ctx: TxnContext):
        warehouse = yield from ctx.read(schema.warehouse_key(w))
        ctx.write(
            schema.warehouse_key(w), {**warehouse, "ytd": warehouse["ytd"] + amount}
        )
        district = yield from ctx.read(schema.district_key(w, d))
        ctx.write(
            schema.district_key(w, d), {**district, "ytd": district["ytd"] + amount}
        )
        customer = yield from ctx.read(schema.customer_key(cw, cd, c))
        ctx.write(
            schema.customer_key(cw, cd, c),
            {
                **customer,
                "balance": customer["balance"] - amount,
                "ytd_payment": customer["ytd_payment"] + amount,
                "payment_cnt": customer["payment_cnt"] + 1,
            },
        )
        ctx.write(schema.history_key(w, d, nonce), {"amount": amount, "c": c})

    return body


def payment_by_name_body(
    w: int, d: int, cw: int, cd: int, lastname: str, amount: float, nonce: int
):
    """Payment addressing the customer by last name (spec: 60% of cases).

    The secondary index resolves the name to candidate ids; the spec
    takes the midpoint customer of the name group (clause 2.5.2.2).
    """

    def body(ctx: TxnContext):
        warehouse = yield from ctx.read(schema.warehouse_key(w))
        ctx.write(
            schema.warehouse_key(w), {**warehouse, "ytd": warehouse["ytd"] + amount}
        )
        district = yield from ctx.read(schema.district_key(w, d))
        ctx.write(
            schema.district_key(w, d), {**district, "ytd": district["ytd"] + amount}
        )
        index = yield from ctx.read(schema.customer_name_index_key(cw, cd, lastname))
        ids = index["ids"]
        c = ids[(len(ids) - 1) // 2]  # ceil(n/2)-th, zero-based
        customer = yield from ctx.read(schema.customer_key(cw, cd, c))
        ctx.write(
            schema.customer_key(cw, cd, c),
            {
                **customer,
                "balance": customer["balance"] - amount,
                "ytd_payment": customer["ytd_payment"] + amount,
                "payment_cnt": customer["payment_cnt"] + 1,
            },
        )
        ctx.write(schema.history_key(w, d, nonce), {"amount": amount, "c": c})
        return c

    return body


def order_status_by_name_body(w: int, d: int, lastname: str):
    """OrderStatus addressing the customer by last name (spec: 60%)."""

    def body(ctx: TxnContext):
        _warehouse = yield from ctx.read(schema.warehouse_key(w))
        index = yield from ctx.read(schema.customer_name_index_key(w, d, lastname))
        ids = index["ids"]
        c = ids[(len(ids) - 1) // 2]
        customer = yield from ctx.read(schema.customer_key(w, d, c))
        pointer = yield from ctx.read(schema.customer_last_order_key(w, d, c))
        o_id = pointer["order"]
        if o_id == 0:
            return {"customer": customer, "order": None}
        order = yield from ctx.read(schema.order_key(w, d, o_id))
        lines = []
        for line_no in range(order["line_count"]):
            line = yield from ctx.read(schema.order_line_key(w, d, o_id, line_no))
            lines.append(line)
        return {"customer": customer, "order": order, "lines": lines}

    return body


def delivery_body(w: int, d: int, carrier: int):
    """Deliver the oldest undelivered order of one district, if any."""

    def body(ctx: TxnContext):
        _warehouse = yield from ctx.read(schema.warehouse_key(w))
        district = yield from ctx.read(schema.district_key(w, d))
        cursor = yield from ctx.read(schema.delivery_cursor_key(w, d))
        o_id = cursor["next"]
        if o_id >= district["next_o_id"]:
            return None  # nothing to deliver; empty writeset commits as RO

        marker = yield from ctx.read(schema.new_order_key(w, d, o_id))
        order = yield from ctx.read(schema.order_key(w, d, o_id))
        total = 0.0
        for line_no in range(order["line_count"]):
            line = yield from ctx.read(schema.order_line_key(w, d, o_id, line_no))
            total += line["amount"]
        customer = yield from ctx.read(
            schema.customer_key(w, d, order["customer"])
        )
        ctx.write(schema.new_order_key(w, d, o_id), {**marker, "delivered": True})
        ctx.write(schema.order_key(w, d, o_id), {**order, "carrier": carrier})
        ctx.write(
            schema.customer_key(w, d, order["customer"]),
            {
                **customer,
                "balance": customer["balance"] + total,
                "delivery_cnt": customer["delivery_cnt"] + 1,
            },
        )
        ctx.write(schema.delivery_cursor_key(w, d), {"next": o_id + 1})
        return o_id

    return body


def order_status_body(w: int, d: int, c: int):
    """OrderStatus (read-only): the customer's last order and its lines.

    The first read retrieves the warehouse; subsequent reads return
    objects committed along with it -- the paper's Section 1 example of a
    profile for which FW-KV always returns the freshest snapshot.
    """

    def body(ctx: TxnContext):
        _warehouse = yield from ctx.read(schema.warehouse_key(w))
        customer = yield from ctx.read(schema.customer_key(w, d, c))
        pointer = yield from ctx.read(schema.customer_last_order_key(w, d, c))
        o_id = pointer["order"]
        if o_id == 0:
            return {"customer": customer, "order": None}
        order = yield from ctx.read(schema.order_key(w, d, o_id))
        lines = []
        for line_no in range(order["line_count"]):
            line = yield from ctx.read(schema.order_line_key(w, d, o_id, line_no))
            lines.append(line)
        return {"customer": customer, "order": order, "lines": lines}

    return body


def stock_level_body(w: int, d: int, threshold: int, orders_to_scan: int):
    """StockLevel (read-only): count recent items below the threshold."""

    def body(ctx: TxnContext):
        _warehouse = yield from ctx.read(schema.warehouse_key(w))
        district = yield from ctx.read(schema.district_key(w, d))
        next_o_id = district["next_o_id"]
        first = max(1, next_o_id - orders_to_scan)
        item_ids = set()
        for o_id in range(first, next_o_id):
            order = yield from ctx.read(schema.order_key(w, d, o_id))
            for line_no in range(order["line_count"]):
                line = yield from ctx.read(
                    schema.order_line_key(w, d, o_id, line_no)
                )
                item_ids.add(line["item"])
        low = 0
        for item_id in sorted(item_ids):
            stock = yield from ctx.read(schema.stock_key(w, item_id))
            if stock["quantity"] < threshold:
                low += 1
        return low

    return body
