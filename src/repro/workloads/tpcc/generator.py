"""The TPC-C workload generator and warehouse-aware key placement."""

from __future__ import annotations

import random
from typing import Iterable, List, Tuple

from repro.cluster.directory import CallableDirectory, Directory
from repro.workloads.base import TxnProgram, Workload
from repro.workloads.tpcc import loader, schema, transactions
from repro.workloads.tpcc.config import TPCCConfig

#: Update-profile weights from the TPC-C standard mix (NewOrder 45%,
#: Payment 43%, Delivery 4% of all transactions), renormalised over the
#: update share; the read-only share splits evenly between OrderStatus and
#: StockLevel.
_UPDATE_WEIGHTS = (
    (transactions.NEW_ORDER, 45.0),
    (transactions.PAYMENT, 43.0),
    (transactions.DELIVERY, 4.0),
)


def tpcc_directory(num_nodes: int) -> Directory:
    """Warehouse-scoped keys live at ``warehouse % num_nodes``; the global
    item catalog spreads by item id."""

    def site(key) -> int:
        tag = key[0]
        if tag in schema.WAREHOUSE_SCOPED:
            return key[1] % num_nodes
        if tag == schema.ITEM:
            return key[1] % num_nodes
        raise ValueError(f"unrecognised TPC-C key {key!r}")

    return CallableDirectory(site)


class TPCCWorkload(Workload):
    """Generates the five TPC-C profiles for node-attached clients.

    Each client acts as a terminal of a *home warehouse* hosted on its own
    node (the hierarchical, mostly-local pattern the paper describes);
    remote stock (1%) and remote payment customers (15%) add the
    cross-node traffic of the spec.
    """

    def __init__(self, config: TPCCConfig, num_nodes: int, seed: int = 0) -> None:
        if config.num_warehouses < num_nodes:
            raise ValueError(
                "need at least one warehouse per node: "
                f"{config.num_warehouses} warehouses, {num_nodes} nodes"
            )
        self.config = config
        self.num_nodes = num_nodes
        self.seed = seed
        self._warehouses_by_node: List[List[int]] = [
            [w for w in range(config.num_warehouses) if w % num_nodes == node]
            for node in range(num_nodes)
        ]
        update_total = sum(weight for _p, weight in _UPDATE_WEIGHTS)
        self._update_cdf = []
        acc = 0.0
        for profile, weight in _UPDATE_WEIGHTS:
            acc += weight / update_total
            self._update_cdf.append((acc, profile))

    @property
    def name(self) -> str:
        return "tpcc"

    def load_items(self) -> Iterable[Tuple[tuple, dict]]:
        return loader.load_items(self.config, self.seed)

    # ------------------------------------------------------------------
    # Generation
    # ------------------------------------------------------------------
    def generate(self, rng: random.Random, node_id: int) -> TxnProgram:
        config = self.config
        if config.warehouse_selection == "uniform":
            w = rng.randrange(config.num_warehouses)
        else:
            w = rng.choice(self._warehouses_by_node[node_id])
        d = rng.randrange(config.districts_per_warehouse)
        if rng.random() < config.read_only_fraction:
            if rng.random() < 0.5:
                return self._order_status(rng, w, d)
            return self._stock_level(rng, w, d)
        pick = rng.random()
        for bound, profile in self._update_cdf:
            if pick <= bound:
                break
        if profile == transactions.NEW_ORDER:
            return self._new_order(rng, w, d)
        if profile == transactions.PAYMENT:
            return self._payment(rng, w, d)
        return self._delivery(rng, w, d)

    def _random_customer(self, rng: random.Random) -> int:
        return rng.randint(1, self.config.customers_per_district)

    def _random_last_name(self, rng: random.Random) -> str:
        # A name that certainly exists: derive it from a random customer.
        return schema.customer_last_name(self._random_customer(rng))

    def _new_order(self, rng: random.Random, w: int, d: int) -> TxnProgram:
        config = self.config
        c = self._random_customer(rng)
        line_count = rng.randint(config.min_order_lines, config.max_order_lines)
        items = rng.sample(range(config.num_items), line_count)
        lines = []
        for item in items:
            supply_w = w
            if (
                config.num_warehouses > 1
                and rng.random() < config.remote_stock_prob
            ):
                supply_w = rng.choice(
                    [x for x in range(config.num_warehouses) if x != w]
                )
            lines.append((item, supply_w, rng.randint(1, 10)))
        invalid_item = rng.random() < config.new_order_rollback_prob
        return TxnProgram(
            transactions.NEW_ORDER,
            False,
            transactions.new_order_body(w, d, c, lines, invalid_item),
        )

    def _payment(self, rng: random.Random, w: int, d: int) -> TxnProgram:
        config = self.config
        cw, cd = w, d
        if (
            config.num_warehouses > 1
            and rng.random() < config.remote_payment_prob
        ):
            cw = rng.choice([x for x in range(config.num_warehouses) if x != w])
            cd = rng.randrange(config.districts_per_warehouse)
        amount = round(rng.uniform(1.0, 5000.0), 2)
        nonce = rng.getrandbits(48)
        if rng.random() < config.by_last_name_prob:
            body = transactions.payment_by_name_body(
                w, d, cw, cd, self._random_last_name(rng), amount, nonce
            )
        else:
            body = transactions.payment_body(
                w, d, cw, cd, self._random_customer(rng), amount, nonce
            )
        return TxnProgram(transactions.PAYMENT, False, body)

    def _delivery(self, rng: random.Random, w: int, d: int) -> TxnProgram:
        return TxnProgram(
            transactions.DELIVERY,
            False,
            transactions.delivery_body(w, d, carrier=rng.randint(1, 10)),
        )

    def _order_status(self, rng: random.Random, w: int, d: int) -> TxnProgram:
        if rng.random() < self.config.by_last_name_prob:
            body = transactions.order_status_by_name_body(
                w, d, self._random_last_name(rng)
            )
        else:
            body = transactions.order_status_body(
                w, d, self._random_customer(rng)
            )
        return TxnProgram(transactions.ORDER_STATUS, True, body)

    def _stock_level(self, rng: random.Random, w: int, d: int) -> TxnProgram:
        return TxnProgram(
            transactions.STOCK_LEVEL,
            True,
            transactions.stock_level_body(
                w,
                d,
                threshold=rng.randint(10, 20),
                orders_to_scan=self.config.stock_level_orders,
            ),
        )
