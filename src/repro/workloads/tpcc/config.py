"""TPC-C sizing and mix configuration."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class TPCCConfig:
    """Scaled-down TPC-C sizing.

    The full spec populates 3000 customers per district and a 100k-item
    catalog; defaults here are scaled down so simulated clusters load in
    milliseconds.  Contention behaviour is governed by the number of
    warehouses (the paper varies warehouses per node), which is preserved.
    """

    num_warehouses: int = 4
    districts_per_warehouse: int = 10
    customers_per_district: int = 60
    num_items: int = 500
    #: Orders pre-loaded per district (so OrderStatus/StockLevel have data).
    initial_orders_per_district: int = 5
    min_order_lines: int = 5
    max_order_lines: int = 10
    #: Orders scanned by StockLevel (spec: the last 20; scaled down).
    stock_level_orders: int = 4
    #: Fraction of read-only transactions (paper tests 20% and 50%).
    read_only_fraction: float = 0.5
    #: Spec probabilities for remote accesses.
    remote_stock_prob: float = 0.01
    remote_payment_prob: float = 0.15
    #: Spec: ~1% of NewOrders select an unused item and roll back.
    new_order_rollback_prob: float = 0.01
    #: Spec: 60% of Payments / OrderStatus address the customer by last
    #: name, resolved through the secondary name index.
    by_last_name_prob: float = 0.60
    #: How clients pick the warehouse each transaction targets.
    #: ``uniform`` (the paper's setting: "transactions select keys to be
    #: accessed using a uniform distribution, which entails accesses might
    #: or might not be to the local data repository") picks any warehouse;
    #: ``local`` models classic TPC-C terminals bound to a home warehouse
    #: on the client's node.
    warehouse_selection: str = "uniform"

    def __post_init__(self) -> None:
        if self.num_warehouses <= 0:
            raise ValueError("num_warehouses must be positive")
        if self.districts_per_warehouse <= 0:
            raise ValueError("districts_per_warehouse must be positive")
        if self.customers_per_district <= 0:
            raise ValueError("customers_per_district must be positive")
        if self.num_items <= 0:
            raise ValueError("num_items must be positive")
        if not 0.0 <= self.read_only_fraction <= 1.0:
            raise ValueError("read_only_fraction must be within [0, 1]")
        if self.min_order_lines > self.max_order_lines:
            raise ValueError("min_order_lines must be <= max_order_lines")
        if self.warehouse_selection not in ("uniform", "local"):
            raise ValueError(
                f"unknown warehouse_selection {self.warehouse_selection!r}"
            )

    @property
    def total_keys(self) -> int:
        """Approximate initial key count (for sizing reports)."""
        per_warehouse = (
            1
            + self.districts_per_warehouse
            * (
                2  # district + delivery cursor
                + 2 * self.customers_per_district  # customer + last-order ptr
                + self.initial_orders_per_district * (2 + self.max_order_lines)
            )
            + self.num_items  # stock rows
        )
        return self.num_warehouses * per_warehouse + self.num_items
