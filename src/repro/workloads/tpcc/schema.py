"""Key naming and record shapes for the TPC-C key-value port.

Keys are tuples whose first element tags the table; every key under a
warehouse embeds the warehouse id so placement can follow the warehouse.
Records are plain dicts (the KV port stores whole rows as values).
"""

from __future__ import annotations

from typing import Tuple

# Table tags
WAREHOUSE = "w"
DISTRICT = "d"
CUSTOMER = "c"
CUSTOMER_LAST_ORDER = "clo"
CUSTOMER_NAME_INDEX = "cnidx"
STOCK = "s"
ITEM = "i"
ORDER = "o"
ORDER_LINE = "ol"
NEW_ORDER = "no"
DELIVERY_CURSOR = "dlv"
HISTORY = "h"

#: Tags whose keys carry the owning warehouse in position 1.
WAREHOUSE_SCOPED = frozenset(
    {
        WAREHOUSE,
        DISTRICT,
        CUSTOMER,
        CUSTOMER_LAST_ORDER,
        CUSTOMER_NAME_INDEX,
        STOCK,
        ORDER,
        ORDER_LINE,
        NEW_ORDER,
        DELIVERY_CURSOR,
        HISTORY,
    }
)


def warehouse_key(w: int) -> Tuple:
    return (WAREHOUSE, w)


def district_key(w: int, d: int) -> Tuple:
    return (DISTRICT, w, d)


def customer_key(w: int, d: int, c: int) -> Tuple:
    return (CUSTOMER, w, d, c)


def customer_last_order_key(w: int, d: int, c: int) -> Tuple:
    return (CUSTOMER_LAST_ORDER, w, d, c)


#: The spec's last-name syllables (TPC-C clause 4.3.2.3).
LAST_NAME_SYLLABLES = (
    "BAR", "OUGHT", "ABLE", "PRI", "PRES",
    "ESE", "ANTI", "CALLY", "ATION", "EING",
)


def last_name(number: int) -> str:
    """The spec's three-syllable last name for a 0-999 name number."""
    if not 0 <= number <= 999:
        raise ValueError("last-name numbers span 0..999")
    return (
        LAST_NAME_SYLLABLES[number // 100]
        + LAST_NAME_SYLLABLES[(number // 10) % 10]
        + LAST_NAME_SYLLABLES[number % 10]
    )


def customer_last_name(c: int) -> str:
    """The (deterministic) last name of customer ``c``.

    A multiplicative scramble stands in for the spec's NURand selection;
    what matters is a stable many-to-few mapping so by-name lookups
    return multiple candidates.
    """
    return last_name((c * 211 + 17) % 1000)


def customer_name_index_key(w: int, d: int, name: str) -> Tuple:
    """Secondary index: (warehouse, district, last name) -> customer ids."""
    return (CUSTOMER_NAME_INDEX, w, d, name)


def stock_key(w: int, item: int) -> Tuple:
    return (STOCK, w, item)


def item_key(item: int) -> Tuple:
    return (ITEM, item)


def order_key(w: int, d: int, o: int) -> Tuple:
    return (ORDER, w, d, o)


def order_line_key(w: int, d: int, o: int, line: int) -> Tuple:
    return (ORDER_LINE, w, d, o, line)


def new_order_key(w: int, d: int, o: int) -> Tuple:
    return (NEW_ORDER, w, d, o)


def delivery_cursor_key(w: int, d: int) -> Tuple:
    return (DELIVERY_CURSOR, w, d)


def history_key(w: int, d: int, nonce: int) -> Tuple:
    return (HISTORY, w, d, nonce)


def owning_warehouse(key: Tuple) -> int:
    """The warehouse a key belongs to; raises for global (item) keys."""
    if key[0] in WAREHOUSE_SCOPED:
        return key[1]
    raise ValueError(f"key {key!r} is not warehouse-scoped")


# ----------------------------------------------------------------------
# Record factories (initial values)
# ----------------------------------------------------------------------


def warehouse_record(w: int) -> dict:
    return {"id": w, "tax": 0.05 + (w % 10) * 0.005, "ytd": 0.0}


def district_record(w: int, d: int, next_o_id: int) -> dict:
    return {
        "w": w,
        "id": d,
        "tax": 0.03 + (d % 10) * 0.004,
        "ytd": 0.0,
        "next_o_id": next_o_id,
    }


def customer_record(w: int, d: int, c: int) -> dict:
    return {
        "w": w,
        "d": d,
        "id": c,
        "balance": -10.0,
        "ytd_payment": 10.0,
        "payment_cnt": 1,
        "delivery_cnt": 0,
    }


def stock_record(w: int, item: int) -> dict:
    return {"w": w, "item": item, "quantity": 50 + (item % 41), "ytd": 0, "order_cnt": 0}


def item_record(item: int) -> dict:
    return {"id": item, "price": 1.0 + (item % 100) * 0.25, "name": f"item-{item}"}


def order_record(w: int, d: int, o: int, customer: int, line_count: int) -> dict:
    return {
        "w": w,
        "d": d,
        "id": o,
        "customer": customer,
        "line_count": line_count,
        "carrier": None,
    }


def order_line_record(item: int, supply_w: int, quantity: int, amount: float) -> dict:
    return {"item": item, "supply_w": supply_w, "quantity": quantity, "amount": amount}
