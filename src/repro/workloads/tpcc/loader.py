"""Initial TPC-C population."""

from __future__ import annotations

from typing import Iterable, Tuple

from repro.sim.rng import make_rng
from repro.workloads.tpcc import schema
from repro.workloads.tpcc.config import TPCCConfig


def load_items(config: TPCCConfig, seed: int = 0) -> Iterable[Tuple[tuple, dict]]:
    """(key, record) pairs for the whole initial database.

    Every district is pre-loaded with ``initial_orders_per_district``
    orders (customer ``k`` owns order ``k``), so OrderStatus and StockLevel
    find data from the first transaction onward.  The delivery cursor
    starts at order 1: initial orders are undelivered.
    """
    rng = make_rng(seed, "tpcc-loader")
    for item in range(config.num_items):
        yield schema.item_key(item), schema.item_record(item)

    for w in range(config.num_warehouses):
        yield schema.warehouse_key(w), schema.warehouse_record(w)
        for item in range(config.num_items):
            yield schema.stock_key(w, item), schema.stock_record(w, item)
        for d in range(config.districts_per_warehouse):
            orders = config.initial_orders_per_district
            yield (
                schema.district_key(w, d),
                schema.district_record(w, d, next_o_id=orders + 1),
            )
            yield schema.delivery_cursor_key(w, d), {"next": 1}
            name_index = {}
            for c in range(1, config.customers_per_district + 1):
                yield schema.customer_key(w, d, c), schema.customer_record(w, d, c)
                last_order = c if c <= orders else 0
                yield schema.customer_last_order_key(w, d, c), {"order": last_order}
                name_index.setdefault(schema.customer_last_name(c), []).append(c)
            # Secondary index for the spec's by-last-name lookups.
            for name, ids in name_index.items():
                yield schema.customer_name_index_key(w, d, name), {"ids": ids}
            for o in range(1, orders + 1):
                line_count = rng.randint(
                    config.min_order_lines, config.max_order_lines
                )
                customer = o  # customer k owns initial order k
                yield (
                    schema.order_key(w, d, o),
                    schema.order_record(w, d, o, customer, line_count),
                )
                yield schema.new_order_key(w, d, o), {"delivered": False}
                for line in range(line_count):
                    item = rng.randrange(config.num_items)
                    quantity = rng.randint(1, 10)
                    yield (
                        schema.order_line_key(w, d, o, line),
                        schema.order_line_record(item, w, quantity, quantity * 2.5),
                    )
