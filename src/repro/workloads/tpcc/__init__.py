"""TPC-C ported to the key-value model (paper Section 5.2).

An order-entry environment: warehouses at the top of a hierarchical access
pattern, districts, customers, stock, and orders below.  Three update
profiles (NewOrder, Payment, Delivery) and two read-only profiles
(OrderStatus, StockLevel).  Every warehouse's object tree shares the
warehouse's preferred site; contention is controlled by the number of
warehouses per node.
"""

from repro.workloads.tpcc.config import TPCCConfig
from repro.workloads.tpcc.generator import TPCCWorkload, tpcc_directory
from repro.workloads.tpcc import schema

__all__ = ["TPCCConfig", "TPCCWorkload", "schema", "tpcc_directory"]
