"""Transactional workloads: YCSB and TPC-C ported to the key-value model."""

from repro.workloads.base import Rollback, TxnContext, TxnProgram, Workload
from repro.workloads.distributions import (
    UniformChooser,
    ZipfianChooser,
    ZipfKeyGenerator,
)
from repro.workloads.ycsb import YCSBConfig, YCSBWorkload
from repro.workloads.tpcc import TPCCConfig, TPCCWorkload

__all__ = [
    "Rollback",
    "TPCCConfig",
    "TPCCWorkload",
    "TxnContext",
    "TxnProgram",
    "UniformChooser",
    "Workload",
    "YCSBConfig",
    "YCSBWorkload",
    "ZipfKeyGenerator",
    "ZipfianChooser",
]
