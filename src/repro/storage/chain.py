"""Per-key version chains."""

from __future__ import annotations

from typing import Hashable, Iterator, List, Optional

from repro.core.vector_clock import VectorClock
from repro.storage.version import Version


class VersionChain:
    """All committed versions of one key, ordered by ascending ``vid``.

    Because vids are assigned densely (``latest.vid + 1``) and garbage
    collection only drops a contiguous prefix, a vid maps to the list
    offset ``vid - _base_vid``; ``by_vid`` is O(1) regardless of chain
    length.  ``latest`` is a cached pointer updated on install/GC so the
    visibility fast path (the newest version is visible to most readers)
    costs one attribute read.
    """

    __slots__ = ("key", "_versions", "_base_vid", "_latest")

    def __init__(self, key: Hashable) -> None:
        self.key = key
        self._versions: List[Version] = []
        #: vid of ``_versions[0]``; advanced by GC as old versions drop.
        self._base_vid = 0
        #: Cached newest version (None until the first install); hot paths
        #: read this directly, skipping the raising property.
        self._latest: Optional[Version] = None

    def install(
        self,
        value: object,
        vc: VectorClock,
        origin: int,
        seq: int,
        writer_txn: Optional[int] = None,
        installed_at: float = 0.0,
    ) -> Version:
        """Append a new latest version and return it."""
        versions = self._versions
        vid = self._base_vid + len(versions)
        version = Version(
            self.key, value, vc, vid, origin, seq, writer_txn, installed_at
        )
        versions.append(version)
        self._latest = version
        return version

    @property
    def latest(self) -> Version:
        version = self._latest
        if version is None:
            raise LookupError(f"key {self.key!r} has no versions")
        return version

    def __len__(self) -> int:
        return len(self._versions)

    def __iter__(self) -> Iterator[Version]:
        return iter(self._versions)

    def newest_first(self):
        """Iterate versions from freshest to oldest (selection order)."""
        return reversed(self._versions)

    def by_vid(self, vid: int) -> Version:
        """Fetch a specific version by identifier, in O(1).

        Raises :class:`LookupError` both for vids never issued and for
        vids already reclaimed by garbage collection.
        """
        index = vid - self._base_vid
        if index < 0 or index >= len(self._versions):
            raise LookupError(f"key {self.key!r} has no version #{vid}")
        return self._versions[index]

    def truncate_older_than(self, keep_last: int) -> int:
        """Garbage-collect all but the newest ``keep_last`` versions.

        Returns the number of versions dropped.  Not used by the protocol
        logic itself; exposed for long-running deployments and tests.
        """
        if keep_last < 1:
            raise ValueError("must keep at least the latest version")
        drop = max(0, len(self._versions) - keep_last)
        if drop:
            self._versions = self._versions[drop:]
            self._base_vid += drop
        return drop

    def collect_garbage(self, keep_last: int, min_age: float, now: float) -> int:
        """Drop reclaimable old versions from the cold end of the chain.

        A version is reclaimable when all hold: it is not among the newest
        ``keep_last`` versions; it was installed more than ``min_age`` of
        virtual time ago (so no in-flight snapshot can still select it,
        assuming transactions are much shorter than ``min_age``); and its
        version-access-set is empty (no registered read-only reader).
        Dropping stops at the first non-reclaimable version, preserving a
        contiguous chain.  Returns the number of versions dropped.
        """
        if keep_last < 1:
            raise ValueError("must keep at least the latest version")
        horizon = now - min_age
        reclaimable = 0
        limit = len(self._versions) - keep_last
        for version in self._versions[:max(limit, 0)]:
            if version.installed_at > horizon or version.access_set:
                break
            reclaimable += 1
        if reclaimable:
            self._versions = self._versions[reclaimable:]
            self._base_vid += reclaimable
        return reclaimable
