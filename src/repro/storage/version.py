"""A single object version and its PSI metadata."""

from __future__ import annotations

from typing import Hashable, Optional, Set

from repro.core.vector_clock import VectorClock


class Version:
    """One committed version of a key.

    Carries everything both protocols need (paper Section 4.1):

    * ``vc`` -- the commit vector clock of the creating transaction;
    * ``vid`` -- the monotonically increasing per-key scalar identifier
      ("the freshest among them is selected");
    * ``origin``/``seq`` -- the creating coordinator's site and its scalar
      sequence number there (Walter's ``<site, seqno>`` timestamp; also the
      entry ``vc[origin]``);
    * ``access_set`` -- the FW-KV version-access-set (VAS): identifiers of
      read-only transactions with a (possibly transitive) anti-dependency
      on this version.  Walter leaves it empty.
    """

    __slots__ = (
        "key",
        "value",
        "vc",
        "vid",
        "origin",
        "seq",
        "access_set",
        "writer_txn",
        "installed_at",
    )

    def __init__(
        self,
        key: Hashable,
        value: object,
        vc: VectorClock,
        vid: int,
        origin: int,
        seq: int,
        writer_txn: Optional[int] = None,
        installed_at: float = 0.0,
    ) -> None:
        self.key = key
        self.value = value
        self.vc = vc
        self.vid = vid
        self.origin = origin
        self.seq = seq
        self.access_set: Set[int] = set()
        #: Transaction that installed this version (None for loaded data);
        #: consumed by the history checker's version catalog.
        self.writer_txn = writer_txn
        #: Virtual time of installation; consumed by the age-based GC.
        self.installed_at = installed_at

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Version {self.key!r}#{self.vid} origin={self.origin} "
            f"seq={self.seq} vc={self.vc!r} vas={sorted(self.access_set)}>"
        )
