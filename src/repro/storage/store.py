"""The per-node multi-version data repository."""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Hashable, Iterable, Iterator, Optional, Set, Tuple

from repro.core.vector_clock import VectorClock
from repro.storage.chain import VersionChain
from repro.storage.version import Version


class MultiVersionStore:
    """All version chains held by one node, plus the VAS reverse index.

    The paper's ``Remove`` handler (Alg. 6 lines 5-10) erases a read-only
    transaction's identifier from *every* version-access-set at the node,
    including entries propagated there by concurrent update commits.  A
    literal scan of all chains would be O(store); we maintain a reverse
    index ``txn_id -> versions`` so removal costs O(entries), with the same
    semantics.  All VAS mutations must therefore go through
    :meth:`vas_add` / :meth:`vas_extend` / :meth:`vas_remove_txn`.

    **Tombstones.**  A Remove races with in-flight update commits whose
    Decide still carries the removed identifier in its collected set; a
    late install would resurrect the entry forever.  Since a removed
    transaction has finished and will never read again, its identifier is
    tombstoned: later insertions are ignored.  Tombstones expire after
    ``tombstone_ttl`` of virtual time (far beyond any propagation delay),
    keeping memory bounded.
    """

    def __init__(self, tombstone_ttl: float = 0.1) -> None:
        self._chains: Dict[Hashable, VersionChain] = {}
        self._vas_index: Dict[int, Set[Version]] = {}
        self._tombstones: Set[int] = set()
        self._tombstone_queue: Deque[Tuple[float, int]] = deque()
        self.tombstone_ttl = tombstone_ttl

    # ------------------------------------------------------------------
    # Chains
    # ------------------------------------------------------------------
    def create(self, key: Hashable, value: object, vc: VectorClock) -> Version:
        """Load an initial version (vid 0, origin/seq 0) for a fresh key."""
        if key in self._chains:
            raise KeyError(f"key {key!r} already exists")
        chain = VersionChain(key)
        self._chains[key] = chain
        return chain.install(value, vc, origin=0, seq=0)

    def create_many(self, items: Iterable[Tuple[Hashable, object]], vc: VectorClock) -> int:
        """Bulk :meth:`create` for the initial data load.

        Inlines the per-key chain setup (vid 0, origin/seq 0) so loading a
        large keyspace doesn't pay three Python calls per key.
        """
        chains = self._chains
        new_chain = VersionChain.__new__
        chain_cls = VersionChain
        count = 0
        for key, value in items:
            if key in chains:
                raise KeyError(f"key {key!r} already exists")
            version = Version(key, value, vc, 0, 0, 0)
            chain = new_chain(chain_cls)
            chain.key = key
            chain._versions = [version]
            chain._base_vid = 0
            chain._latest = version
            chains[key] = chain
            count += 1
        return count

    def chain(self, key: Hashable) -> VersionChain:
        try:
            return self._chains[key]
        except KeyError:
            raise KeyError(f"key {key!r} is not stored on this node") from None

    def install(
        self,
        key: Hashable,
        value: object,
        vc: VectorClock,
        origin: int,
        seq: int,
        writer_txn: Optional[int] = None,
        installed_at: float = 0.0,
    ) -> Version:
        """Install a new committed version as the latest for ``key``."""
        chain = self._chains.get(key)
        if chain is None:
            chain = VersionChain(key)
            self._chains[key] = chain
        return chain.install(value, vc, origin, seq, writer_txn, installed_at)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._chains

    def __len__(self) -> int:
        return len(self._chains)

    def keys(self) -> Iterator[Hashable]:
        return iter(self._chains)

    # ------------------------------------------------------------------
    # Version-access-set maintenance (FW-KV visible reads)
    # ------------------------------------------------------------------
    def vas_add(self, version: Version, txn_id: int) -> None:
        """Record that read-only transaction ``txn_id`` read ``version``."""
        if txn_id in self._tombstones:
            return
        version.access_set.add(txn_id)
        self._vas_index.setdefault(txn_id, set()).add(version)

    def vas_extend(self, version: Version, txn_ids: Iterable[int]) -> None:
        """Propagate a collected anti-dependency set into ``version``."""
        for txn_id in txn_ids:
            self.vas_add(version, txn_id)

    def vas_remove_txn(self, txn_id: int, now: float = 0.0) -> int:
        """Erase ``txn_id`` from every VAS on this node (Remove handler).

        Returns the number of entries erased.  The identifier is
        tombstoned against late re-insertion by in-flight commits.
        """
        if txn_id not in self._tombstones:
            self._tombstones.add(txn_id)
            self._tombstone_queue.append((now, txn_id))
        self._prune_tombstones(now)
        versions = self._vas_index.pop(txn_id, None)
        if not versions:
            return 0
        for version in versions:
            version.access_set.discard(txn_id)
        return len(versions)

    def _prune_tombstones(self, now: float) -> None:
        horizon = now - self.tombstone_ttl
        queue = self._tombstone_queue
        while queue and queue[0][0] <= horizon:
            _when, txn_id = queue.popleft()
            self._tombstones.discard(txn_id)

    def vas_total_entries(self) -> int:
        """Total VAS entries on this node (metrics/invariant checks)."""
        return sum(len(versions) for versions in self._vas_index.values())
