"""Single-version store for the serializable 2PC baseline.

The paper's 2PC-baseline "does not need multiversioning": every key holds
one committed value plus a scalar version number that read validation
compares at commit time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Iterator


@dataclass
class SimpleRecord:
    value: object
    version: int = 0


class SimpleStore:
    """One committed record per key."""

    def __init__(self) -> None:
        self._records: Dict[Hashable, SimpleRecord] = {}

    def create(self, key: Hashable, value: object) -> SimpleRecord:
        if key in self._records:
            raise KeyError(f"key {key!r} already exists")
        record = SimpleRecord(value)
        self._records[key] = record
        return record

    def read(self, key: Hashable) -> SimpleRecord:
        try:
            return self._records[key]
        except KeyError:
            raise KeyError(f"key {key!r} is not stored on this node") from None

    def write(self, key: Hashable, value: object) -> SimpleRecord:
        """Overwrite the committed value, bumping the version number."""
        record = self._records.get(key)
        if record is None:
            record = SimpleRecord(value)
            self._records[key] = record
        else:
            record.value = value
            record.version += 1
        return record

    def __contains__(self, key: Hashable) -> bool:
        return key in self._records

    def __len__(self) -> int:
        return len(self._records)

    def keys(self) -> Iterator[Hashable]:
        return iter(self._records)
