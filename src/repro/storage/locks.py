"""Per-key lock table with multi-key acquisition helpers."""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, List, Optional

from repro.sim import RWLock, Simulator


class LockTable:
    """Lazily materialised per-key readers/writer locks.

    Both protocols lock written keys exclusively during 2PC; FW-KV read
    handlers additionally take the shared side so read-only transactions
    "are still allowed to operate simultaneously on read handlers" while
    excluding concurrent conflicting update commits (paper Section 4.3).
    """

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self._locks: Dict[Hashable, RWLock] = {}

    def lock_for(self, key: Hashable) -> RWLock:
        lock = self._locks.get(key)
        if lock is None:
            lock = RWLock(self.sim)
            self._locks[key] = lock
        return lock

    # ------------------------------------------------------------------
    # Multi-key helpers (generator subroutines for protocol processes)
    # ------------------------------------------------------------------
    def acquire_write_all(
        self,
        keys: Iterable[Hashable],
        owner,
        timeout: Optional[float],
    ) -> Iterator:
        """Acquire write locks on every key; all-or-nothing.

        Keys are locked in sorted order to shorten (not eliminate) deadlock
        windows; a timeout on any key releases everything already held and
        yields ``False`` -- the caller then votes *no*, exactly as the
        paper's prepare handler does.  Use as
        ``ok = yield from table.acquire_write_all(...)``.
        """
        ordered: List[Hashable] = sorted(keys, key=repr)
        acquired: List[Hashable] = []
        for key in ordered:
            granted = yield self.lock_for(key).acquire_write(owner, timeout)
            if not granted:
                self.release_write_all(acquired, owner)
                return False
            acquired.append(key)
        return True

    def release_write_all(self, keys: Iterable[Hashable], owner) -> None:
        for key in keys:
            self.lock_for(key).release(owner)

    def acquire_mixed(
        self,
        read_keys: Iterable[Hashable],
        write_keys: Iterable[Hashable],
        owner,
        timeout: Optional[float],
    ) -> Iterator:
        """Acquire shared locks on ``read_keys`` and exclusive locks on
        ``write_keys``, all-or-nothing (2PC-baseline prepare).

        A key in both sets is locked exclusively only.  Keys are acquired
        in one global sorted order.  Yields ``(ok, read_held, write_held)``
        where the held lists are empty on failure.
        """
        writes = set(write_keys)
        reads = set(read_keys) - writes
        plan = sorted(
            [(key, "w") for key in writes] + [(key, "r") for key in reads],
            key=lambda item: repr(item[0]),
        )
        held: List = []
        for key, mode in plan:
            lock = self.lock_for(key)
            if mode == "w":
                granted = yield lock.acquire_write(owner, timeout)
            else:
                granted = yield lock.acquire_read(owner, timeout)
            if not granted:
                for got_key, _mode in held:
                    self.lock_for(got_key).release(owner)
                return False, [], []
            held.append((key, mode))
        read_held = [key for key, mode in held if mode == "r"]
        write_held = [key for key, mode in held if mode == "w"]
        return True, read_held, write_held

    def release_keys(self, keys: Iterable[Hashable], owner) -> None:
        """Release a set of keys previously granted to ``owner``."""
        for key in keys:
            self.lock_for(key).release(owner)

    def acquire_read(self, key: Hashable, owner, timeout: Optional[float]):
        """Event for a shared acquisition on one key."""
        return self.lock_for(key).acquire_read(owner, timeout)

    def release_read(self, key: Hashable, owner) -> None:
        self.lock_for(key).release(owner)

    # ------------------------------------------------------------------
    # Introspection (tests / invariants)
    # ------------------------------------------------------------------
    def any_locked(self) -> bool:
        return any(lock.is_locked for lock in self._locks.values())

    def locked_keys(self) -> List[Hashable]:
        return [key for key, lock in self._locks.items() if lock.is_locked]
