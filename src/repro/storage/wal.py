"""Per-node write-ahead log and durable-state replay.

The simulator models a node's memory (``MultiVersionStore``, ``siteVC``,
the prepared table) as volatile: a durable crash (``Nemesis`` kind
``crash_durable``) wipes all of it at restart.  The WAL is the node's
"disk": an append-only record stream written *before* any externally
visible effect of the logged step (vote sent, Decide fan-out, clock
advance), so that :func:`replay` can rebuild exactly the state the rest
of the cluster may have observed.

Record vocabulary (one dataclass per protocol step, see DESIGN.md 5.5):

==================  ====================================================
``LoadRecord``      initial data load (the seed "checkpoint")
``PrepareRecord``   participant voted yes; writes are locked and staged
``DecisionRecord``  coordinator decided *commit* and assigned ``seq_no``
                    (logged before the Decide fan-out -- the classic
                    presumed-abort rule: no decision record, no Decide
                    ever sent, so recovery may safely abort)
``ApplyRecord``     a Decide installed versions and advanced ``siteVC``
``PropagateRecord`` a Propagate advanced ``siteVC`` (clock-only)
``AbortRecord``     a prepared transaction was resolved aborted
==================  ====================================================

Replay is **idempotent** and **order-insensitive within a sequence-number
gap**: per-origin clock advances are buffered until contiguous, records
at-or-below the rebuilt clock are skipped, and duplicated suffixes are
no-ops -- the Hypothesis suite in ``tests/storage/test_wal_properties.py``
pins both properties down.

Crash semantics: :meth:`WriteAheadLog.freeze` marks the crash instant.
Appends while frozen are discarded (and counted) -- the in-flight handler
compute that the network-level crash model lets keep running must not
become durable, since none of its messages escape the crashed node.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, List, Optional, Tuple

from repro.core.vector_clock import VectorClock
from repro.storage.store import MultiVersionStore


@dataclass(frozen=True)
class LoadRecord:
    """Initial (pre-run) data load at this node."""

    items: Tuple[Tuple[Hashable, object], ...]


@dataclass(frozen=True)
class PrepareRecord:
    """This node voted yes on a Prepare: writes staged, locks held."""

    txn_id: int
    coordinator: int
    writes: Tuple[Tuple[Hashable, object], ...]


@dataclass(frozen=True)
class DecisionRecord:
    """This node, as coordinator, decided *commit* for ``txn_id``.

    Logged before any Decide message leaves the node, so a recovered
    coordinator can answer in-doubt termination queries definitively:
    a transaction with no decision record never sent a Decide and is
    safely presumed aborted.
    """

    txn_id: int
    seq_no: int
    commit_vc: Tuple[int, ...]


@dataclass(frozen=True)
class ApplyRecord:
    """A commit's versions installed here; ``siteVC[origin] = seq_no``."""

    txn_id: int
    origin: int
    seq_no: int
    commit_vc: Tuple[int, ...]
    writes: Tuple[Tuple[Hashable, object], ...]


@dataclass(frozen=True)
class PropagateRecord:
    """A Propagate advanced ``siteVC[origin]`` to ``seq_no`` (no data)."""

    origin: int
    seq_no: int


@dataclass(frozen=True)
class AbortRecord:
    """A prepared transaction was resolved aborted and unstaged."""

    txn_id: int


WalRecord = object  # union of the record dataclasses above


class WriteAheadLog:
    """An append-only durable record stream for one node.

    The log survives the volatile-state wipe of a durable crash; it is
    the only channel through which pre-crash state reaches the recovered
    node.  ``freeze``/``unfreeze`` bracket the down window so post-crash
    handler compute cannot retroactively become durable.
    """

    def __init__(self) -> None:
        self._records: List[WalRecord] = []
        self._frozen = False
        #: Appends discarded while frozen (crash-window compute).
        self.discarded = 0

    def append(self, record: WalRecord) -> None:
        if self._frozen:
            self.discarded += 1
            return
        self._records.append(record)

    def freeze(self) -> None:
        """Mark the crash instant: later appends are lost, not durable."""
        self._frozen = True

    def unfreeze(self) -> None:
        """Re-admit appends (recovery has read the surviving records)."""
        self._frozen = False

    @property
    def frozen(self) -> bool:
        return self._frozen

    def __len__(self) -> int:
        return len(self._records)

    def records(self) -> Tuple[WalRecord, ...]:
        """A stable snapshot of the surviving records."""
        return tuple(self._records)


@dataclass
class ReplayResult:
    """Volatile state rebuilt from a WAL by :func:`replay`."""

    store: MultiVersionStore
    site_vc: VectorClock
    #: txn_id -> PrepareRecord for prepares with no matching apply/abort
    #: (the in-doubt set recovery must terminate).
    in_doubt: Dict[int, PrepareRecord]
    #: txn_id -> DecisionRecord for commits this node coordinated.
    decisions: Dict[int, DecisionRecord]
    #: Highest sequence number this node durably assigned as coordinator.
    curr_seq_no: int
    #: Records consumed (for metrics/assertions).
    replayed: int


def replay(records: Iterable[WalRecord], num_nodes: int) -> ReplayResult:
    """Rebuild a node's durable state from its WAL records.

    Clock-advancing records (``ApplyRecord``/``PropagateRecord``) are
    applied in per-origin sequence order regardless of their position in
    the stream: a record at or below the rebuilt ``siteVC`` is skipped
    (idempotence under duplicated prefixes), and a record above the next
    expected sequence number is buffered until the gap closes
    (order-insensitivity within a gap).  Buffered records that never
    become contiguous -- a malformed or truncated log -- are applied at
    the end in sequence order, jumping the clock, rather than silently
    dropped.
    """
    store = MultiVersionStore()
    site_vc = VectorClock.zeros(num_nodes)
    in_doubt: Dict[int, PrepareRecord] = {}
    decisions: Dict[int, DecisionRecord] = {}
    curr_seq_no = 0
    replayed = 0
    # origin -> {seq_no: record} waiting for its per-origin predecessor.
    pending: Dict[int, Dict[int, WalRecord]] = {}

    def apply_clock_record(record: WalRecord) -> None:
        if isinstance(record, ApplyRecord):
            commit_vc = VectorClock(record.commit_vc)
            for key, value in record.writes:
                store.install(
                    key,
                    value,
                    commit_vc.copy(),
                    origin=record.origin,
                    seq=record.seq_no,
                    writer_txn=record.txn_id,
                )
            in_doubt.pop(record.txn_id, None)
            site_vc[record.origin] = record.seq_no
        else:
            site_vc[record.origin] = record.seq_no

    def admit(record: WalRecord) -> None:
        """Apply a clock record in order, buffering across gaps."""
        origin, seq_no = record.origin, record.seq_no
        if seq_no <= site_vc[origin]:
            return  # duplicate of an already-applied transition
        if seq_no > site_vc[origin] + 1:
            pending.setdefault(origin, {})[seq_no] = record
            return
        apply_clock_record(record)
        waiting = pending.get(origin)
        while waiting:
            successor = waiting.pop(site_vc[origin] + 1, None)
            if successor is None:
                break
            apply_clock_record(successor)

    for record in records:
        replayed += 1
        if isinstance(record, LoadRecord):
            store.create_many(record.items, VectorClock.zero(num_nodes))
        elif isinstance(record, PrepareRecord):
            in_doubt[record.txn_id] = record
        elif isinstance(record, DecisionRecord):
            decisions[record.txn_id] = record
            if record.seq_no > curr_seq_no:
                curr_seq_no = record.seq_no
        elif isinstance(record, AbortRecord):
            in_doubt.pop(record.txn_id, None)
        elif isinstance(record, (ApplyRecord, PropagateRecord)):
            admit(record)
        else:
            raise TypeError(f"unknown WAL record {record!r}")

    # Drain never-contiguous leftovers (truncated logs) in seq order.
    for origin in sorted(pending):
        for seq_no in sorted(pending[origin]):
            record = pending[origin][seq_no]
            if seq_no > site_vc[origin]:
                apply_clock_record(record)

    # A coordinator's own applies also witness sequence numbers it
    # assigned; never hand out a seq at or below the clock's own entry.
    return ReplayResult(
        store=store,
        site_vc=site_vc,
        in_doubt=in_doubt,
        decisions=decisions,
        curr_seq_no=curr_seq_no,
        replayed=replayed,
    )


def store_fingerprint(store: MultiVersionStore) -> Dict[Hashable, Tuple]:
    """A comparable, exhaustive snapshot of a store's version chains.

    Captures every version's identity and payload -- ``(vid, origin,
    seq, value, commit vc, writer txn)`` per key in chain order -- so two
    stores compare bit-identical iff their chains do.  Used by the
    recovery tests to compare a recovered node against a never-crashed
    control run.
    """
    snapshot: Dict[Hashable, Tuple] = {}
    for key in store.keys():
        snapshot[key] = tuple(
            (
                version.vid,
                version.origin,
                version.seq,
                version.value,
                version.vc.to_tuple(),
                version.writer_txn,
            )
            for version in store.chain(key)
        )
    return snapshot


def version_set_fingerprint(store: MultiVersionStore) -> Dict[Hashable, Tuple]:
    """Like :func:`store_fingerprint` but vid-agnostic.

    Two replays that interleave independent origins differently can
    assign different per-key vids to the same version set; this
    fingerprint compares the *set* of installed versions (sorted by
    origin stamp) plus values, which is invariant under such reorderings.
    """
    snapshot: Dict[Hashable, Tuple] = {}
    for key in store.keys():
        snapshot[key] = tuple(
            sorted(
                (version.origin, version.seq, version.value, version.vc.to_tuple())
                for version in store.chain(key)
            )
        )
    return snapshot
