"""Per-node write-ahead log and durable-state replay.

The simulator models a node's memory (``MultiVersionStore``, ``siteVC``,
the prepared table) as volatile: a durable crash (``Nemesis`` kind
``crash_durable``) wipes all of it at restart.  The WAL is the node's
"disk": an append-only record stream written *before* any externally
visible effect of the logged step (vote sent, Decide fan-out, clock
advance), so that :func:`replay` can rebuild exactly the state the rest
of the cluster may have observed.

Record vocabulary (one dataclass per protocol step, see DESIGN.md 5.5):

===================  ===================================================
``LoadRecord``       initial data load (the seed "checkpoint")
``PrepareRecord``    participant voted yes; writes are locked and staged
``DecisionRecord``   coordinator decided *commit* and assigned ``seq_no``
                     (logged before the Decide fan-out -- the classic
                     presumed-abort rule: no decision record, no Decide
                     ever sent, so recovery may safely abort)
``ApplyRecord``      a Decide installed versions and advanced ``siteVC``
``PropagateRecord``  a Propagate advanced ``siteVC`` (clock-only)
``AbortRecord``      a prepared transaction was resolved aborted
``ReplicationRecord`` one replication stream record applied here as a
                     backup (docs/replication.md); replay rebuilds the
                     backup chains and per-primary stream state
``CheckpointRecord`` fingerprinted snapshot of the node's full durable
                     state; replay resets to it and continues with the
                     suffix, so truncating everything below the newest
                     checkpoint (:meth:`WriteAheadLog.truncate_to_\
checkpoint`) keeps replay cost bounded as history grows
===================  ===================================================

Replay is **idempotent** and **order-insensitive within a sequence-number
gap**: per-origin clock advances are buffered until contiguous, records
at-or-below the rebuilt clock are skipped, and duplicated suffixes are
no-ops -- the Hypothesis suite in ``tests/storage/test_wal_properties.py``
pins both properties down.

Crash semantics: :meth:`WriteAheadLog.freeze` marks the crash instant.
Appends while frozen are discarded (and counted) -- the in-flight handler
compute that the network-level crash model lets keep running must not
become durable, since none of its messages escape the crashed node.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Hashable, Iterable, List, Optional, Tuple

from repro.core.vector_clock import VectorClock
from repro.storage.chain import VersionChain
from repro.storage.store import MultiVersionStore
from repro.storage.version import Version


@dataclass(frozen=True)
class LoadRecord:
    """Initial (pre-run) data load at this node."""

    items: Tuple[Tuple[Hashable, object], ...]


@dataclass(frozen=True)
class PrepareRecord:
    """This node voted yes on a Prepare: writes staged, locks held."""

    txn_id: int
    coordinator: int
    writes: Tuple[Tuple[Hashable, object], ...]


@dataclass(frozen=True)
class DecisionRecord:
    """This node, as coordinator, decided *commit* for ``txn_id``.

    Logged before any Decide message leaves the node, so a recovered
    coordinator can answer in-doubt termination queries definitively:
    a transaction with no decision record never sent a Decide and is
    safely presumed aborted.
    """

    txn_id: int
    seq_no: int
    commit_vc: Tuple[int, ...]


@dataclass(frozen=True)
class ApplyRecord:
    """A commit's versions installed here; ``siteVC[origin] = seq_no``."""

    txn_id: int
    origin: int
    seq_no: int
    commit_vc: Tuple[int, ...]
    writes: Tuple[Tuple[Hashable, object], ...]


@dataclass(frozen=True)
class PropagateRecord:
    """A Propagate advanced ``siteVC[origin]`` to ``seq_no`` (no data)."""

    origin: int
    seq_no: int


@dataclass(frozen=True)
class AbortRecord:
    """A prepared transaction was resolved aborted and unstaged."""

    txn_id: int


@dataclass(frozen=True)
class ReplicationRecord:
    """One replication stream record this node applied as a backup.

    Logged per applied record, in stream order, so replay rebuilds both
    the verbatim backup chains (``kind="apply"`` installs) and the
    per-primary stream state -- applied high-water mark, replicated
    frontier, staged prepares, and the primary's decision log -- that a
    post-restart promotion would need.  The field vocabulary mirrors
    :class:`repro.core.wire.ReplicationEntry`.
    """

    primary: int
    seq: int
    kind: str
    txn_id: Optional[int] = None
    coordinator: Optional[int] = None
    origin: Optional[int] = None
    seq_no: Optional[int] = None
    commit_vc: Optional[Tuple[int, ...]] = None
    writes: Tuple = ()
    collected: FrozenSet[int] = frozenset()
    frontier: Optional[Tuple[int, ...]] = None
    round: int = 0


@dataclass(frozen=True)
class ViewChangeRecord:
    """A membership view this node acked (pending) or committed.

    Logged on the ack (``committed=False``, the in-progress view) and
    again on the commit (``committed=True``), so replay restores both the
    committed membership and any view change that was mid-flight at the
    crash -- the failure detector and the view coordinator then resume
    the change instead of treating the half-joined peer as a dead member.
    """

    epoch: int
    #: (node_id, state) pairs -- the full view, not a delta.
    members: Tuple[Tuple[int, str], ...]
    #: (site, final_seq) pairs for decommissioned sites (clock shrink).
    retired: Tuple[Tuple[int, int], ...]
    committed: bool


#: One version inside a checkpointed chain:
#: ``(value, vc_tuple, origin, seq, writer_txn, installed_at)``.
SnapshotVersion = Tuple[object, Tuple[int, ...], int, int, Optional[int], float]


@dataclass(frozen=True)
class CheckpointRecord:
    """A fingerprinted snapshot of the node's entire durable state.

    Replay *resets* to the snapshot (discarding whatever the preceding
    records built -- by construction the snapshot already reflects them)
    and continues with the suffix, which makes a truncated log and the
    full history replay to bit-identical state.  Everything recovery
    needs survives inside the snapshot:

    * the store's exact chain layout, including each chain's GC-advanced
      ``base_vid`` and every version's identity and payload;
    * ``siteVC`` and ``CurrSeqNo``;
    * the in-doubt prepares outstanding at checkpoint time (a crash
      after truncation would otherwise lose their staged writes);
    * the coordinator decision log (TxnStatus answers and own-origin
      re-announcement after a crash).

    ``fingerprint`` is a digest of the store snapshot, verified at
    replay -- a checkpoint that does not restore to exactly the state it
    captured fails loudly instead of silently diverging.
    """

    site_vc: Tuple[int, ...]
    curr_seq_no: int
    #: ``(key, base_vid, (SnapshotVersion, ...))`` per chain.
    chains: Tuple[Tuple[Hashable, int, Tuple[SnapshotVersion, ...]], ...]
    in_doubt: Tuple[PrepareRecord, ...]
    decisions: Tuple[DecisionRecord, ...]
    fingerprint: str
    #: WAL records captured below this checkpoint when it was taken
    #: (bookkeeping for truncation-safety assertions in tests).
    records_below: int = 0
    #: The committed membership view at checkpoint time, as an
    #: ``(epoch, members, retired)`` triple, or ``None`` for a
    #: static-membership node.  Carried (not fingerprinted) so WAL
    #: truncation below the checkpoint cannot lose the view history.
    view: Optional[Tuple] = None


class CheckpointMismatchError(Exception):
    """A checkpoint restored to state that contradicts its fingerprint."""


WalRecord = object  # union of the record dataclasses above


class WriteAheadLog:
    """An append-only durable record stream for one node.

    The log survives the volatile-state wipe of a durable crash; it is
    the only channel through which pre-crash state reaches the recovered
    node.  ``freeze``/``unfreeze`` bracket the down window so post-crash
    handler compute cannot retroactively become durable.
    """

    def __init__(self, *, buffered: bool = False) -> None:
        self._records: List[WalRecord] = []
        self._frozen = False
        #: Appends discarded while frozen (crash-window compute).
        self.discarded = 0
        #: Records dropped by checkpoint truncation, cumulatively.
        self.truncated = 0
        #: Buffered-durability mode (``fsync_latency > 0``): appends land
        #: in a volatile buffer and become durable only when
        #: :meth:`mark_durable` covers them.  Off (default), every append
        #: is durable instantly -- the historical free-sync model.
        self.buffered = buffered
        #: Absolute LSN (== ``truncated`` + buffer index + 1) up to which
        #: records are durable.  Meaningful only in buffered mode.
        self._durable = 0
        #: Hook invoked with the new LSN after every successful append
        #: (the group-commit flusher registers itself here so membership
        #: and checkpoint appends are synced without explicit plumbing).
        self.on_append = None
        #: Completed syncs and records they covered (buffered mode).
        self.syncs = 0
        self.records_synced = 0
        #: Buffered-but-unsynced records dropped at freeze (crash loss).
        self.lost_on_crash = 0

    @property
    def tail_lsn(self) -> int:
        """Absolute LSN of the newest appended record (0 = empty log)."""
        return self.truncated + len(self._records)

    @property
    def durable_lsn(self) -> int:
        """Absolute LSN up to which the log would survive a crash."""
        return self._durable if self.buffered else self.tail_lsn

    def append(self, record: WalRecord) -> int:
        """Append one record; returns its absolute LSN.

        A frozen (mid-crash) log discards the append and returns the
        unchanged tail -- waiting on that LSN covers nothing new, and
        callers on the crash path check :attr:`frozen` anyway.
        """
        if self._frozen:
            self.discarded += 1
            return self.tail_lsn
        self._records.append(record)
        lsn = self.truncated + len(self._records)
        hook = self.on_append
        if hook is not None:
            hook(lsn)
        return lsn

    def append_durable(self, record: WalRecord) -> int:
        """Append with instant durability (setup-time writes: data load).

        The initial load happens before the run -- synchronously, like
        formatting the disk -- so it never competes for sync bandwidth
        and is never part of a crash's lost suffix.
        """
        if self._frozen:
            self.discarded += 1
            return self.tail_lsn
        self._records.append(record)
        lsn = self.truncated + len(self._records)
        if self.buffered and lsn > self._durable:
            self._durable = lsn
        return lsn

    def is_durable(self, lsn: int) -> bool:
        return self.durable_lsn >= lsn

    def mark_durable(self, lsn: int) -> int:
        """One sync completed: records up to ``lsn`` are durable.

        Returns the number of newly durable records.  No-op outside
        buffered mode (everything is always durable there).
        """
        if not self.buffered:
            return 0
        lsn = min(lsn, self.tail_lsn)
        newly = lsn - self._durable
        if newly <= 0:
            newly = 0
        else:
            self._durable = lsn
        self.syncs += 1
        self.records_synced += newly
        return newly

    def freeze(self) -> None:
        """Mark the crash instant: later appends are lost, not durable.

        In buffered mode the unsynced suffix -- exactly the records past
        :attr:`durable_lsn` -- is dropped here: it only ever existed in
        the volatile buffer, so the crash loses it.  Commit paths wait
        for their Decision record's group before acknowledging, which is
        what makes this loss invisible to acknowledged transactions.
        """
        self._frozen = True
        if self.buffered:
            lost = self.truncated + len(self._records) - self._durable
            if lost > 0:
                del self._records[len(self._records) - lost:]
                self.lost_on_crash += lost

    def unfreeze(self) -> None:
        """Re-admit appends (recovery has read the surviving records)."""
        self._frozen = False

    @property
    def frozen(self) -> bool:
        return self._frozen

    def __len__(self) -> int:
        return len(self._records)

    def records(self) -> Tuple[WalRecord, ...]:
        """A stable snapshot of the surviving records."""
        return tuple(self._records)

    def truncate_to_checkpoint(self) -> int:
        """Drop every record below the newest checkpoint; returns count.

        The caller is responsible for the distributed-safety condition
        (every peer has applied this node's own commit frontier as of the
        checkpoint -- see ``CheckpointManager``); locally the operation
        is always state-preserving because replay resets at the
        checkpoint anyway.  A frozen (mid-crash) log refuses to truncate.
        """
        if self._frozen:
            return 0
        index = None
        for position in range(len(self._records) - 1, -1, -1):
            if isinstance(self._records[position], CheckpointRecord):
                index = position
                break
        if not index:  # no checkpoint, or already the first record
            return 0
        if self.buffered and self._durable < self.truncated + index + 1:
            # The checkpoint itself has not hit disk yet; truncating the
            # records it summarizes would leave a log whose surviving
            # prefix after a crash misses both.  The group-commit flusher
            # syncs it shortly; the next truncation attempt proceeds.
            return 0
        self._records = self._records[index:]
        self.truncated += index
        return index


def checkpoint_fingerprint(
    chains: Iterable[Tuple[Hashable, int, Tuple[SnapshotVersion, ...]]],
    site_vc: Tuple[int, ...],
    curr_seq_no: int,
) -> str:
    """Digest of a checkpoint's store + clock content.

    Keys and values reach the digest through ``repr``, which is stable
    for the plain scalar payloads the simulation stores; the digest is
    compared between capture and restore, both within one process, so
    only self-consistency is required.
    """
    hasher = hashlib.sha256()
    for key, base_vid, versions in sorted(
        chains, key=lambda entry: repr(entry[0])
    ):
        hasher.update(repr((key, base_vid, versions)).encode())
    hasher.update(repr((site_vc, curr_seq_no)).encode())
    return hasher.hexdigest()


def build_checkpoint(
    store: MultiVersionStore,
    site_vc: VectorClock,
    curr_seq_no: int,
    in_doubt: Iterable[PrepareRecord] = (),
    decisions: Iterable[DecisionRecord] = (),
    records_below: int = 0,
    view: Optional[Tuple] = None,
) -> CheckpointRecord:
    """Capture a node's durable state as a :class:`CheckpointRecord`."""
    chains = tuple(
        (
            key,
            store.chain(key)._base_vid,
            tuple(
                (
                    version.value,
                    version.vc.to_tuple(),
                    version.origin,
                    version.seq,
                    version.writer_txn,
                    version.installed_at,
                )
                for version in store.chain(key)
            ),
        )
        for key in store.keys()
    )
    site_vc_tuple = site_vc.to_tuple()
    return CheckpointRecord(
        site_vc=site_vc_tuple,
        curr_seq_no=curr_seq_no,
        chains=chains,
        in_doubt=tuple(
            sorted(in_doubt, key=lambda record: record.txn_id)
        ),
        decisions=tuple(
            sorted(decisions, key=lambda record: record.txn_id)
        ),
        fingerprint=checkpoint_fingerprint(
            chains, site_vc_tuple, curr_seq_no
        ),
        records_below=records_below,
        view=view,
    )


def restore_store(record: CheckpointRecord) -> MultiVersionStore:
    """Rebuild the exact chain layout a checkpoint captured.

    Reconstructs each chain's GC-advanced ``base_vid`` and dense vid
    sequence directly (the ``install`` API always starts at vid 0), then
    verifies the record's fingerprint against the rebuilt state.
    """
    store = MultiVersionStore()
    chains = store._chains
    for key, base_vid, versions in record.chains:
        chain = VersionChain(key)
        chain._base_vid = base_vid
        vid = base_vid
        for value, vc, origin, seq, writer_txn, installed_at in versions:
            chain._versions.append(
                Version(
                    key, value, VectorClock(vc), vid, origin, seq,
                    writer_txn, installed_at,
                )
            )
            vid += 1
        chain._latest = chain._versions[-1] if chain._versions else None
        chains[key] = chain
    rebuilt = checkpoint_fingerprint(
        (
            (
                key,
                chain._base_vid,
                tuple(
                    (
                        version.value,
                        version.vc.to_tuple(),
                        version.origin,
                        version.seq,
                        version.writer_txn,
                        version.installed_at,
                    )
                    for version in chain
                ),
            )
            for key, chain in chains.items()
        ),
        record.site_vc,
        record.curr_seq_no,
    )
    if rebuilt != record.fingerprint:
        raise CheckpointMismatchError(
            f"checkpoint fingerprint {record.fingerprint} restored as {rebuilt}"
        )
    return store


@dataclass
class ReplayResult:
    """Volatile state rebuilt from a WAL by :func:`replay`."""

    store: MultiVersionStore
    site_vc: VectorClock
    #: txn_id -> PrepareRecord for prepares with no matching apply/abort
    #: (the in-doubt set recovery must terminate).
    in_doubt: Dict[int, PrepareRecord]
    #: txn_id -> DecisionRecord for commits this node coordinated.
    decisions: Dict[int, DecisionRecord]
    #: Highest sequence number this node durably assigned as coordinator.
    curr_seq_no: int
    #: Records consumed (for metrics/assertions).
    replayed: int
    #: Checkpoint records encountered (the last one reset the state).
    checkpoints: int = 0
    #: Newest *committed* membership view on record, as an
    #: ``(epoch, members, retired)`` triple (None = static membership).
    view: Optional[Tuple] = None
    #: A view acked but not yet committed at the crash (epoch past the
    #: committed one); recovery re-installs it as the in-progress view.
    pending_view: Optional[Tuple] = None
    #: primary id -> backup-side stream state rebuilt from the node's
    #: ReplicationRecords: ``{"applied", "frontier", "staged",
    #: "decisions"}`` (staged/decisions map txn_id -> the record, which
    #: is attribute-compatible with ``ReplicationEntry``).
    replication: Dict[int, Dict] = field(default_factory=dict)


def replay(records: Iterable[WalRecord], num_nodes: int) -> ReplayResult:
    """Rebuild a node's durable state from its WAL records.

    Clock-advancing records (``ApplyRecord``/``PropagateRecord``) are
    applied in per-origin sequence order regardless of their position in
    the stream: a record at or below the rebuilt ``siteVC`` is skipped
    (idempotence under duplicated prefixes), and a record above the next
    expected sequence number is buffered until the gap closes
    (order-insensitivity within a gap).  Buffered records that never
    become contiguous -- a malformed or truncated log -- are applied at
    the end in sequence order, jumping the clock, rather than silently
    dropped.
    """
    store = MultiVersionStore()
    site_vc = VectorClock.zeros(num_nodes)
    in_doubt: Dict[int, PrepareRecord] = {}
    decisions: Dict[int, DecisionRecord] = {}
    curr_seq_no = 0
    replayed = 0
    checkpoints = 0
    view: Optional[Tuple] = None
    pending_view: Optional[Tuple] = None
    replication: Dict[int, Dict] = {}
    # origin -> {seq_no: record} waiting for its per-origin predecessor.
    pending: Dict[int, Dict[int, WalRecord]] = {}

    def apply_clock_record(record: WalRecord) -> None:
        # A record from a post-join origin may outrun the static width
        # the replay started from; widen on demand (new sites at zero).
        if record.origin >= len(site_vc):
            site_vc.widen(record.origin + 1)
        if isinstance(record, ApplyRecord):
            commit_vc = VectorClock(record.commit_vc)
            for key, value in record.writes:
                store.install(
                    key,
                    value,
                    commit_vc.copy(),
                    origin=record.origin,
                    seq=record.seq_no,
                    writer_txn=record.txn_id,
                )
            in_doubt.pop(record.txn_id, None)
            site_vc[record.origin] = record.seq_no
        else:
            site_vc[record.origin] = record.seq_no

    def admit(record: WalRecord) -> None:
        """Apply a clock record in order, buffering across gaps."""
        origin, seq_no = record.origin, record.seq_no
        if origin >= len(site_vc):
            site_vc.widen(origin + 1)
        if seq_no <= site_vc[origin]:
            return  # duplicate of an already-applied transition
        if seq_no > site_vc[origin] + 1:
            pending.setdefault(origin, {})[seq_no] = record
            return
        apply_clock_record(record)
        waiting = pending.get(origin)
        while waiting:
            successor = waiting.pop(site_vc[origin] + 1, None)
            if successor is None:
                break
            apply_clock_record(successor)

    for record in records:
        replayed += 1
        if isinstance(record, LoadRecord):
            store.create_many(record.items, VectorClock.zero(num_nodes))
        elif isinstance(record, PrepareRecord):
            in_doubt[record.txn_id] = record
        elif isinstance(record, DecisionRecord):
            decisions[record.txn_id] = record
            if record.seq_no > curr_seq_no:
                curr_seq_no = record.seq_no
        elif isinstance(record, AbortRecord):
            in_doubt.pop(record.txn_id, None)
        elif isinstance(record, (ApplyRecord, PropagateRecord)):
            admit(record)
        elif isinstance(record, CheckpointRecord):
            # Reset to the snapshot.  The preceding records built exactly
            # the state the snapshot captured (checkpoints are taken from
            # live state, after everything below them was applied), so
            # discarding the rebuilt prefix -- including gap-buffered
            # clock records at or below the snapshot clock -- loses
            # nothing; this is what makes a truncated log replay
            # bit-identically to the full history.
            checkpoints += 1
            store = restore_store(record)
            site_vc = VectorClock(record.site_vc)
            in_doubt = {
                prepare.txn_id: prepare for prepare in record.in_doubt
            }
            decisions = {
                decision.txn_id: decision for decision in record.decisions
            }
            if record.curr_seq_no > curr_seq_no:
                curr_seq_no = record.curr_seq_no
            if record.view is not None:
                view = record.view
                if pending_view is not None and pending_view[0] <= view[0]:
                    pending_view = None
            pending.clear()
        elif isinstance(record, ViewChangeRecord):
            triple = (record.epoch, record.members, record.retired)
            if record.committed:
                if view is None or record.epoch > view[0]:
                    view = triple
                if pending_view is not None and pending_view[0] <= record.epoch:
                    pending_view = None
            elif view is None or record.epoch > view[0]:
                pending_view = triple
        elif isinstance(record, ReplicationRecord):
            # Backup-side stream state.  Apply installs go straight into
            # the store (never through ``admit``): a backup's verbatim
            # installs do not advance its own clock, exactly as live.
            state = replication.get(record.primary)
            if state is None:
                state = {
                    "applied": 0,
                    "frontier": None,
                    "staged": {},
                    "decisions": {},
                }
                replication[record.primary] = state
            if record.seq <= state["applied"]:
                continue  # duplicated prefix
            state["applied"] = record.seq
            if record.kind == "prepare":
                state["staged"][record.txn_id] = record
            elif record.kind == "abort":
                staged = state["staged"].get(record.txn_id)
                if staged is not None and staged.round == record.round:
                    del state["staged"][record.txn_id]
            elif record.kind == "decision":
                state["decisions"][record.txn_id] = record
            elif record.kind == "apply":
                state["staged"].pop(record.txn_id, None)
                commit_vc = VectorClock(record.commit_vc)
                for key, value in record.writes:
                    store.install(
                        key,
                        value,
                        commit_vc.copy(),
                        origin=record.origin,
                        seq=record.seq_no,
                        writer_txn=record.txn_id,
                    )
                state["frontier"] = record.frontier
            elif record.kind == "frontier":
                state["frontier"] = record.frontier
        else:
            raise TypeError(f"unknown WAL record {record!r}")

    # Drain never-contiguous leftovers (truncated logs) in seq order.
    for origin in sorted(pending):
        for seq_no in sorted(pending[origin]):
            record = pending[origin][seq_no]
            if seq_no > site_vc[origin]:
                apply_clock_record(record)

    # A committed view wider than the static width the replay started
    # from widens the rebuilt clock (new sites at zero).
    if view is not None and view[1]:
        ids = {member for member, _state in view[1]}
        ids.update(site for site, _final in view[2])
        width = max(ids) + 1
        if width > len(site_vc):
            site_vc.widen(width)

    # A coordinator's own applies also witness sequence numbers it
    # assigned; never hand out a seq at or below the clock's own entry.
    return ReplayResult(
        store=store,
        site_vc=site_vc,
        in_doubt=in_doubt,
        decisions=decisions,
        curr_seq_no=curr_seq_no,
        replayed=replayed,
        checkpoints=checkpoints,
        view=view,
        pending_view=pending_view,
        replication=replication,
    )


def store_fingerprint(store: MultiVersionStore) -> Dict[Hashable, Tuple]:
    """A comparable, exhaustive snapshot of a store's version chains.

    Captures every version's identity and payload -- ``(vid, origin,
    seq, value, commit vc, writer txn)`` per key in chain order -- so two
    stores compare bit-identical iff their chains do.  Used by the
    recovery tests to compare a recovered node against a never-crashed
    control run.
    """
    snapshot: Dict[Hashable, Tuple] = {}
    for key in store.keys():
        snapshot[key] = tuple(
            (
                version.vid,
                version.origin,
                version.seq,
                version.value,
                version.vc.to_tuple(),
                version.writer_txn,
            )
            for version in store.chain(key)
        )
    return snapshot


def version_set_fingerprint(store: MultiVersionStore) -> Dict[Hashable, Tuple]:
    """Like :func:`store_fingerprint` but vid-agnostic.

    Two replays that interleave independent origins differently can
    assign different per-key vids to the same version set; this
    fingerprint compares the *set* of installed versions (sorted by
    origin stamp) plus values, which is invariant under such reorderings.
    """
    snapshot: Dict[Hashable, Tuple] = {}
    for key in store.keys():
        snapshot[key] = tuple(
            sorted(
                (version.origin, version.seq, version.value, version.vc.to_tuple())
                for version in store.chain(key)
            )
        )
    return snapshot
