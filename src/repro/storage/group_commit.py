"""Group commit: batched durable syncs for the write-ahead log.

With ``DurabilityConfig.fsync_latency > 0`` the WAL runs in buffered mode
(:class:`~repro.storage.wal.WriteAheadLog` with ``buffered=True``): an
append lands in a volatile buffer and becomes durable only when a sync
covering its LSN completes.  This module owns the sync schedule.

Two regimes, selected by ``group_commit_window``:

* **Per-record (naive, window == 0).**  The disk syncs one record per
  ``fsync_latency``, strictly FIFO.  This is the honest cost of the
  "one sync per WalRecord per protocol step" durability story the
  simulator previously modelled as free -- and the throughput cliff the
  benchmarks demonstrate: a node whose protocol work produces records
  faster than ``1 / fsync_latency`` per second queues without bound.

* **Group commit (window > 0).**  The first sync request opens a window;
  every record appended while it is open joins the group, and one sync
  -- one ``fsync_latency`` -- covers all of them.  The window closes
  early when ``group_commit_max_records`` are pending.  Commit
  acknowledgements (and prepare votes) wait for the group holding their
  record, so a crash between buffer and flush loses only unacknowledged
  work.

Crash semantics: ``WriteAheadLog.freeze`` drops the unsynced suffix; the
flusher's in-flight sync, if any, is aborted (nothing in its group
becomes durable) and every :meth:`WalFlusher.ensure_durable` waiter is
woken to observe the frozen log and report failure to its commit path.
"""

from __future__ import annotations

from typing import Optional

from repro.sim import ConditionVariable


class WalFlusher:
    """The sync scheduler for one node's buffered WAL.

    Inert (``active`` False) when ``fsync_latency == 0``: the WAL is not
    buffered, every append is instantly durable, and ``ensure_durable``
    returns immediately -- the historical behaviour, bit for bit.
    """

    def __init__(
        self, sim, wal, durability, *, metrics=None, tracer=None, node_id=-1
    ) -> None:
        self.sim = sim
        self.wal = wal
        self.fsync_latency = durability.fsync_latency
        self.window = durability.group_commit_window
        self.max_records = max(1, durability.group_commit_max_records)
        self.metrics = metrics
        self.tracer = tracer
        self.node_id = node_id
        #: Notified every time a sync completes (durable_lsn advanced).
        self.durable_cv = ConditionVariable(sim)
        #: Notified to cut a window short (early flush) or abort on crash.
        self._kick_cv = ConditionVariable(sim)
        #: Highest LSN whose durability has been requested.
        self._requested = 0
        #: Whether the flusher loop of the current epoch is running.
        self._running = False
        #: Bumped by :meth:`on_crash`; a loop from a previous epoch exits
        #: without touching the (possibly recovered) log.
        self._epoch = 0
        if self.active:
            wal.on_append = self.request_sync

    @property
    def active(self) -> bool:
        return self.fsync_latency > 0

    # ------------------------------------------------------------------
    # Sync requests
    # ------------------------------------------------------------------
    def request_sync(self, lsn: Optional[int] = None) -> None:
        """Ask for records up to ``lsn`` (default: the tail) to be synced.

        Every append requests a sync -- lazy records (Apply/Propagate)
        must eventually reach disk too -- but only the prepare and
        decision paths *wait* (:meth:`ensure_durable`).
        """
        wal = self.wal
        if not self.active or wal.frozen:
            return
        if lsn is None:
            lsn = wal.tail_lsn
        if lsn > self._requested:
            self._requested = lsn
        if not self._running:
            self._running = True
            self.sim.spawn(
                self._run(self._epoch), name=f"n{self.node_id}:wal-flush"
            )
        else:
            self._kick_cv.notify_all()

    def ensure_durable(self, lsn: int):
        """Generator subroutine: block until ``lsn`` is durable.

        Returns ``True`` once the covering sync completed, ``False`` if a
        durable crash intervened (the record is gone; the caller's
        protocol step must not be acknowledged).
        """
        wal = self.wal
        if not self.active or wal.durable_lsn >= lsn:
            return True
        self.request_sync(lsn)
        while True:
            if wal.frozen:
                return False
            if wal.durable_lsn >= lsn:
                return True
            yield self.durable_cv.wait()

    # ------------------------------------------------------------------
    # Crash / recovery hooks
    # ------------------------------------------------------------------
    def on_crash(self) -> None:
        """The node crashed durably: abort in-flight syncs, wake waiters.

        Called after ``WriteAheadLog.freeze`` dropped the unsynced
        suffix; waiters observe the frozen log and return ``False`` from
        :meth:`ensure_durable`.
        """
        self._epoch += 1
        self._running = False
        self._requested = self.wal.durable_lsn
        self._kick_cv.notify_all()
        self.durable_cv.notify_all()

    def on_recovery(self) -> None:
        """Recovery re-admitted appends: re-arm against the replayed log."""
        self._requested = self.wal.durable_lsn
        if self.active:
            self.wal.on_append = self.request_sync

    # ------------------------------------------------------------------
    # The flusher loop
    # ------------------------------------------------------------------
    def _backlog(self) -> int:
        return self._requested - self.wal._durable

    def _run(self, epoch: int):
        sim = self.sim
        wal = self.wal
        try:
            while True:
                if epoch != self._epoch or wal.frozen:
                    return
                if self._requested > wal.tail_lsn:
                    self._requested = wal.tail_lsn
                if self._backlog() <= 0:
                    return
                if self.window > 0:
                    # Group commit: hold the window open for joiners,
                    # cutting it short at max_records.
                    deadline = sim.now + self.window
                    sim.call_later(self.window, self._kick_cv.notify_all)
                    while (
                        sim.now < deadline
                        and epoch == self._epoch
                        and not wal.frozen
                        and self._backlog() < self.max_records
                    ):
                        yield self._kick_cv.wait()
                    if epoch != self._epoch or wal.frozen:
                        return
                    cover = min(self._requested, wal.tail_lsn)
                else:
                    # Per-record durability: each record pays its own
                    # serialized sync.
                    cover = wal._durable + 1
                if self.tracer is not None and self.tracer._enabled:
                    self.tracer.emit(
                        self.node_id, "wal_sync",
                        cover=cover, pending=cover - wal._durable,
                    )
                yield sim.timeout(self.fsync_latency)
                if epoch != self._epoch or wal.frozen:
                    return  # crash mid-sync: nothing in this group landed
                newly = wal.mark_durable(cover)
                if self.metrics is not None:
                    self.metrics.on_wal_sync(newly)
                self.durable_cv.notify_all()
        finally:
            if epoch == self._epoch:
                self._running = False
