"""Storage substrate: multi-version chains, stores, and per-key locking."""

from repro.storage.version import Version
from repro.storage.chain import VersionChain
from repro.storage.store import MultiVersionStore
from repro.storage.simple_store import SimpleStore, SimpleRecord
from repro.storage.locks import LockTable
from repro.storage.wal import (
    AbortRecord,
    ApplyRecord,
    DecisionRecord,
    LoadRecord,
    PrepareRecord,
    PropagateRecord,
    ReplayResult,
    WriteAheadLog,
    replay,
    store_fingerprint,
    version_set_fingerprint,
)

__all__ = [
    "AbortRecord",
    "ApplyRecord",
    "DecisionRecord",
    "LoadRecord",
    "LockTable",
    "MultiVersionStore",
    "SimpleRecord",
    "SimpleStore",
    "PrepareRecord",
    "PropagateRecord",
    "ReplayResult",
    "Version",
    "VersionChain",
    "WriteAheadLog",
    "replay",
    "store_fingerprint",
    "version_set_fingerprint",
]
