"""Storage substrate: multi-version chains, stores, and per-key locking."""

from repro.storage.version import Version
from repro.storage.chain import VersionChain
from repro.storage.store import MultiVersionStore
from repro.storage.simple_store import SimpleStore, SimpleRecord
from repro.storage.locks import LockTable

__all__ = [
    "LockTable",
    "MultiVersionStore",
    "SimpleRecord",
    "SimpleStore",
    "Version",
    "VersionChain",
]
