"""Offline consistency checks over recorded histories.

Three checks cover the correctness obligations of Section 4.6 of the paper:

* **No fractured reads** (read skew, Berenson et al.): a snapshot that
  observes *some* of an update transaction's writes must observe all of
  them (for the keys it read).
* **Per-origin prefix order**: commits that originate at the same node
  carry increasing sequence numbers and must be observed as a prefix --
  seeing seq ``s`` implies seeing every seq ``< s`` from that origin.
* **Long-fork detection**: two read-only transactions observing two
  independent update transactions in opposite orders.  PSI *permits* this
  for concurrent transactions; FW-KV additionally eliminates the
  *observable* variant where both updates committed before both readers
  started (Section 3.3).  The finder reports both flavours so tests can
  assert the right subset.

The checker needs to know, for every ``(key, vid)`` pair, which transaction
created it and with which origin/sequence stamp -- the *version catalog*
that :meth:`repro.system.Cluster.version_catalog` extracts from the stores
after a run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Set, Tuple

from repro.metrics.history import History, TxnRecord

#: (key, vid) -> (origin node, origin sequence number, creating txn id)
VersionCatalog = Dict[Tuple[Hashable, int], Tuple[int, int, int]]


@dataclass
class CheckResult:
    ok: bool
    violations: List[str] = field(default_factory=list)

    def __bool__(self) -> bool:
        return self.ok


def _writes_by_txn(history: History) -> Dict[int, Dict[Hashable, int]]:
    """txn_id -> {key: vid written} over committed update transactions."""
    result: Dict[int, Dict[Hashable, int]] = {}
    for record in history.committed_updates():
        result[record.txn_id] = {op.key: op.vid for op in record.writes()}
    return result


def check_no_read_skew(history: History) -> CheckResult:
    """Atomic visibility: no transaction observes half of another's writes.

    For reader T and writer W: if T read key ``k`` at a version at least as
    new as W's write to ``k``, then for every other key ``q`` that both W
    wrote and T read, T's version of ``q`` must also be at least W's.
    """
    violations: List[str] = []
    writers = _writes_by_txn(history)
    for reader in history:
        reads = {op.key: op.vid for op in reader.reads()}
        if not reads:
            continue
        for writer_id, writes in writers.items():
            if writer_id == reader.txn_id:
                continue
            shared = [k for k in writes if k in reads]
            if len(shared) < 2:
                continue
            saw = [k for k in shared if reads[k] >= writes[k]]
            missed = [k for k in shared if reads[k] < writes[k]]
            if saw and missed:
                violations.append(
                    f"txn {reader.txn_id} observed write of txn {writer_id} "
                    f"on {saw} but missed it on {missed} (fractured read)"
                )
    return CheckResult(not violations, violations)


def check_site_order(history: History, catalog: VersionCatalog) -> CheckResult:
    """Per-origin prefix consistency of reading snapshots.

    If a snapshot includes a version with origin stamp ``(j, s)``, it must
    not simultaneously miss a version with stamp ``(j, s') <= (j, s)`` on
    another key it read.
    """
    violations: List[str] = []
    for reader in history:
        # Highest origin-sequence the snapshot provably includes, per origin.
        seen_floor: Dict[int, int] = {}
        for op in reader.reads():
            entry = catalog.get((op.key, op.vid))
            if entry is None:
                continue  # version reclaimed by GC after the run
            origin, seq, _txn = entry
            seen_floor[origin] = max(seen_floor.get(origin, 0), seq)
        for op in reader.reads():
            if op.latest_vid_at_read is None:
                continue
            # Any newer version of this key that existed when it was read
            # and originates below the seen floor should have been visible.
            for missed_vid in range(op.vid + 1, op.latest_vid_at_read + 1):
                entry = catalog.get((op.key, missed_vid))
                if entry is None:
                    continue
                origin, seq, txn = entry
                if seq <= seen_floor.get(origin, 0):
                    violations.append(
                        f"txn {reader.txn_id} read {op.key!r}@{op.vid} but "
                        f"missed version {missed_vid} from origin {origin} "
                        f"seq {seq} despite having seen seq "
                        f"{seen_floor[origin]} from that origin"
                    )
    return CheckResult(not violations, violations)


@dataclass
class LongFork:
    """Two readers observing two independent writers in opposite orders."""

    reader_a: int
    reader_b: int
    writer_x: int
    writer_y: int
    #: True when both writers committed (in real time) before both readers
    #: started -- the client-observable anomaly FW-KV eliminates.
    observable: bool

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "observable" if self.observable else "concurrent"
        return (
            f"<LongFork {kind}: reader {self.reader_a} saw {self.writer_x} "
            f"not {self.writer_y}; reader {self.reader_b} saw "
            f"{self.writer_y} not {self.writer_x}>"
        )


def _observation_sets(
    reader: TxnRecord, writers: Dict[int, Dict[Hashable, int]]
) -> Tuple[Set[int], Set[int]]:
    """(saw, missed) update-transaction ids for one reader's snapshot."""
    reads = {op.key: op.vid for op in reader.reads()}
    saw: Set[int] = set()
    missed: Set[int] = set()
    for writer_id, writes in writers.items():
        shared = [k for k in writes if k in reads]
        if not shared:
            continue
        if all(reads[k] >= writes[k] for k in shared):
            saw.add(writer_id)
        elif all(reads[k] < writes[k] for k in shared):
            missed.add(writer_id)
        # A mixed observation is a fractured read; check_no_read_skew
        # reports it, so it is ignored here.
    return saw, missed


def find_long_forks(history: History) -> List[LongFork]:
    """All long-fork witness quadruples in the history.

    Quadratic in the number of read-only transactions; intended for
    scenario tests and bounded stress runs, not full benchmark sweeps.
    """
    writers = _writes_by_txn(history)
    by_id = {record.txn_id: record for record in history}
    readers = history.committed_read_only()
    observations = {r.txn_id: _observation_sets(r, writers) for r in readers}

    forks: List[LongFork] = []
    for i, reader_a in enumerate(readers):
        saw_a, missed_a = observations[reader_a.txn_id]
        for reader_b in readers[i + 1 :]:
            saw_b, missed_b = observations[reader_b.txn_id]
            x_candidates = saw_a & missed_b
            y_candidates = saw_b & missed_a
            for writer_x in sorted(x_candidates):
                for writer_y in sorted(y_candidates):
                    both_start = min(reader_a.start_time, reader_b.start_time)
                    observable = (
                        by_id[writer_x].end_time <= both_start
                        and by_id[writer_y].end_time <= both_start
                    )
                    forks.append(
                        LongFork(
                            reader_a.txn_id,
                            reader_b.txn_id,
                            writer_x,
                            writer_y,
                            observable,
                        )
                    )
    return forks
