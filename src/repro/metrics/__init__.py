"""Measurement: run statistics, freshness accounting, histories, checkers."""

from repro.metrics.stats import (
    AbortReason,
    MetricsRecorder,
    ReservoirSample,
    RunningStat,
)
from repro.metrics.history import History, OpRecord, TxnRecord
from repro.metrics.psi_checker import (
    CheckResult,
    check_no_read_skew,
    check_site_order,
    find_long_forks,
)

__all__ = [
    "AbortReason",
    "CheckResult",
    "History",
    "MetricsRecorder",
    "OpRecord",
    "ReservoirSample",
    "RunningStat",
    "TxnRecord",
    "check_no_read_skew",
    "check_site_order",
    "find_long_forks",
]
