"""Run statistics collected while a cluster executes a workload."""

from __future__ import annotations

import math
import random
from collections import Counter
from typing import Dict, List, Optional


class AbortReason:
    """Why an update transaction's commit attempt failed."""

    LOCK_TIMEOUT = "lock_timeout"
    VALIDATION = "validation"
    VOTE_NO = "vote_no"
    #: The coordinator's prepare/commit RPC exhausted its retries and the
    #: transaction was presumed-aborted (crash, partition, or loss).
    RPC_TIMEOUT = "rpc_timeout"
    #: The failure detector classified a participant dead and the
    #: coordinator failed the commit fast instead of paying the timeout
    #: ladder (``HealingConfig.fail_fast_commits``).
    PEER_DEAD = "peer_dead"
    #: The node crashed durably while the transaction was waiting for its
    #: Decision record's group-commit sync: the record was dropped with
    #: the unsynced WAL suffix, so the commit is never acknowledged.
    NODE_CRASHED = "node_crashed"


class RunningStat:
    """Streaming mean/min/max/count without storing every sample."""

    __slots__ = ("count", "total", "minimum", "maximum")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def add(self, value: float) -> None:
        """Fold one sample into the statistic."""
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        """Mean of all samples (0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> Dict[str, float]:
        """Summary fields for reports."""
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self.minimum if self.count else 0.0,
            "max": self.maximum if self.count else 0.0,
        }


class ReservoirSample:
    """Fixed-size uniform sample (Vitter's algorithm R) for percentiles.

    Keeps an unbiased sample of a stream without storing it all; the
    replacement choices come from a dedicated seeded RNG, so sampling does
    not perturb (and is not perturbed by) workload randomness.
    """

    __slots__ = ("capacity", "_samples", "_seen", "_rng")

    def __init__(self, capacity: int = 1024, seed: int = 0) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._samples: List[float] = []
        self._seen = 0
        self._rng = random.Random(seed)

    def add(self, value: float) -> None:
        """Offer one sample to the reservoir."""
        self._seen += 1
        if len(self._samples) < self.capacity:
            self._samples.append(value)
            return
        slot = self._rng.randrange(self._seen)
        if slot < self.capacity:
            self._samples[slot] = value

    @property
    def seen(self) -> int:
        """Total samples offered (not just retained)."""
        return self._seen

    def percentile(self, q: float) -> float:
        """The q-quantile (0 <= q <= 1) of the sampled values; 0 if empty."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be within [0, 1]")
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        index = min(int(q * len(ordered)), len(ordered) - 1)
        return ordered[index]

    def as_dict(self) -> Dict[str, float]:
        """p50/p95/p99 summary for reports."""
        return {
            "seen": self._seen,
            "p50": self.percentile(0.50),
            "p95": self.percentile(0.95),
            "p99": self.percentile(0.99),
        }


class MetricsRecorder:
    """Counters and samplers shared by every node and client in a cluster.

    Recording is gated by a measurement window so warmup transactions do
    not pollute results: the harness calls :meth:`open_window` once steady
    state is reached, with the simulator clock deciding membership.
    """

    def __init__(self, sim) -> None:
        self.sim = sim
        self.window_start: float = 0.0
        self.window_end: float = math.inf

        self.commits = 0
        self.aborts = 0
        self.rollbacks = 0
        self.commits_by_profile: Counter = Counter()
        self.aborts_by_reason: Counter = Counter()
        self.commit_latency = RunningStat()
        self.read_only_latency = RunningStat()
        self.update_latency = RunningStat()
        self.attempts_per_commit = RunningStat()
        self.ro_latency_sample = ReservoirSample(seed=1)
        self.update_latency_sample = ReservoirSample(seed=2)

        #: Figure 6 metric: identifiers collected by one update transaction
        #: during its prepare phase (summed over participants).
        self.antidep_collected = RunningStat()
        #: VAS entries inspected while serving one read (latency proxy).
        self.vas_inspected = RunningStat()

        #: Freshness accounting for read-only transactions: ``gap`` is
        #: latest_vid - returned_vid at the instant the read was served.
        self.ro_read_gap = RunningStat()
        self.ro_reads = 0
        self.ro_stale_reads = 0
        self.first_contact_reads = 0
        self.first_contact_fresh = 0

        #: Reads that had to wait for the serving node's clock to catch up
        #: with the requester's snapshot (see MVCCNode.on_read_request).
        self.read_stalls = 0
        self.read_stall_time = RunningStat()

        #: Old versions reclaimed by the MVCC garbage collector.
        self.versions_reclaimed = 0

        #: Presumed-abort accounting (not window-gated: a wedged lock or a
        #: leaked prepared transaction matters whenever it happens).
        #: Coordinator-side aborts caused by exhausted RPC retries.
        self.aborted_timeout = 0
        #: Participant-side prepared-lock leases that expired because the
        #: coordinator went silent past the configured lease.
        self.lease_expirations = 0

        #: Durable-crash recovery accounting (run-wide, never window-gated).
        #: Completed node recoveries and total WAL records replayed.
        self.recoveries = 0
        self.wal_records_replayed = 0
        #: In-doubt prepares restored across all recoveries.
        self.indoubt_recovered = 0
        #: In-doubt terminations (lease- or recovery-driven) by outcome.
        self.indoubt_committed = 0
        self.indoubt_aborted = 0
        #: siteVC slots advanced by anti-entropy catch-up (lost Propagates).
        self.catchup_advances = 0

        #: Self-healing accounting (run-wide, never window-gated).
        #: Active liveness beacons sent / skipped because foreground
        #: traffic to the peer already proved the sender alive.
        self.heartbeats_sent = 0
        self.heartbeats_suppressed = 0
        #: Failure-detector transitions: alive -> suspect/dead raises a
        #: suspicion; any arrival from a suspected peer clears it.
        self.suspicions_raised = 0
        self.suspicions_cleared = 0
        #: Completed background anti-entropy digest exchanges.
        self.anti_entropy_rounds = 0
        #: Full Decide records streamed to lagging peers by anti-entropy.
        self.records_streamed = 0
        #: WAL checkpoints taken and records truncated below them.
        self.checkpoints_taken = 0
        self.wal_records_truncated = 0
        #: Completed WAL syncs and the records each batch made durable
        #: (group commit: records_synced / syncs is the achieved batch
        #: size; 1.0 means per-record durability).
        self.wal_syncs = 0
        self.wal_records_synced = 0
        #: Checkpoint snapshot transfer (healing): offers made by this
        #: node as sender, offers/chunks refused or transfers that died
        #: mid-flight, chunks and store chains actually moved, completed
        #: installs on each side, and receiver-side watchdog abandons.
        self.snapshot_offers = 0
        self.snapshot_rejected = 0
        self.snapshot_chunks = 0
        self.snapshot_chains = 0
        self.snapshots_shipped = 0
        self.snapshot_installs = 0
        self.snapshot_abandoned = 0

        #: Elastic membership (run-wide, never window-gated): committed
        #: view epochs applied at this cluster's coordinator, joiners that
        #: finished their bootstrap snapshot, decommissions whose drain
        #: handed every owned key off, and messages whose carried clock
        #: width predates the receiver's view (zero-default algebra
        #: absorbed them; counted for observability).
        self.views_committed = 0
        self.joins_bootstrapped = 0
        self.drains_completed = 0
        self.stale_width_messages = 0

        #: Keyspace sharding (run-wide, never window-gated): per-shard
        #: access counts (the rebalancer's load signal; reads and
        #: prepared writes both count one access per key), completed and
        #: failed live shard migrations, store chains moved by completed
        #: migrations, and planner rounds attempted.
        self.shard_loads: Counter = Counter()
        self.shard_migrations = 0
        self.shard_migration_keys = 0
        self.shard_migrations_failed = 0
        self.rebalance_rounds = 0

        #: Per-shard primary-backup replication (run-wide): stream
        #: records acknowledged by backups, the worst observed stream
        #: lag (records streamed but unacknowledged), sync waits that
        #: degraded to async at ``sync_timeout``, frozen reads served by
        #: backups vs forwarded to the primary, shards promoted by
        #: completed failovers, and backup (re-)bootstraps shipped.
        self.replication_records_streamed = 0
        self.replication_lag_max = 0
        self.replication_sync_degraded = 0
        self.backup_reads_served = 0
        self.backup_reads_forwarded = 0
        self.failovers_completed = 0
        self.backup_bootstraps = 0

    # ------------------------------------------------------------------
    # Window control
    # ------------------------------------------------------------------
    def open_window(self, start: float, end: float = math.inf) -> None:
        """Set the measurement window [start, end) in virtual time."""
        self.window_start = start
        self.window_end = end

    def in_window(self) -> bool:
        """Whether the current virtual time is inside the window."""
        return self.window_start <= self.sim.now <= self.window_end

    @property
    def window_duration(self) -> float:
        """Elapsed measured time so far."""
        end = min(self.window_end, self.sim.now)
        return max(end - self.window_start, 0.0)

    # ------------------------------------------------------------------
    # Transaction outcomes
    # ------------------------------------------------------------------
    def on_commit(self, txn, latency: float, attempts: int) -> None:
        """Record a committed transaction with its latency and attempts."""
        if not self.in_window():
            return
        self.commits += 1
        if txn.profile:
            self.commits_by_profile[txn.profile] += 1
        self.commit_latency.add(latency)
        if txn.is_read_only:
            self.read_only_latency.add(latency)
            self.ro_latency_sample.add(latency)
        else:
            self.update_latency.add(latency)
            self.update_latency_sample.add(latency)
        self.attempts_per_commit.add(attempts)

    def on_abort(self, txn, reason: str) -> None:
        """Record one aborted commit attempt with its reason."""
        if reason == AbortReason.RPC_TIMEOUT:
            self.aborted_timeout += 1
        if not self.in_window():
            return
        self.aborts += 1
        self.aborts_by_reason[reason] += 1

    def on_rollback(self, txn) -> None:
        """Client-initiated rollback: business logic, not a conflict."""
        if self.in_window():
            self.rollbacks += 1

    @property
    def abort_rate(self) -> float:
        """Aborted attempts over all attempts, as the paper reports it."""
        attempts = self.commits + self.aborts
        return self.aborts / attempts if attempts else 0.0

    def throughput(self) -> float:
        """Committed transactions per measured virtual second."""
        duration = self.window_duration
        return self.commits / duration if duration > 0 else 0.0

    # ------------------------------------------------------------------
    # Protocol-level samples
    # ------------------------------------------------------------------
    def on_antidep_collected(self, size: int) -> None:
        """Sample one update transaction's collected VAS size (Figure 6)."""
        if self.in_window():
            self.antidep_collected.add(size)

    def on_vas_inspected(self, size: int) -> None:
        """Sample VAS entries inspected while serving one read."""
        if self.in_window():
            self.vas_inspected.add(size)

    def on_ro_read(self, gap: int, first_contact: bool) -> None:
        """Record one read-only read with its freshness gap."""
        if not self.in_window():
            return
        self.ro_reads += 1
        self.ro_read_gap.add(gap)
        if gap > 0:
            self.ro_stale_reads += 1
        if first_contact:
            self.first_contact_reads += 1
            if gap == 0:
                self.first_contact_fresh += 1

    def on_read_stall(self, duration: float) -> None:
        if self.in_window():
            self.read_stalls += 1
            self.read_stall_time.add(duration)

    def on_versions_reclaimed(self, count: int) -> None:
        # GC accounting is not window-gated: occupancy matters run-wide.
        self.versions_reclaimed += count

    def on_lease_expired(self) -> None:
        """A participant's prepared-lock lease fired (presumed abort)."""
        self.lease_expirations += 1

    def on_indoubt_resolved(self, committed: bool) -> None:
        """An in-doubt prepare was terminated via a coordinator query."""
        if committed:
            self.indoubt_committed += 1
        else:
            self.indoubt_aborted += 1

    def on_recovery(self, replayed: int, in_doubt: int) -> None:
        """One node finished rebuilding from its WAL."""
        self.recoveries += 1
        self.wal_records_replayed += replayed
        self.indoubt_recovered += in_doubt

    def on_catchup(self, advanced: int) -> None:
        """Anti-entropy advanced a recovering node's clock past lost
        Propagates."""
        self.catchup_advances += advanced

    def on_heartbeat(self, sent: bool) -> None:
        """One heartbeat tick: sent, or suppressed by recent traffic."""
        if sent:
            self.heartbeats_sent += 1
        else:
            self.heartbeats_suppressed += 1

    def on_suspicion(self, raised: bool) -> None:
        """A failure-detector state transition (raised or cleared)."""
        if raised:
            self.suspicions_raised += 1
        else:
            self.suspicions_cleared += 1

    def on_anti_entropy_round(self, streamed: int) -> None:
        """One completed gossip exchange that streamed ``streamed``
        Decide records to the lagging side."""
        self.anti_entropy_rounds += 1
        self.records_streamed += streamed

    def on_checkpoint(self) -> None:
        """One WAL checkpoint snapshot was appended."""
        self.checkpoints_taken += 1

    def on_truncate(self, dropped: int) -> None:
        """WAL records below a stable checkpoint were truncated."""
        self.wal_records_truncated += dropped

    def on_wal_sync(self, records: int) -> None:
        """One WAL sync completed, making ``records`` records durable."""
        self.wal_syncs += 1
        self.wal_records_synced += records

    def on_snapshot_offer(self) -> None:
        """This node offered its checkpoint to a truncation-gapped peer."""
        self.snapshot_offers += 1

    def on_snapshot_rejected(self) -> None:
        """An offer or chunk was refused (or its reply lost) mid-transfer."""
        self.snapshot_rejected += 1

    def on_snapshot_chunk(self, chains: int) -> None:
        """One accepted chunk carried ``chains`` store chains."""
        self.snapshot_chunks += 1
        self.snapshot_chains += chains

    def on_snapshot_shipped(self) -> None:
        """The receiver confirmed a verified install (sender side)."""
        self.snapshots_shipped += 1

    def on_snapshot_install(self, chains: int) -> None:
        """This node verified and adopted a peer's checkpoint."""
        self.snapshot_installs += 1

    def on_snapshot_abandoned(self) -> None:
        """An inbound transfer was dropped (stalled, stale, or corrupt)."""
        self.snapshot_abandoned += 1

    def on_view_committed(self) -> None:
        """A membership view change committed cluster-wide."""
        self.views_committed += 1

    def on_join_bootstrapped(self) -> None:
        """A joiner verified and installed its bootstrap snapshot."""
        self.joins_bootstrapped += 1

    def on_drain_completed(self) -> None:
        """A decommissioning node finished handing off its owned keys."""
        self.drains_completed += 1

    def on_stale_width(self) -> None:
        """A message carried a clock narrower than the receiver's view."""
        self.stale_width_messages += 1

    def on_shard_access(self, shard: int, count: int = 1) -> None:
        """One read or prepared write landed on ``shard``."""
        self.shard_loads[shard] += count

    def on_shard_migrated(self, keys: int) -> None:
        """A live shard migration flipped ownership (``keys`` chains moved)."""
        self.shard_migrations += 1
        self.shard_migration_keys += keys

    def on_shard_migration_failed(self) -> None:
        """A migration aborted before the flip (crash, partition, drain)."""
        self.shard_migrations_failed += 1

    def on_rebalance_round(self) -> None:
        self.rebalance_rounds += 1

    def on_replication_records(self, count: int) -> None:
        """A backup acknowledged ``count`` stream records."""
        self.replication_records_streamed += count

    def on_replication_lag(self, lag: int) -> None:
        """Track the worst unacknowledged stream suffix seen."""
        if lag > self.replication_lag_max:
            self.replication_lag_max = lag

    def on_replication_sync_degraded(self) -> None:
        """A sync-mode wait hit ``sync_timeout`` and proceeded async."""
        self.replication_sync_degraded += 1

    def on_backup_read_served(self) -> None:
        """A backup answered a frozen read from its replicated state."""
        self.backup_reads_served += 1

    def on_backup_read_forwarded(self) -> None:
        """A backup forwarded a frozen read to the current primary."""
        self.backup_reads_forwarded += 1

    def on_failover_completed(self, shards: int) -> None:
        """A failover promoted backups over ``shards`` shards."""
        self.failovers_completed += shards

    def on_backup_bootstrapped(self) -> None:
        """A primary (re-)shipped its chains to one backup."""
        self.backup_bootstraps += 1

    def decay_shard_loads(self, factor: float) -> None:
        """Age the load signal so it tracks current traffic, not history."""
        for shard in list(self.shard_loads):
            aged = int(self.shard_loads[shard] * factor)
            if aged:
                self.shard_loads[shard] = aged
            else:
                del self.shard_loads[shard]

    @property
    def stale_read_fraction(self) -> float:
        return self.ro_stale_reads / self.ro_reads if self.ro_reads else 0.0

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, object]:
        return {
            "commits": self.commits,
            "aborts": self.aborts,
            "rollbacks": self.rollbacks,
            "abort_rate": self.abort_rate,
            "throughput": self.throughput(),
            "aborts_by_reason": dict(self.aborts_by_reason),
            "commits_by_profile": dict(self.commits_by_profile),
            "latency": self.commit_latency.as_dict(),
            "ro_latency": self.read_only_latency.as_dict(),
            "update_latency": self.update_latency.as_dict(),
            "ro_latency_percentiles": self.ro_latency_sample.as_dict(),
            "update_latency_percentiles": self.update_latency_sample.as_dict(),
            "antidep_collected": self.antidep_collected.as_dict(),
            "vas_inspected": self.vas_inspected.as_dict(),
            "ro_read_gap": self.ro_read_gap.as_dict(),
            "stale_read_fraction": self.stale_read_fraction,
            "first_contact_reads": self.first_contact_reads,
            "first_contact_fresh": self.first_contact_fresh,
            "read_stalls": self.read_stalls,
            "read_stall_time": self.read_stall_time.as_dict(),
            "versions_reclaimed": self.versions_reclaimed,
            "aborted_timeout": self.aborted_timeout,
            "lease_expirations": self.lease_expirations,
            "recoveries": self.recoveries,
            "wal_records_replayed": self.wal_records_replayed,
            "indoubt_recovered": self.indoubt_recovered,
            "indoubt_committed": self.indoubt_committed,
            "indoubt_aborted": self.indoubt_aborted,
            "catchup_advances": self.catchup_advances,
            "heartbeats_sent": self.heartbeats_sent,
            "heartbeats_suppressed": self.heartbeats_suppressed,
            "suspicions_raised": self.suspicions_raised,
            "suspicions_cleared": self.suspicions_cleared,
            "anti_entropy_rounds": self.anti_entropy_rounds,
            "records_streamed": self.records_streamed,
            "checkpoints_taken": self.checkpoints_taken,
            "wal_records_truncated": self.wal_records_truncated,
            "wal_syncs": self.wal_syncs,
            "wal_records_synced": self.wal_records_synced,
            "snapshot_offers": self.snapshot_offers,
            "snapshot_rejected": self.snapshot_rejected,
            "snapshot_chunks": self.snapshot_chunks,
            "snapshot_chains": self.snapshot_chains,
            "snapshots_shipped": self.snapshots_shipped,
            "snapshot_installs": self.snapshot_installs,
            "snapshot_abandoned": self.snapshot_abandoned,
            "views_committed": self.views_committed,
            "joins_bootstrapped": self.joins_bootstrapped,
            "drains_completed": self.drains_completed,
            "stale_width_messages": self.stale_width_messages,
            "shard_migrations": self.shard_migrations,
            "shard_migration_keys": self.shard_migration_keys,
            "shard_migrations_failed": self.shard_migrations_failed,
            "rebalance_rounds": self.rebalance_rounds,
            "replication_records_streamed": self.replication_records_streamed,
            "replication_lag_max": self.replication_lag_max,
            "replication_sync_degraded": self.replication_sync_degraded,
            "backup_reads_served": self.backup_reads_served,
            "backup_reads_forwarded": self.backup_reads_forwarded,
            "failovers_completed": self.failovers_completed,
            "backup_bootstraps": self.backup_bootstraps,
        }
