"""Execution histories for offline consistency checking.

When history recording is enabled, every committed transaction leaves a
:class:`TxnRecord` with the versions it read and wrote and the real-time
interval it spanned.  The PSI checker consumes these records to hunt for
read skew, per-site order violations, and long forks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, List, Optional, Tuple


@dataclass
class OpRecord:
    """One read or write observed by a committed transaction."""

    kind: str  # "r" or "w"
    key: Hashable
    vid: int  # version identifier read or installed
    #: vid of the newest version at the serving node when a read was
    #: handled; lets the checker and freshness metric reconstruct the gap.
    latest_vid_at_read: Optional[int] = None


@dataclass
class TxnRecord:
    """A committed transaction in the history."""

    txn_id: int
    node_id: int
    is_read_only: bool
    start_time: float
    end_time: float
    ops: List[OpRecord] = field(default_factory=list)
    seq_no: Optional[int] = None
    commit_vc: Optional[Tuple[int, ...]] = None
    profile: Optional[str] = None

    def reads(self) -> List[OpRecord]:
        """The read operations of this transaction."""
        return [op for op in self.ops if op.kind == "r"]

    def writes(self) -> List[OpRecord]:
        """The write operations of this transaction."""
        return [op for op in self.ops if op.kind == "w"]

    def read_of(self, key: Hashable) -> Optional[OpRecord]:
        """The read of ``key``, or None if this transaction never read it."""
        for op in self.ops:
            if op.kind == "r" and op.key == key:
                return op
        return None

    def wrote(self, key: Hashable) -> bool:
        """Whether this transaction wrote ``key``."""
        return any(op.kind == "w" and op.key == key for op in self.ops)


class History:
    """Append-only log of committed transactions."""

    def __init__(self) -> None:
        self.records: List[TxnRecord] = []

    def append(self, record: TxnRecord) -> None:
        """Record a committed transaction."""
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def committed_updates(self) -> List[TxnRecord]:
        """All committed update transactions."""
        return [r for r in self.records if not r.is_read_only]

    def committed_read_only(self) -> List[TxnRecord]:
        """All committed read-only transactions."""
        return [r for r in self.records if r.is_read_only]

    def by_id(self, txn_id: int) -> TxnRecord:
        """The committed transaction with the given id (KeyError if absent)."""
        for record in self.records:
            if record.txn_id == txn_id:
                return record
        raise KeyError(f"no committed transaction {txn_id}")
