"""The discrete-event simulator: virtual clock plus a deterministic heap."""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Tuple

from repro.sim.events import Event
from repro.sim.process import Process, ProcessGenerator


class SimulationCrash(RuntimeError):
    """Raised when a process dies with an exception nobody was joining."""


class Timer:
    """Handle for a scheduled callback; :meth:`cancel` prevents it firing."""

    __slots__ = ("when", "_cancelled")

    def __init__(self, when: float) -> None:
        self.when = when
        self._cancelled = False

    def cancel(self) -> None:
        self._cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._cancelled


class Simulator:
    """Deterministic discrete-event scheduler.

    Entries are ordered by ``(time, sequence)`` where the sequence number is
    a global insertion counter, so same-time callbacks run in the order they
    were scheduled.  This makes whole-system runs reproducible for a fixed
    seed and program.
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: List[Tuple[float, int, Timer, Callable[..., None], tuple]] = []
        self._sequence = 0
        self._crashes: List[Tuple[Process, BaseException]] = []

    # ------------------------------------------------------------------
    # Scheduling primitives
    # ------------------------------------------------------------------
    def call_at(self, when: float, fn: Callable[..., None], *args: Any) -> Timer:
        """Run ``fn(*args)`` at virtual time ``when``."""
        if when < self.now:
            raise ValueError(f"cannot schedule in the past ({when} < {self.now})")
        timer = Timer(when)
        heapq.heappush(self._heap, (when, self._sequence, timer, fn, args))
        self._sequence += 1
        return timer

    def call_later(self, delay: float, fn: Callable[..., None], *args: Any) -> Timer:
        """Run ``fn(*args)`` after ``delay`` units of virtual time."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        return self.call_at(self.now + delay, fn, *args)

    def call_soon(self, fn: Callable[..., None], *args: Any) -> Timer:
        """Run ``fn(*args)`` at the current virtual time, after pending work."""
        return self.call_at(self.now, fn, *args)

    # ------------------------------------------------------------------
    # Waitables
    # ------------------------------------------------------------------
    def event(self, name: Optional[str] = None) -> Event:
        """Create a fresh pending event bound to this simulator."""
        return Event(self, name=name)

    def timeout(self, delay: float, value: Any = None) -> Event:
        """An event that succeeds with ``value`` after ``delay``."""
        ev = Event(self, name=f"timeout({delay})")
        self.call_later(delay, ev.succeed, value)
        return ev

    def spawn(self, gen: ProcessGenerator, name: Optional[str] = None) -> Process:
        """Start a new process driving ``gen``; returns the joinable process."""
        return Process(self, gen, name=name)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Execute the next scheduled callback; False when the heap is empty."""
        while self._heap:
            when, _seq, timer, fn, args = heapq.heappop(self._heap)
            if timer.cancelled:
                continue
            assert when >= self.now, "time went backwards"
            self.now = when
            fn(*args)
            return True
        return False

    def run(self, until: Optional[float] = None) -> float:
        """Run until the heap drains or the clock passes ``until``.

        Returns the final virtual time.  Raises :class:`SimulationCrash` if
        any process died unhandled during the run.
        """
        if until is None:
            while self.step():
                self._check_crashes()
        else:
            while True:
                next_time = self._peek_time()
                if next_time is None or next_time > until:
                    break
                self.step()
                self._check_crashes()
            self.now = max(self.now, until)
        self._check_crashes()
        return self.now

    def run_process(self, gen: ProcessGenerator, name: Optional[str] = None) -> Any:
        """Spawn ``gen``, run the simulation to quiescence, return its value."""
        proc = self.spawn(gen, name=name)
        # Register as a joiner so a failure re-raises below as the original
        # exception instead of surfacing as an unhandled SimulationCrash.
        proc.add_callback(lambda _event: None)
        self.run()
        if not proc.triggered:
            raise RuntimeError(
                f"process {proc.name!r} never finished: simulation deadlocked"
            )
        return proc.value

    def _peek_time(self) -> Optional[float]:
        """Time of the next live entry, discarding cancelled timers."""
        while self._heap and self._heap[0][2].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0][0] if self._heap else None

    # ------------------------------------------------------------------
    # Crash accounting
    # ------------------------------------------------------------------
    def report_crash(self, process: Process, exc: BaseException) -> None:
        self._crashes.append((process, exc))

    def _check_crashes(self) -> None:
        if self._crashes:
            process, exc = self._crashes[0]
            raise SimulationCrash(
                f"process {process.name!r} crashed at t={self.now:.6f}: {exc!r}"
            ) from exc

    @property
    def pending_count(self) -> int:
        """Number of scheduled (possibly cancelled) heap entries."""
        return len(self._heap)
