"""The discrete-event simulator: virtual clock plus a deterministic heap."""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Deque, List, Optional, Tuple

from repro.sim.events import Event, Timeout
from repro.sim.process import Process, ProcessGenerator


class SimulationCrash(RuntimeError):
    """Raised when a process dies with an exception nobody was joining."""


class Timer:
    """Handle for a scheduled callback; :meth:`cancel` prevents it firing."""

    __slots__ = ("when", "_cancelled", "_sim")

    def __init__(self, when: float, sim: "Optional[Simulator]" = None) -> None:
        self.when = when
        self._cancelled = False
        self._sim = sim

    def cancel(self) -> None:
        if not self._cancelled:
            self._cancelled = True
            sim = self._sim
            if sim is not None:
                sim._note_cancel()

    @property
    def cancelled(self) -> bool:
        return self._cancelled


#: Shared marker for schedule entries nobody can cancel (event dispatch,
#: message delivery, process starts).  Those are the bulk of all entries;
#: sharing one inert Timer instead of allocating one per entry keeps the
#: scheduler's hot path allocation-light.
_NEVER_CANCELLED = Timer(0.0)


class Simulator:
    """Deterministic discrete-event scheduler.

    Entries are ordered by ``(time, sequence)`` where the sequence number is
    a global insertion counter, so same-time callbacks run in the order they
    were scheduled.  This makes whole-system runs reproducible for a fixed
    seed and program.

    Two structures back the schedule without changing that total order:

    * ``_ready`` is a FIFO of entries scheduled *at the current time*
      (``call_soon`` and same-time ``call_at``).  Because ``now`` never
      decreases and the sequence counter is global, appends keep the deque
      sorted by ``(when, sequence)``, so the head is its minimum and a
      ``call_soon`` storm bypasses ``heapq`` entirely.
    * ``_heap`` holds future-time entries.  Cancelled timers are counted
      and lazily compacted out once they outnumber live entries (retried
      RPCs and condition-variable waits cancel far-future deadlines by the
      thousands; without compaction they dominate the heap).
    """

    #: Compact only past this size -- rebuilding tiny heaps isn't worth it.
    _COMPACT_MIN = 64

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: List[Tuple[float, int, Timer, Callable[..., None], tuple]] = []
        self._ready: Deque[Tuple[float, int, Timer, Callable[..., None], tuple]] = deque()
        self._sequence = 0
        self._cancelled_count = 0
        self._crashes: List[Tuple[Process, BaseException]] = []
        #: Callbacks executed so far (perf harness: events per wall-second).
        self.executed_count = 0

    # ------------------------------------------------------------------
    # Scheduling primitives
    # ------------------------------------------------------------------
    def call_at(self, when: float, fn: Callable[..., None], *args: Any) -> Timer:
        """Run ``fn(*args)`` at virtual time ``when``."""
        now = self.now
        if when < now:
            raise ValueError(f"cannot schedule in the past ({when} < {now})")
        timer = Timer(when, self)
        entry = (when, self._sequence, timer, fn, args)
        self._sequence += 1
        if when == now:
            self._ready.append(entry)
        else:
            heapq.heappush(self._heap, entry)
        return timer

    def call_later(self, delay: float, fn: Callable[..., None], *args: Any) -> Timer:
        """Run ``fn(*args)`` after ``delay`` units of virtual time."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        return self.call_at(self.now + delay, fn, *args)

    def call_soon(self, fn: Callable[..., None], *args: Any) -> Timer:
        """Run ``fn(*args)`` at the current virtual time, after pending work."""
        now = self.now
        timer = Timer(now, self)
        self._ready.append((now, self._sequence, timer, fn, args))
        self._sequence += 1
        return timer

    # ------------------------------------------------------------------
    # Internal no-handle scheduling (hot paths)
    # ------------------------------------------------------------------
    def _post_soon(self, fn: Callable[..., None], *args: Any) -> None:
        """``call_soon`` without a cancellation handle.

        For internal callers that never cancel (event dispatch, process
        starts); skips the per-entry Timer allocation.  Ordering is
        identical to ``call_soon`` -- same global sequence counter.
        """
        self._ready.append((self.now, self._sequence, _NEVER_CANCELLED, fn, args))
        self._sequence += 1

    def _post_at(self, when: float, fn: Callable[..., None], *args: Any) -> None:
        """``call_at`` without a cancellation handle (same ordering)."""
        assert when >= self.now, "cannot schedule in the past"
        if when == self.now:
            self._ready.append((when, self._sequence, _NEVER_CANCELLED, fn, args))
        else:
            heapq.heappush(
                self._heap, (when, self._sequence, _NEVER_CANCELLED, fn, args)
            )
        self._sequence += 1

    # ------------------------------------------------------------------
    # Waitables
    # ------------------------------------------------------------------
    def event(self, name: Optional[str] = None) -> Event:
        """Create a fresh pending event bound to this simulator."""
        return Event(self, name=name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event that succeeds with ``value`` after ``delay``.

        The returned :class:`Timeout` exposes ``cancel()`` for callers that
        stop caring before it fires (e.g. an RPC whose reply won the race).
        """
        ev = Timeout(self, name="timeout")
        ev.timer = self.call_later(delay, ev.succeed, value)
        return ev

    def sleep(self, delay: float, value: Any = None) -> Event:
        """A non-cancellable :meth:`timeout`: same scheduling order, but no
        :class:`Timer` handle is allocated.  For pure pauses (CPU charges,
        client think time) that nobody ever cancels.
        """
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        ev = Event(self, name="sleep")
        self._post_at(self.now + delay, ev.succeed, value)
        return ev

    def spawn(self, gen: ProcessGenerator, name: Optional[str] = None) -> Process:
        """Start a new process driving ``gen``; returns the joinable process."""
        return Process(self, gen, name=name)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Execute the next scheduled callback; False when nothing is pending.

        The next callback is whichever of the ready-queue head and the live
        heap top has the smaller ``(time, sequence)`` key -- the same total
        order as a single heap, so seeded runs are bit-identical.
        """
        heap = self._heap
        ready = self._ready
        pop = heapq.heappop
        while True:
            # Drop cancelled entries at the heap top so the comparison
            # below sees a live candidate.
            while heap and heap[0][2]._cancelled:
                pop(heap)
                if self._cancelled_count:
                    self._cancelled_count -= 1
            if ready:
                if heap:
                    head = heap[0]
                    first = ready[0]
                    if head[0] < first[0] or (
                        head[0] == first[0] and head[1] < first[1]
                    ):
                        entry = pop(heap)
                    else:
                        entry = ready.popleft()
                else:
                    entry = ready.popleft()
            elif heap:
                entry = pop(heap)
            else:
                return False
            when, _seq, timer, fn, args = entry
            if timer._cancelled:
                continue
            assert when >= self.now, "time went backwards"
            self.now = when
            self.executed_count += 1
            fn(*args)
            return True

    def run(self, until: Optional[float] = None) -> float:
        """Run until the heap drains or the clock passes ``until``.

        Returns the final virtual time.  Raises :class:`SimulationCrash` if
        any process died unhandled during the run.

        The bounded form inlines peek-and-step into one loop: each pending
        entry's key is examined once, not once to peek and again to pop,
        and the millions of per-event method calls of the two-call version
        disappear from the profile.
        """
        if until is None:
            while self.step():
                if self._crashes:
                    self._check_crashes()
        else:
            ready = self._ready
            pop = heapq.heappop
            popleft = ready.popleft
            crashes = self._crashes
            executed = 0
            try:
                while True:
                    # _note_cancel may have rebuilt the heap during a
                    # callback, so re-read the attribute each iteration.
                    heap = self._heap
                    while heap and heap[0][2]._cancelled:
                        pop(heap)
                        if self._cancelled_count:
                            self._cancelled_count -= 1
                    while ready and ready[0][2]._cancelled:
                        popleft()
                    if ready:
                        first = ready[0]
                        if heap:
                            head = heap[0]
                            if head[0] < first[0] or (
                                head[0] == first[0] and head[1] < first[1]
                            ):
                                if head[0] > until:
                                    break
                                entry = pop(heap)
                            else:
                                if first[0] > until:
                                    break
                                entry = popleft()
                        else:
                            if first[0] > until:
                                break
                            entry = popleft()
                    elif heap:
                        if heap[0][0] > until:
                            break
                        entry = pop(heap)
                    else:
                        break
                    when, _seq, _timer, fn, args = entry
                    self.now = when
                    executed += 1
                    fn(*args)
                    if crashes:
                        self._check_crashes()
            finally:
                self.executed_count += executed
            self.now = max(self.now, until)
        self._check_crashes()
        return self.now

    def run_process(self, gen: ProcessGenerator, name: Optional[str] = None) -> Any:
        """Spawn ``gen``, run the simulation to quiescence, return its value."""
        proc = self.spawn(gen, name=name)
        # Register as a joiner so a failure re-raises below as the original
        # exception instead of surfacing as an unhandled SimulationCrash.
        proc.add_callback(lambda _event: None)
        self.run()
        if not proc.triggered:
            raise RuntimeError(
                f"process {proc.name!r} never finished: simulation deadlocked"
            )
        return proc.value

    def _peek_time(self) -> Optional[float]:
        """Time of the next live entry, discarding cancelled timers."""
        ready = self._ready
        while ready and ready[0][2]._cancelled:
            ready.popleft()
        heap = self._heap
        while heap and heap[0][2]._cancelled:
            heapq.heappop(heap)
            if self._cancelled_count:
                self._cancelled_count -= 1
        if ready:
            if heap and heap[0][0] < ready[0][0]:
                return heap[0][0]
            return ready[0][0]
        return heap[0][0] if heap else None

    def _note_cancel(self) -> None:
        """Timer-cancellation hook: lazily compact the heap.

        Once cancelled entries outnumber live ones (and the heap is big
        enough to matter), rebuild the heap with only live entries.  The
        counter over-approximates -- cancelled ready-queue entries count
        too -- which only makes compaction marginally more eager.
        """
        count = self._cancelled_count + 1
        heap = self._heap
        if count >= self._COMPACT_MIN and count * 2 > len(heap):
            live = [entry for entry in heap if not entry[2]._cancelled]
            heapq.heapify(live)
            self._heap = live
            self._cancelled_count = 0
        else:
            self._cancelled_count = count

    # ------------------------------------------------------------------
    # Crash accounting
    # ------------------------------------------------------------------
    def report_crash(self, process: Process, exc: BaseException) -> None:
        self._crashes.append((process, exc))

    def _check_crashes(self) -> None:
        if self._crashes:
            process, exc = self._crashes[0]
            raise SimulationCrash(
                f"process {process.name!r} crashed at t={self.now:.6f}: {exc!r}"
            ) from exc

    @property
    def pending_count(self) -> int:
        """Number of scheduled (possibly cancelled) entries still held."""
        return len(self._heap) + len(self._ready)
