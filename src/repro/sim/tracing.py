"""Optional structured tracing of protocol events.

A :class:`Tracer` records `(time, node, event, details)` tuples; protocol
code emits through :meth:`Tracer.emit`, which is a no-op unless tracing
is enabled and the event kind is selected.  Intended for debugging
protocol runs and for tests that assert on event sequences -- benchmark
runs leave tracing off and pay only a falsy check per event.

Usage::

    cluster = Cluster("fwkv", config)
    cluster.tracer.enable("commit", "abort")
    ... run ...
    for record in cluster.tracer.records:
        print(cluster.tracer.format(record))
"""

from __future__ import annotations

from typing import Callable, List, NamedTuple, Optional, Set


class TraceRecord(NamedTuple):
    """One recorded protocol event."""

    time: float
    node: int
    event: str
    details: dict


class Tracer:
    """Selective event recorder shared by all nodes of a cluster."""

    #: Event kinds protocol code emits.
    KINDS = frozenset(
        {
            "begin",
            "read",
            "write",
            "commit",
            "abort",
            "prepare",
            "vote",
            "decide",
            "propagate",
            "remove",
            "stall",
            "lease_expire",
            "indoubt",
            "recover",
            "catchup",
            "suspect",
            "trust",
            "anti_entropy",
            "stream",
            "checkpoint",
            "truncate",
            "wal_sync",
            "snapshot_offer",
            "snapshot_accept",
            "snapshot_shipped",
            "snapshot_install",
            "snapshot_abandon",
            "nemesis_crash",
            "nemesis_crash_durable",
            "nemesis_restart",
            "nemesis_partition",
            "nemesis_heal",
            "view_propose",
            "view_ack",
            "view_commit",
            "join_bootstrap",
            "join_complete",
            "join_abandoned",
            "drain_complete",
            "shard_offer",
            "shard_shipped",
            "shard_migrate_start",
            "shard_migrated",
            "shard_migrate_failed",
        }
    )

    def __init__(self, sim, max_records: int = 100_000) -> None:
        self.sim = sim
        self.max_records = max_records
        self.records: List[TraceRecord] = []
        self._enabled: Set[str] = set()
        self._listeners: List[Callable[[TraceRecord], None]] = []
        self.dropped = 0

    # ------------------------------------------------------------------
    # Control
    # ------------------------------------------------------------------
    def enable(self, *kinds: str) -> None:
        """Start recording the given kinds (no arguments = everything)."""
        chosen = set(kinds) if kinds else set(self.KINDS)
        unknown = chosen - self.KINDS
        if unknown:
            raise ValueError(f"unknown trace kinds: {sorted(unknown)}")
        self._enabled |= chosen

    def disable(self, *kinds: str) -> None:
        self._enabled -= set(kinds) if kinds else set(self.KINDS)

    @property
    def active(self) -> bool:
        return bool(self._enabled)

    def wants(self, kind: str) -> bool:
        return kind in self._enabled

    def add_listener(self, listener: Callable[[TraceRecord], None]) -> None:
        """Call ``listener(record)`` synchronously on every recorded emit.

        Listeners fire at the emitting node's exact protocol point, which
        is what the crash-recovery harness uses to crash a node *between*
        two protocol steps deterministically.  Only emits that pass the
        enabled-kind filter reach listeners, and hot protocol paths skip
        ``emit`` entirely while tracing is off -- a harness must
        ``enable()`` every kind it hooks.
        """
        self._listeners.append(listener)

    def remove_listener(self, listener: Callable[[TraceRecord], None]) -> None:
        self._listeners.remove(listener)

    # ------------------------------------------------------------------
    # Emission & inspection
    # ------------------------------------------------------------------
    def emit(self, node: int, kind: str, **details) -> None:
        if kind not in self._enabled:
            return
        record = TraceRecord(self.sim.now, node, kind, details)
        if self._listeners:
            for listener in list(self._listeners):
                listener(record)
        if len(self.records) >= self.max_records:
            self.dropped += 1
            return
        self.records.append(record)

    def of_kind(self, kind: str) -> List[TraceRecord]:
        return [record for record in self.records if record.event == kind]

    def for_txn(self, txn_id: int) -> List[TraceRecord]:
        return [
            record for record in self.records
            if record.details.get("txn") == txn_id
        ]

    @staticmethod
    def format(record: TraceRecord) -> str:
        details = " ".join(
            f"{key}={value!r}" for key, value in sorted(record.details.items())
        )
        return (
            f"[{record.time * 1e3:9.4f}ms] n{record.node} "
            f"{record.event:<9s} {details}"
        )

    def dump(self, limit: Optional[int] = None) -> str:
        chosen = self.records if limit is None else self.records[-limit:]
        return "\n".join(self.format(record) for record in chosen)
