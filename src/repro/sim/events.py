"""One-shot events and event combinators for the simulation kernel."""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Any, Callable, List, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.sim.simulator import Simulator


class EventState(enum.Enum):
    """Lifecycle of a one-shot event."""

    PENDING = "pending"
    SUCCEEDED = "succeeded"
    FAILED = "failed"


_PENDING = EventState.PENDING
_SUCCEEDED = EventState.SUCCEEDED
_FAILED = EventState.FAILED


class Event:
    """A one-shot waitable value.

    Processes wait on an event by ``yield``\\ ing it.  An event is triggered
    exactly once, either with :meth:`succeed` (delivering a value) or
    :meth:`fail` (delivering an exception).  Callbacks registered with
    :meth:`add_callback` run *through the simulator queue* at the current
    virtual time, which keeps wake-up ordering deterministic and avoids
    unbounded recursion through chains of dependent events.
    """

    __slots__ = ("sim", "name", "_state", "_value", "_exc", "_callbacks")

    def __init__(self, sim: "Simulator", name: Optional[str] = None) -> None:
        self.sim = sim
        self.name = name
        self._state = _PENDING
        self._value: Any = None
        self._exc: Optional[BaseException] = None
        # Lazily allocated: most events trigger with zero or one waiter,
        # and event creation is one of the hottest allocation sites.
        self._callbacks: Optional[List[Callable[["Event"], None]]] = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def state(self) -> EventState:
        return self._state

    @property
    def triggered(self) -> bool:
        """True once the event has succeeded or failed."""
        return self._state is not EventState.PENDING

    @property
    def ok(self) -> bool:
        return self._state is EventState.SUCCEEDED

    @property
    def value(self) -> Any:
        """The delivered value; raises if the event failed or is pending."""
        if self._state is EventState.FAILED:
            assert self._exc is not None
            raise self._exc
        if self._state is EventState.PENDING:
            raise RuntimeError(f"event {self!r} has not been triggered")
        return self._value

    @property
    def exception(self) -> Optional[BaseException]:
        return self._exc

    # ------------------------------------------------------------------
    # Triggering
    # ------------------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully, delivering ``value`` to waiters."""
        if self._state is not _PENDING:
            raise RuntimeError(f"event {self!r} already triggered")
        self._state = _SUCCEEDED
        self._value = value
        callbacks = self._callbacks
        if callbacks:
            self._callbacks = None
            post = self.sim._post_soon
            for callback in callbacks:
                post(callback, self)
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Trigger the event with an exception, re-raised in waiters."""
        if self._state is not _PENDING:
            raise RuntimeError(f"event {self!r} already triggered")
        if not isinstance(exc, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._state = _FAILED
        self._exc = exc
        self._dispatch()
        return self

    def _dispatch(self) -> None:
        callbacks, self._callbacks = self._callbacks, None
        for callback in callbacks or ():
            self.sim._post_soon(callback, self)

    # ------------------------------------------------------------------
    # Waiting
    # ------------------------------------------------------------------
    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Run ``callback(event)`` once the event triggers.

        If the event already triggered, the callback is scheduled for the
        current timestep rather than invoked synchronously.
        """
        if self._state is _PENDING:
            callbacks = self._callbacks
            if callbacks is None:
                self._callbacks = [callback]
            else:
                callbacks.append(callback)
        else:
            self.sim._post_soon(callback, self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        label = self.name or self.__class__.__name__
        return f"<{label} {self._state.value} at t={self.sim.now:.6f}>"


class Timeout(Event):
    """An event scheduled to succeed after a delay (``Simulator.timeout``).

    Carries its scheduling :class:`~repro.sim.simulator.Timer` so a caller
    whose race the timeout *lost* can :meth:`cancel` it instead of leaving
    a doomed-to-fire entry in the scheduler (RPC deadlines outnumber actual
    timeouts by orders of magnitude).
    """

    __slots__ = ("timer",)

    def cancel(self) -> None:
        """Cancel the pending timer; a no-op once the event triggered."""
        if self._state is EventState.PENDING:
            self.timer.cancel()


class AllOf(Event):
    """Event that succeeds once every child event has succeeded.

    The delivered value is the list of child values in the order the
    children were given.  If any child fails, this event fails with the
    first failure.
    """

    __slots__ = ("_children", "_remaining")

    def __init__(self, sim: "Simulator", events: Sequence[Event]) -> None:
        super().__init__(sim, name="AllOf")
        self._children = list(events)
        self._remaining = len(self._children)
        if self._remaining == 0:
            self.succeed([])
            return
        for child in self._children:
            child.add_callback(self._on_child)

    def _on_child(self, child: Event) -> None:
        if self.triggered:
            return
        if not child.ok:
            assert child.exception is not None
            self.fail(child.exception)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([c.value for c in self._children])


class AnyOf(Event):
    """Event that succeeds as soon as any child event triggers.

    The delivered value is the ``(index, value)`` pair of the first child
    to succeed.  A failing first child fails this event.
    """

    __slots__ = ("_children",)

    def __init__(self, sim: "Simulator", events: Sequence[Event]) -> None:
        super().__init__(sim, name="AnyOf")
        self._children = list(events)
        if not self._children:
            raise ValueError("AnyOf requires at least one event")
        for index, child in enumerate(self._children):
            child.add_callback(self._make_callback(index))

    def _make_callback(self, index: int) -> Callable[[Event], None]:
        def on_child(child: Event) -> None:
            if self.triggered:
                return
            if child.ok:
                self.succeed((index, child.value))
            else:
                assert child.exception is not None
                self.fail(child.exception)

        return on_child
