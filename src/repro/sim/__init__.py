"""Deterministic discrete-event simulation kernel.

This package is the execution substrate for the FW-KV reproduction: it
provides a virtual clock, generator-based processes, one-shot events,
condition variables, and simulated locks.  All scheduling is deterministic
for a fixed seed and program, which makes protocol-level tests repeatable.

The design is intentionally close to a small subset of SimPy:

* :class:`~repro.sim.simulator.Simulator` owns the event heap and clock.
* :class:`~repro.sim.events.Event` is a one-shot waitable.
* :class:`~repro.sim.process.Process` drives a generator that ``yield``\\ s
  events (or other processes) to wait on them.
* :class:`~repro.sim.condition.ConditionVariable` supports predicate waits.
* :class:`~repro.sim.locks.Mutex` and :class:`~repro.sim.locks.RWLock` are
  FIFO-fair simulated locks with acquisition timeouts.
"""

from repro.sim.events import AllOf, AnyOf, Event, EventState, Timeout
from repro.sim.process import Process
from repro.sim.simulator import Simulator, Timer
from repro.sim.condition import ConditionVariable, wait_until
from repro.sim.locks import Mutex, RWLock
from repro.sim.resources import CpuResource
from repro.sim.rng import derive_seed, make_rng
from repro.sim.tracing import TraceRecord, Tracer

__all__ = [
    "AllOf",
    "AnyOf",
    "ConditionVariable",
    "CpuResource",
    "Event",
    "EventState",
    "Mutex",
    "Process",
    "RWLock",
    "Simulator",
    "Timeout",
    "TraceRecord",
    "Tracer",
    "Timer",
    "derive_seed",
    "make_rng",
    "wait_until",
]
