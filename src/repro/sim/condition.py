"""Condition variables and predicate waits for simulated processes."""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Iterator, List

from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.simulator import Simulator


class ConditionVariable:
    """Broadcast wake-up point for processes waiting on a predicate.

    Protocol code that must block until some shared state changes (for
    example FW-KV's in-order apply rule ``wait until siteVC[j] == seqNo-1``)
    waits on the node's condition variable and re-checks its predicate each
    time :meth:`notify_all` is called.  The simulation is single threaded,
    so there is no lost-wakeup race between checking the predicate and
    registering the waiter.
    """

    __slots__ = ("sim", "_waiters")

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self._waiters: List[Event] = []

    def wait(self) -> Event:
        """An event that succeeds at the next :meth:`notify_all`."""
        ev = Event(self.sim, name="cond-wait")
        self._waiters.append(ev)
        return ev

    def notify_all(self) -> None:
        """Wake every currently-registered waiter."""
        waiters, self._waiters = self._waiters, []
        for waiter in waiters:
            waiter.succeed(None)

    @property
    def waiter_count(self) -> int:
        return len(self._waiters)


def wait_until(cond: ConditionVariable, predicate: Callable[[], Any]) -> Iterator[Event]:
    """Generator helper: block until ``predicate()`` is truthy.

    Use inside a process as ``yield from wait_until(cv, pred)``.  The
    predicate's truthy value is returned to the caller.
    """
    while True:
        value = predicate()
        if value:
            return value
        yield cond.wait()
