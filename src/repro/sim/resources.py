"""Finite-capacity resources (node CPUs) for the simulation kernel."""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque, Optional

from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.simulator import Simulator


class CpuResource:
    """A pool of identical servers with a FIFO run queue.

    Protocol handlers charge their processing cost through
    ``yield from cpu.consume(cost)``.  With ``cores=None`` the resource is
    infinite (a plain virtual-time delay); with a finite core count,
    saturated nodes build queues and per-operation latency grows with
    load -- the effect that turns per-transaction work differences into
    throughput differences under closed-loop clients.

    Handlers must not hold a core across blocking waits: acquire-compute-
    release is a single ``consume`` call, and lock or condition waits
    happen outside it.
    """

    __slots__ = ("sim", "cores", "_busy", "_queue", "busy_time")

    def __init__(self, sim: "Simulator", cores: Optional[int]) -> None:
        if cores is not None and cores <= 0:
            raise ValueError("cores must be positive or None (infinite)")
        self.sim = sim
        self.cores = cores
        self._busy = 0
        self._queue: Deque[Event] = deque()
        #: Accumulated core-seconds consumed (utilisation accounting).
        self.busy_time = 0.0

    def consume(self, cost: float):
        """Generator subroutine: occupy one core for ``cost`` seconds."""
        if cost <= 0:
            return
        self.busy_time += cost
        if self.cores is None:
            yield self.sim.sleep(cost)
            return
        if self._busy < self.cores:
            self._busy += 1
        else:
            gate = Event(self.sim, name="cpu-wait")
            self._queue.append(gate)
            yield gate  # a finishing job hands its core over directly
        try:
            yield self.sim.sleep(cost)
        finally:
            if self._queue:
                self._queue.popleft().succeed(None)
            else:
                self._busy -= 1

    @property
    def queue_length(self) -> int:
        return len(self._queue)

    def utilization(self, elapsed: float) -> float:
        """Mean core utilisation over ``elapsed`` virtual seconds."""
        if elapsed <= 0 or self.cores is None:
            return 0.0
        return self.busy_time / (elapsed * self.cores)
