"""Seed derivation for reproducible random streams.

Every stochastic component (workload generators, per-client request
streams, network jitter) gets its own :class:`random.Random` derived from
the experiment seed and a stable stream label.  Streams therefore stay
independent of each other and of iteration order, so adding a new consumer
of randomness does not perturb existing runs.
"""

from __future__ import annotations

import hashlib
import random
from typing import Hashable


def derive_seed(root_seed: int, *stream: Hashable) -> int:
    """Derive a stable 64-bit seed from a root seed and stream labels."""
    digest = hashlib.sha256()
    digest.update(str(root_seed).encode("utf-8"))
    for part in stream:
        digest.update(b"/")
        digest.update(repr(part).encode("utf-8"))
    return int.from_bytes(digest.digest()[:8], "big")


def make_rng(root_seed: int, *stream: Hashable) -> random.Random:
    """A :class:`random.Random` seeded from ``derive_seed``."""
    return random.Random(derive_seed(root_seed, *stream))
