"""FIFO-fair simulated locks with acquisition timeouts.

The FW-KV and Walter protocols both lock keys during two-phase commit and
(in FW-KV) during read handling.  The paper resolves lock conflicts with a
timeout (1 ms on the authors' testbed): a prepare that cannot lock in time
votes *no* and the transaction aborts.  These lock classes implement that
behaviour: :meth:`acquire` returns an event delivering ``True`` when the
lock was granted or ``False`` when the timeout fired first.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Deque, Dict, Hashable, Optional

from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.simulator import Simulator, Timer

Owner = Hashable

_READ = "r"
_WRITE = "w"


class LockError(RuntimeError):
    """Misuse of a simulated lock (double release, upgrade attempt, ...)."""


class _Request:
    __slots__ = ("owner", "kind", "event", "timer")

    def __init__(self, owner: Owner, kind: str, event: Event) -> None:
        self.owner = owner
        self.kind = kind
        self.event = event
        self.timer: Optional["Timer"] = None


class RWLock:
    """A fair readers/writer lock, reentrant per owner for the same mode.

    Grant order is strict FIFO from the wait queue: a read request queued
    behind a write request waits for that write, which prevents writer
    starvation.  Consecutive read requests at the head are granted together.
    """

    __slots__ = ("sim", "_holders", "_queue")

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        # owner -> [mode, count]
        self._holders: Dict[Owner, list] = {}
        self._queue: Deque[_Request] = deque()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def is_locked(self) -> bool:
        return bool(self._holders)

    @property
    def write_held(self) -> bool:
        return any(mode == _WRITE for mode, _ in self._holders.values())

    def held_by(self, owner: Owner) -> Optional[str]:
        """Mode held by ``owner`` (``"r"``/``"w"``) or ``None``."""
        entry = self._holders.get(owner)
        return entry[0] if entry else None

    @property
    def queue_length(self) -> int:
        return len(self._queue)

    # ------------------------------------------------------------------
    # Acquisition
    # ------------------------------------------------------------------
    def acquire_read(self, owner: Owner, timeout: Optional[float] = None) -> Event:
        return self._acquire(owner, _READ, timeout)

    def acquire_write(self, owner: Owner, timeout: Optional[float] = None) -> Event:
        return self._acquire(owner, _WRITE, timeout)

    def _acquire(self, owner: Owner, kind: str, timeout: Optional[float]) -> Event:
        event = Event(self.sim, name="lock-w" if kind is _WRITE else "lock-r")
        entry = self._holders.get(owner)
        if entry is not None:
            if entry[0] != kind:
                raise LockError(
                    f"owner {owner!r} holds the lock in mode {entry[0]!r} and "
                    f"requested mode {kind!r}; upgrades are not supported"
                )
            entry[1] += 1
            event.succeed(True)
            return event

        request = _Request(owner, kind, event)
        self._queue.append(request)
        self._drain()
        if not event.triggered and timeout is not None:
            request.timer = self.sim.call_later(timeout, self._expire, request)
        return event

    def _expire(self, request: _Request) -> None:
        if request.event.triggered:
            return
        self._queue.remove(request)
        request.event.succeed(False)
        # Removing a queued request may unblock compatible requests behind it.
        self._drain()

    def _grant(self, request: _Request) -> None:
        self._holders[request.owner] = [request.kind, 1]
        if request.timer is not None:
            request.timer.cancel()
        request.event.succeed(True)

    def _drain(self) -> None:
        while self._queue:
            head = self._queue[0]
            if head.kind == _WRITE:
                if self._holders:
                    break
            else:  # read
                if self.write_held:
                    break
            self._queue.popleft()
            self._grant(head)
            if head.kind == _WRITE:
                break

    # ------------------------------------------------------------------
    # Release
    # ------------------------------------------------------------------
    def release(self, owner: Owner) -> None:
        entry = self._holders.get(owner)
        if entry is None:
            raise LockError(f"owner {owner!r} does not hold this lock")
        entry[1] -= 1
        if entry[1] == 0:
            del self._holders[owner]
            self._drain()


class Mutex:
    """An exclusive lock: an :class:`RWLock` restricted to write mode."""

    __slots__ = ("_lock",)

    def __init__(self, sim: "Simulator") -> None:
        self._lock = RWLock(sim)

    @property
    def is_locked(self) -> bool:
        return self._lock.is_locked

    def held_by(self, owner: Owner) -> bool:
        return self._lock.held_by(owner) == _WRITE

    def acquire(self, owner: Owner, timeout: Optional[float] = None) -> Event:
        return self._lock.acquire_write(owner, timeout)

    def release(self, owner: Owner) -> None:
        self._lock.release(owner)
