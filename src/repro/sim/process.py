"""Generator-driven simulated processes."""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Optional

from repro.sim.events import Event, EventState

_PENDING = EventState.PENDING
_SUCCEEDED = EventState.SUCCEEDED

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.simulator import Simulator

ProcessGenerator = Generator[Event, Any, Any]


class Process(Event):
    """A running process; also an event that triggers on completion.

    A process wraps a generator.  Each value the generator ``yield``\\ s must
    be an :class:`Event` (a :class:`Process` is itself an event, so processes
    can join each other).  The process resumes with the event's value, or the
    event's exception is thrown into the generator.  When the generator
    returns, the process succeeds with the returned value; an uncaught
    exception fails the process (and propagates to joiners, or crashes the
    simulation if nobody joined).

    Sub-routines compose with ``yield from``: any helper written as a
    generator of events can be inlined into a process without spawning.
    """

    __slots__ = ("_gen",)

    def __init__(
        self,
        sim: "Simulator",
        gen: ProcessGenerator,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(sim, name=name or getattr(gen, "__name__", "process"))
        if not hasattr(gen, "send"):
            raise TypeError(
                f"Process requires a generator, got {type(gen).__name__}; "
                "did you call a plain function instead of a generator function?"
            )
        self._gen = gen
        sim._post_soon(self._step, None)

    def _step(self, triggered: Optional[Event]) -> None:
        """Advance the generator by one yield."""
        gen = self._gen
        while True:
            try:
                if triggered is None:
                    target = next(gen)
                elif triggered._state is _SUCCEEDED:
                    target = gen.send(triggered._value)
                else:
                    exc = triggered.exception
                    assert exc is not None
                    target = gen.throw(exc)
            except StopIteration as stop:
                self.succeed(stop.value)
                return
            except BaseException as exc:  # noqa: BLE001 - fail the process
                self._fail_process(exc)
                return

            if not isinstance(target, Event):
                exc = TypeError(
                    f"process {self.name!r} yielded {target!r}; "
                    "processes may only yield Event instances"
                )
                gen.close()
                self._fail_process(exc)
                return

            if target._state is not _PENDING:
                # Fast path: already-triggered events resume inline, which
                # keeps zero-delay protocol steps from round-tripping through
                # the scheduler and bloating the heap.
                triggered = target
                continue
            target.add_callback(self._step)
            return

    def _fail_process(self, exc: BaseException) -> None:
        handled = bool(self._callbacks)
        self.fail(exc)
        if not handled:
            # Nobody was joining this process when it crashed; surface the
            # failure through the simulator instead of dropping it silently.
            self.sim.report_crash(self, exc)
