"""Command-line entry point: regenerate any paper figure from the shell.

Examples::

    python -m repro figure5 --nodes 4 8 --keys 10000 --duration 0.01
    python -m repro figure7 --nodes 8
    python -m repro figure9b --warehouses 2 4 8
    python -m repro config --nodes 8 > cluster.json
    python -m repro config --load cluster.json
    python -m repro list
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.config import ClusterConfig, RunConfig
from repro.harness import ascii_chart, experiments, format_table, group_series

FIGURES = {
    "figure5": (
        experiments.figure5_ycsb_throughput,
        ["figure", "ro", "keys", "nodes", "protocol", "throughput_ktps", "abort_rate"],
        "YCSB throughput vs number of nodes",
    ),
    "figure6": (
        experiments.figure6_antidep,
        ["figure", "keys", "ro", "mean_antidep", "max_antidep", "samples"],
        "anti-dependencies collected by FW-KV update transactions",
    ),
    "figure7": (
        experiments.figure7_ycsb_abort_delay,
        ["figure", "keys", "ro", "delayed", "protocol", "abort_rate",
         "throughput_ktps"],
        "YCSB abort rate with delayed Propagate messages",
    ),
    "figure8": (
        experiments.figure8_tpcc_throughput,
        ["figure", "ro", "w_per_node", "nodes", "protocol", "throughput_ktps",
         "abort_rate"],
        "TPC-C throughput vs number of nodes",
    ),
    "figure9a": (
        experiments.figure9a_tpcc_abort_delay,
        ["figure", "w_per_node", "protocol", "abort_rate", "throughput_ktps"],
        "TPC-C abort rate with delayed Propagate messages",
    ),
    "figure9b": (
        experiments.figure9b_slowdown,
        ["figure", "ro", "w_per_node", "walter_ktps", "fwkv_ktps",
         "slowdown_pct"],
        "FW-KV slowdown vs Walter on TPC-C",
    ),
}


def build_parser() -> argparse.ArgumentParser:
    """The argument parser for ``python -m repro``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate figures from the FW-KV paper (simulated).",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available figures")

    config = sub.add_parser(
        "config",
        help="print a ClusterConfig as JSON (to_dict/from_dict round-trip)",
    )
    config.add_argument("--nodes", type=int, default=4,
                        help="num_nodes for a freshly defaulted config")
    config.add_argument("--load", type=str, default=None,
                        help="JSON file (full or partial overlay) to "
                             "validate via from_dict and echo back "
                             "normalised; unknown keys fail loudly")

    for name, (_fn, _cols, help_text) in FIGURES.items():
        figure = sub.add_parser(name, help=help_text)
        figure.add_argument("--nodes", type=int, nargs="+", default=None,
                            help="node counts (figure5/8) or single count")
        figure.add_argument("--keys", type=int, nargs="+", default=None,
                            help="YCSB key counts")
        figure.add_argument("--ro", type=float, nargs="+", default=None,
                            help="read-only fractions")
        figure.add_argument("--warehouses", type=int, nargs="+", default=None,
                            help="warehouses per node (TPC-C figures)")
        figure.add_argument("--duration", type=float, default=None,
                            help="measured virtual seconds per run")
        figure.add_argument("--warmup", type=float, default=None,
                            help="warmup virtual seconds per run")
        figure.add_argument("--seed", type=int, default=1)
        figure.add_argument("--trials", type=int, default=1,
                            help="runs to average (the paper uses 5)")
        figure.add_argument("--chart", action="store_true",
                            help="also print an ASCII chart of the series")
    return parser


def _figure_kwargs(name: str, args: argparse.Namespace) -> dict:
    kwargs: dict = {"seed": args.seed}
    if args.duration is not None or args.warmup is not None:
        defaults = RunConfig(duration=0.04, warmup=0.012)
        kwargs["run"] = RunConfig(
            duration=args.duration if args.duration is not None else defaults.duration,
            warmup=args.warmup if args.warmup is not None else defaults.warmup,
        )
    if args.ro is not None:
        if name in ("figure9a",):
            kwargs["ro_frac"] = args.ro[0]
        else:
            kwargs["ro_fracs"] = tuple(args.ro)
    if args.keys is not None and name in ("figure5", "figure6", "figure7"):
        kwargs["key_counts"] = tuple(args.keys)
    if args.nodes is not None:
        if name in ("figure5", "figure8"):
            kwargs["nodes"] = tuple(args.nodes)
        else:
            kwargs["num_nodes"] = args.nodes[0]
    if args.warehouses is not None and name in ("figure8", "figure9a", "figure9b"):
        kwargs["warehouses_per_node"] = tuple(args.warehouses)
    return kwargs


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "list":
        for name, (_fn, _cols, help_text) in FIGURES.items():
            print(f"{name:10s} {help_text}")
        return 0
    if args.command == "config":
        if args.load is not None:
            with open(args.load, encoding="utf-8") as fh:
                config = ClusterConfig.from_dict(json.load(fh))
        else:
            config = ClusterConfig(num_nodes=args.nodes)
        print(json.dumps(config.to_dict(), indent=2, sort_keys=True))
        return 0

    fn, columns, help_text = FIGURES[args.command]
    kwargs = _figure_kwargs(args.command, args)
    if args.trials > 1:
        rows = experiments.run_trials(fn, trials=args.trials, **kwargs)
        columns = list(columns) + ["trials"]
    else:
        rows = fn(**kwargs)
    print(format_table(rows, columns, title=f"{args.command}: {help_text}"))
    if args.chart:
        y_field = next(
            (c for c in ("throughput_ktps", "abort_rate", "mean_antidep",
                         "slowdown_pct") if c in columns),
            None,
        )
        x_field = next(
            (c for c in ("nodes", "keys", "w_per_node", "ro") if c in columns),
            None,
        )
        if y_field and x_field:
            series = group_series(
                rows, x_field, y_field,
                group=lambda r: str(r.get("protocol", r.get("figure", ""))),
            )
            print()
            print(ascii_chart(series, title=f"{y_field} by {x_field}"))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
