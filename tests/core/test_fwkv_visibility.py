"""Unit tests for FW-KV version selection (Alg. 3), including the paper's
worked examples from Figures 2 and 3."""

import pytest

from repro.core import VectorClock
from repro.core.fwkv import (
    select_read_only_version,
    select_update_version,
    update_excluded,
    visible_under,
)
from repro.storage.chain import VersionChain


def version(chain, value, vc_entries, origin=0, seq=0):
    return chain.install(value, VectorClock(vc_entries), origin, seq)


def test_visible_under_only_constrains_read_sites():
    chain = VersionChain("x")
    v = version(chain, "a", [9, 2, 9])
    assert visible_under(v, [0, 5, 0], [False, True, False])
    assert not visible_under(v, [0, 1, 0], [False, True, False])
    # No read sites: everything visible.
    assert visible_under(v, [0, 0, 0], [False, False, False])


def test_read_only_selection_prefers_freshest_visible():
    chain = VersionChain("x")
    version(chain, "v0", [0, 0, 0])
    version(chain, "v1", [0, 3, 0], origin=1, seq=3)
    version(chain, "v2", [0, 7, 0], origin=1, seq=7)
    # Transaction already read site 1 at timestamp 5: v2 invisible.
    chosen, _ = select_read_only_version(
        chain, [0, 5, 0], [False, True, False], txn_id=42
    )
    assert chosen.value == "v1"


def test_read_only_first_contact_sees_latest():
    chain = VersionChain("x")
    version(chain, "v0", [0, 0, 0])
    version(chain, "v1", [0, 9, 9], origin=1, seq=9)
    # hasRead all false: no visibility constraint, freshest wins.
    chosen, _ = select_read_only_version(
        chain, [0, 0, 0], [False, False, False], txn_id=42
    )
    assert chosen.value == "v1"


def test_read_only_skips_versions_with_own_id_in_vas():
    """Figure 2: y1 carries T1's id (propagated by T3's commit), so T1's
    read of y must fall back to y0 despite y1 being VC-visible."""
    chain = VersionChain("y")
    y0 = version(chain, "y0", [2, 5, 6])
    y1 = version(chain, "y1", [2, 7, 7], origin=2, seq=7)
    y1.access_set.add(1)  # T1's identifier, installed by T3's commit
    # T1 (read-only, id 1) with VC <2,7,6> after reading x0 at site 1.
    chosen, inspected = select_read_only_version(
        chain, [2, 7, 6], [False, True, False], txn_id=1
    )
    assert chosen is y0
    assert inspected >= 1
    # A different reader without the anti-dependency gets y1... if visible.
    chosen2, _ = select_read_only_version(
        chain, [2, 7, 7], [False, True, False], txn_id=9
    )
    assert chosen2 is y1


def test_read_only_selection_never_fails_on_initial_version():
    chain = VersionChain("x")
    version(chain, "v0", [0, 0])
    chosen, _ = select_read_only_version(chain, [0, 0], [True, True], txn_id=5)
    assert chosen.value == "v0"


def test_read_only_raises_when_no_version_visible():
    chain = VersionChain("x")
    version(chain, "v1", [0, 9], origin=1, seq=9)  # no initial version
    with pytest.raises(RuntimeError):
        select_read_only_version(chain, [0, 0], [False, True], txn_id=5)


def test_update_first_read_never_excluded():
    """Figure 4: T1's first read returns x1 even though x1's clock exceeds
    the begin snapshot at an unread position."""
    chain = VersionChain("x")
    version(chain, "x0", [2, 4], origin=1, seq=4)
    x1 = version(chain, "x1", [2, 7], origin=1, seq=7)
    # T1 began at node 0 with VC <2,5>; hasRead all false (first read).
    assert not update_excluded(x1, [2, 5], [False, False])
    chosen, _ = select_update_version(chain, [2, 5], [False, False])
    assert chosen is x1


def test_update_exclusion_rule_figure3():
    """Figure 3: y1 with VC <2,7,7> is excluded for T1 with VC <2,7,6> and
    hasRead true only at site 1; y0 is returned instead."""
    chain = VersionChain("y")
    y0 = version(chain, "y0", [2, 5, 6])
    y1 = version(chain, "y1", [2, 7, 7], origin=2, seq=7)
    txn_vc = [2, 7, 6]
    has_read = [False, True, False]
    assert update_excluded(y1, txn_vc, has_read)
    assert not update_excluded(y0, txn_vc, has_read)
    chosen, _ = select_update_version(chain, txn_vc, has_read)
    assert chosen is y0


def test_update_exclusion_requires_equality_at_read_sites():
    chain = VersionChain("y")
    version(chain, "y0", [2, 5, 6])
    y1 = version(chain, "y1", [2, 6, 7], origin=2, seq=7)
    # T.VC[1]=7 != y1.VC[1]=6 at the read site: not excluded (and visible).
    assert not update_excluded(y1, [2, 7, 6], [False, True, False])
    chosen, _ = select_update_version(chain, [2, 7, 6], [False, True, False])
    assert chosen is y1


def test_update_exclusion_requires_newer_unread_entry():
    chain = VersionChain("y")
    y1 = version(chain, "y1", [2, 7, 6], origin=1, seq=7)
    # Equal at read site but nowhere newer: not excluded.
    assert not update_excluded(y1, [2, 7, 6], [False, True, False])


def test_update_selection_raises_without_visible_version():
    chain = VersionChain("x")
    version(chain, "x1", [0, 9], origin=1, seq=9)
    with pytest.raises(RuntimeError):
        select_update_version(chain, [0, 0], [False, True])


# ----------------------------------------------------------------------
# Elastic membership: retired (dropped) origins place no constraint
# ----------------------------------------------------------------------
def test_dropped_origin_never_excludes_for_update_reads():
    """Regression: after a shrink view retires origin 2, merging an old
    wide version clock can resurrect ``T.VC[2] == 0`` while the chain
    head still carries the retired origin's final entry.  The exclusion
    rule must not read that entry as a concurrent commit -- the shrink
    gate proved it is applied under every live snapshot."""
    chain = VersionChain("k")
    version(chain, "k0", [0, 0, 0])
    head = version(chain, "k1", [4, 4, 4], origin=2, seq=4)
    txn_vc = [4, 4, 0]  # zero resurrected by a merge with an old clock
    has_read = [False, True, False]
    assert update_excluded(head, txn_vc, has_read)  # unmasked: excluded
    assert not update_excluded(head, txn_vc, has_read, dropped={2})
    chosen, _ = select_update_version(chain, txn_vc, has_read, dropped={2})
    assert chosen is head


def test_dropped_origin_never_hides_versions_from_read_only_reads():
    chain = VersionChain("k")
    version(chain, "k0", [0, 0, 0])
    head = version(chain, "k1", [4, 4, 4], origin=2, seq=4)
    txn_vc = [4, 4, 0]
    has_read = [True, True, True]  # an old wide flag list
    assert not visible_under(head, txn_vc, has_read)
    assert visible_under(head, txn_vc, has_read, dropped={2})
    chosen, _ = select_read_only_version(
        chain, txn_vc, has_read, txn_id=9, dropped={2}
    )
    assert chosen is head
