"""Property-based tests (hypothesis) for FW-KV version selection."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import VectorClock
from repro.core.fwkv.visibility import (
    select_read_only_version,
    select_update_version,
    update_excluded,
    visible_under,
)
from repro.core.walter.visibility import select_walter_version
from repro.storage.chain import VersionChain

SITES = 3


@st.composite
def chains(draw):
    """A version chain with an always-visible initial version."""
    chain = VersionChain("k")
    chain.install("v0", VectorClock.zeros(SITES), origin=0, seq=0)
    count = draw(st.integers(min_value=0, max_value=6))
    for i in range(count):
        origin = draw(st.integers(0, SITES - 1))
        seq = draw(st.integers(1, 20))
        entries = [draw(st.integers(0, 20)) for _ in range(SITES)]
        entries[origin] = seq
        chain.install(f"v{i + 1}", VectorClock(entries), origin, seq)
    return chain


txn_vcs = st.lists(st.integers(0, 20), min_size=SITES, max_size=SITES)
has_reads = st.lists(st.booleans(), min_size=SITES, max_size=SITES)


@given(chains(), txn_vcs, has_reads)
@settings(max_examples=200)
def test_read_only_selection_is_visible_and_freshest(chain, txn_vc, has_read):
    chosen, _ = select_read_only_version(chain, txn_vc, has_read, txn_id=999)
    assert visible_under(chosen, txn_vc, has_read)
    # Maximality: no visible, non-excluded version is newer.
    for version in chain:
        if version.vid > chosen.vid and visible_under(version, txn_vc, has_read):
            assert 999 in version.access_set, (
                "a newer visible version may only be skipped via the VAS"
            )


@given(chains(), txn_vcs, has_reads)
@settings(max_examples=200)
def test_update_selection_is_visible_and_freshest(chain, txn_vc, has_read):
    chosen, _ = select_update_version(chain, txn_vc, has_read)
    assert visible_under(chosen, txn_vc, has_read)
    assert not update_excluded(chosen, txn_vc, has_read)
    for version in chain:
        if version.vid > chosen.vid and visible_under(version, txn_vc, has_read):
            assert update_excluded(version, txn_vc, has_read)


@given(chains(), txn_vcs)
@settings(max_examples=200)
def test_update_first_read_returns_global_latest(chain, txn_vc):
    """With hasRead all false, the first read sees the newest version."""
    chosen, _ = select_update_version(chain, txn_vc, [False] * SITES)
    assert chosen.vid == chain.latest.vid


@given(chains(), txn_vcs)
@settings(max_examples=200)
def test_read_only_first_contact_without_vas_is_latest(chain, txn_vc):
    chosen, _ = select_read_only_version(
        chain, txn_vc, [False] * SITES, txn_id=12345
    )
    assert chosen.vid == chain.latest.vid


@given(chains(), txn_vcs)
@settings(max_examples=200)
def test_walter_selection_within_snapshot(chain, txn_vc):
    chosen, _ = select_walter_version(chain, txn_vc)
    assert chosen.seq <= txn_vc[chosen.origin]
    for version in chain:
        if version.vid > chosen.vid:
            assert version.seq > txn_vc[version.origin], (
                "Walter must pick the freshest version inside the snapshot"
            )


@given(chains(), txn_vcs, has_reads, st.integers(0, 5))
@settings(max_examples=200)
def test_vas_exclusion_monotone(chain, txn_vc, has_read, reader):
    """Adding the reader to every VAS only pushes selection older."""
    before, _ = select_read_only_version(chain, txn_vc, has_read, txn_id=reader)
    for version in chain:
        version.access_set.add(reader)
    # The initial version must stay reachable for the property to hold;
    # clear it (a reader is never in the initial version's VAS unless it
    # read it, in which case the read cache would have served the value).
    first = next(iter(chain))
    first.access_set.discard(reader)
    after, _ = select_read_only_version(chain, txn_vc, has_read, txn_id=reader)
    assert after.vid <= before.vid
