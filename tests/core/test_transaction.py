"""Unit tests for the transaction descriptor."""

import pytest

from repro.core import Transaction, TransactionStatus


def make(ro=False):
    return Transaction(7, 1, 4, is_read_only=ro, start_time=1.5, profile="p")


def test_fresh_transaction_state():
    txn = make()
    assert txn.status is TransactionStatus.ACTIVE
    assert txn.vc.to_tuple() == (0, 0, 0, 0)
    assert txn.has_read == [False] * 4
    assert not txn.first_read_done
    assert txn.is_update
    assert txn.seq_no is None and txn.commit_vc is None
    assert txn.start_time == 1.5 and txn.end_time is None
    assert txn.profile == "p"


def test_first_read_done_tracks_has_read():
    txn = make()
    txn.has_read[2] = True
    assert txn.first_read_done


def test_buffered_write_distinguishes_none_values():
    txn = make()
    assert txn.buffered_write("x") == (False, None)
    txn.writeset["x"] = None
    assert txn.buffered_write("x") == (True, None)
    txn.writeset["y"] = 5
    assert txn.buffered_write("y") == (True, 5)


def test_lifecycle_marks():
    txn = make()
    txn.mark_committed(3.0)
    assert txn.status is TransactionStatus.COMMITTED
    assert txn.end_time == 3.0

    other = make()
    other.mark_aborted(4.0)
    assert other.status is TransactionStatus.ABORTED


def test_read_only_flag_and_repr():
    ro = make(ro=True)
    assert ro.is_read_only and not ro.is_update
    assert "ro" in repr(ro)
    up = make(ro=False)
    assert "up" in repr(up)
