"""Unit and property-based tests for vector clocks."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import VectorClock

clock_entries = st.lists(st.integers(min_value=0, max_value=100), min_size=1, max_size=8)


def paired_clocks(size=4):
    return st.tuples(
        st.lists(st.integers(0, 50), min_size=size, max_size=size),
        st.lists(st.integers(0, 50), min_size=size, max_size=size),
    )


def test_zeros_and_len():
    vc = VectorClock.zeros(4)
    assert len(vc) == 4
    assert list(vc) == [0, 0, 0, 0]
    with pytest.raises(ValueError):
        VectorClock.zeros(0)


def test_get_set_items():
    vc = VectorClock.zeros(3)
    vc[1] = 7
    assert vc[1] == 7
    assert vc.to_tuple() == (0, 7, 0)


def test_copy_is_independent():
    vc = VectorClock([1, 2, 3])
    cp = vc.copy()
    cp[0] = 99
    assert vc[0] == 1


def test_merge_is_entrywise_max():
    a = VectorClock([1, 5, 3])
    a.merge(VectorClock([4, 2, 3]))
    assert a.to_tuple() == (4, 5, 3)


def test_merged_leaves_operands_untouched():
    a = VectorClock([1, 5])
    b = VectorClock([2, 3])
    c = a.merged(b)
    assert c.to_tuple() == (2, 5)
    assert a.to_tuple() == (1, 5)
    assert b.to_tuple() == (2, 3)


def test_leq_and_dominates():
    small = VectorClock([1, 2, 3])
    big = VectorClock([1, 5, 3])
    assert small.leq(big)
    assert big.dominates(small)
    assert not big.leq(small)
    incomparable = VectorClock([0, 9, 0])
    assert not incomparable.leq(big)
    assert not big.leq(incomparable)


def test_leq_on_restricts_to_active_positions():
    version = VectorClock([9, 2, 9])
    txn = VectorClock([1, 5, 1])
    # Only position 1 is active: 2 <= 5 so the check passes.
    assert version.leq_on(txn, [False, True, False])
    # Activating position 0 makes it fail: 9 > 1.
    assert not version.leq_on(txn, [True, True, False])
    # No active positions: vacuously true.
    assert version.leq_on(txn, [False, False, False])


def test_mixed_widths_use_zero_defaults():
    """Clocks of different widths coexist during a membership change:
    missing trailing entries behave exactly like explicit zeros."""
    narrow = VectorClock([1])
    narrow.merge(VectorClock([1, 2]))
    assert narrow.to_tuple() == (1, 2)  # merging a wider clock widens

    wide = VectorClock([1, 2])
    wide.merge(VectorClock([3]))
    assert wide.to_tuple() == (3, 2)  # a narrower one leaves the tail

    assert VectorClock([1]).leq(VectorClock([1, 2]))
    assert VectorClock([1, 0]).leq(VectorClock([1]))  # zero tail: equal
    assert not VectorClock([1, 1]).leq(VectorClock([1]))


def test_widen_and_shrink_in_place():
    vc = VectorClock([3, 1])
    entries = vc.entries
    vc.widen(4)
    assert vc.to_tuple() == (3, 1, 0, 0)
    vc.shrink(2)
    assert vc.to_tuple() == (3, 1)
    # Identity is preserved: handlers holding the entries list see the
    # same object through widen/shrink cycles.
    assert vc.entries is entries
    vc.shrink(3)  # shrinking to a wider size is a no-op
    assert vc.to_tuple() == (3, 1)


def test_equality_and_hash():
    assert VectorClock([1, 2]) == VectorClock([1, 2])
    assert VectorClock([1, 2]) != VectorClock([2, 1])
    assert hash(VectorClock([1, 2])) == hash(VectorClock([1, 2]))
    assert VectorClock([1, 2]) != "not a clock"


@given(paired_clocks())
def test_merge_commutative(pair):
    a, b = pair
    left = VectorClock(a).merged(VectorClock(b))
    right = VectorClock(b).merged(VectorClock(a))
    assert left == right


@given(paired_clocks())
def test_merge_upper_bound(pair):
    a, b = pair
    merged = VectorClock(a).merged(VectorClock(b))
    assert VectorClock(a).leq(merged)
    assert VectorClock(b).leq(merged)


@given(clock_entries)
def test_merge_idempotent(entries):
    vc = VectorClock(entries)
    assert vc.merged(vc) == vc


@given(paired_clocks(), st.lists(st.booleans(), min_size=4, max_size=4))
def test_leq_implies_leq_on_any_mask(pair, mask):
    a, b = pair
    va, vb = VectorClock(a), VectorClock(b)
    if va.leq(vb):
        assert va.leq_on(vb, mask)
