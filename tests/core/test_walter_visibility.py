"""Unit tests for Walter's begin-time snapshot version selection."""

import pytest

from repro.core import VectorClock
from repro.core.walter import select_walter_version
from repro.storage.chain import VersionChain


def version(chain, value, origin, seq):
    vc = VectorClock.zeros(3)
    vc[origin] = seq
    return chain.install(value, vc, origin, seq)


def test_selects_freshest_within_snapshot():
    chain = VersionChain("x")
    version(chain, "v0", 0, 0)
    version(chain, "v1", 1, 3)
    version(chain, "v2", 1, 7)
    chosen, _ = select_walter_version(chain, [0, 5, 0])
    assert chosen.value == "v1"


def test_snapshot_includes_exact_boundary():
    chain = VersionChain("x")
    version(chain, "v0", 0, 0)
    version(chain, "v1", 1, 5)
    chosen, _ = select_walter_version(chain, [0, 5, 0])
    assert chosen.value == "v1"


def test_returns_arbitrarily_old_when_clock_lags():
    """The paper's motivating flaw: an outdated node clock hides every
    newer version, no matter how stale the result."""
    chain = VersionChain("x")
    version(chain, "v0", 0, 0)
    for seq in range(1, 6):
        version(chain, f"v{seq}", 1, seq)
    chosen, _ = select_walter_version(chain, [0, 0, 0])
    assert chosen.value == "v0"


def test_initial_version_always_visible():
    chain = VersionChain("x")
    version(chain, "v0", 0, 0)
    chosen, _ = select_walter_version(chain, [0, 0, 0])
    assert chosen.value == "v0"


def test_raises_without_any_visible_version():
    chain = VersionChain("x")
    version(chain, "v9", 1, 9)
    with pytest.raises(RuntimeError):
        select_walter_version(chain, [0, 0, 0])


def test_versions_from_different_origins_filtered_independently():
    chain = VersionChain("x")
    version(chain, "v0", 0, 0)
    version(chain, "a", 1, 1)
    version(chain, "b", 2, 1)
    # Snapshot knows origin 2 but not origin 1.
    chosen, _ = select_walter_version(chain, [0, 0, 1])
    assert chosen.value == "b"
