"""Property-based tests: optimized VectorClock ops vs a naive reference.

The clock algebra in ``repro.core.vector_clock`` is hand-tuned for the
CPython hot path (in-place loops, early exits, interned zeros).  These
properties pin its behaviour to the obvious specification so future
micro-optimisations cannot silently change semantics.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.vector_clock import VectorClock

SIZE = 5

entry_lists = st.lists(
    st.integers(0, 50), min_size=SIZE, max_size=SIZE
)
position_lists = st.lists(st.booleans(), min_size=SIZE, max_size=SIZE)


def ref_merge(a, b):
    return [max(x, y) for x, y in zip(a, b)]


def ref_leq(a, b):
    return all(x <= y for x, y in zip(a, b))


def ref_leq_on(a, b, positions):
    return all(x <= y for x, y, p in zip(a, b, positions) if p)


@given(entry_lists, entry_lists)
@settings(max_examples=300)
def test_merge_matches_reference(a, b):
    vc = VectorClock(a)
    vc.merge(VectorClock(b))
    assert list(vc) == ref_merge(a, b)


@given(entry_lists, entry_lists)
@settings(max_examples=300)
def test_merge_seq_matches_reference(a, b):
    vc = VectorClock(a)
    vc.merge_seq(tuple(b))
    assert list(vc) == ref_merge(a, b)


@given(entry_lists, entry_lists)
@settings(max_examples=300)
def test_merged_matches_reference_and_leaves_operands_alone(a, b):
    left, right = VectorClock(a), VectorClock(b)
    out = left.merged(right)
    assert list(out) == ref_merge(a, b)
    assert list(left) == a and list(right) == b


@given(entry_lists, entry_lists)
@settings(max_examples=300)
def test_leq_and_dominates_match_reference(a, b):
    left, right = VectorClock(a), VectorClock(b)
    assert left.leq(right) == ref_leq(a, b)
    assert left.dominates(right) == ref_leq(b, a)


@given(entry_lists, entry_lists, position_lists)
@settings(max_examples=300)
def test_leq_on_matches_reference(a, b, positions):
    assert VectorClock(a).leq_on(VectorClock(b), positions) == ref_leq_on(
        a, b, positions
    )


@given(entry_lists)
@settings(max_examples=100)
def test_merge_is_idempotent_and_self_merge_is_noop(a):
    vc = VectorClock(a)
    vc.merge(vc)
    assert list(vc) == a
    vc.merge(VectorClock(a))
    assert list(vc) == a


@given(entry_lists, entry_lists)
@settings(max_examples=100)
def test_merge_mutates_entries_in_place(a, b):
    """Hot callers bind ``.entries`` locally; merge must never rebind it."""
    vc = VectorClock(a)
    bound = vc.entries
    vc.merge(VectorClock(b))
    assert bound is vc.entries
    assert list(bound) == ref_merge(a, b)


@given(entry_lists)
@settings(max_examples=100)
def test_copy_is_independent(a):
    vc = VectorClock(a)
    dup = vc.copy()
    assert dup == vc and dup is not vc
    dup[0] += 1
    assert list(vc) == a


def test_zero_is_interned_and_immutable():
    zero = VectorClock.zero(SIZE)
    assert zero is VectorClock.zero(SIZE)
    assert zero == VectorClock.zeros(SIZE)
    with pytest.raises(TypeError):
        zero[0] = 1
    with pytest.raises(TypeError):
        zero.merge(VectorClock.zeros(SIZE))
    with pytest.raises(TypeError):
        zero.merge_seq((1,) * SIZE)
    # A copy of the interned zero is a private, mutable clock.
    dup = zero.copy()
    dup[0] = 7
    assert zero[0] == 0
