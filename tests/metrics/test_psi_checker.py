"""Unit tests for the offline PSI checker on hand-built histories."""

from repro.metrics import (
    History,
    OpRecord,
    TxnRecord,
    check_no_read_skew,
    check_site_order,
    find_long_forks,
)


def txn(txn_id, ops, *, ro=False, start=0.0, end=1.0, node=0):
    record = TxnRecord(
        txn_id=txn_id,
        node_id=node,
        is_read_only=ro,
        start_time=start,
        end_time=end,
    )
    for op in ops:
        record.ops.append(OpRecord(*op))
    return record


def test_read_skew_detected():
    history = History()
    # Writer 1 writes x@1 and y@1 atomically.
    history.append(txn(1, [("w", "x", 1, None), ("w", "y", 1, None)]))
    # Reader sees x@1 but stale y@0: fractured.
    history.append(txn(2, [("r", "x", 1, 1), ("r", "y", 0, 1)], ro=True))
    result = check_no_read_skew(history)
    assert not result.ok
    assert "fractured" in result.violations[0]


def test_consistent_snapshot_passes():
    history = History()
    history.append(txn(1, [("w", "x", 1, None), ("w", "y", 1, None)]))
    history.append(txn(2, [("r", "x", 0, 1), ("r", "y", 0, 1)], ro=True))
    history.append(txn(3, [("r", "x", 1, 1), ("r", "y", 1, 1)], ro=True))
    assert check_no_read_skew(history).ok


def test_single_shared_key_cannot_fracture():
    history = History()
    history.append(txn(1, [("w", "x", 1, None), ("w", "y", 1, None)]))
    history.append(txn(2, [("r", "x", 1, 1)], ro=True))
    assert check_no_read_skew(history).ok


def test_site_order_violation_detected():
    history = History()
    # Reader saw origin 1 up to seq 5 on key x, but on key y it read vid 0
    # while vid 1 (origin 1, seq 3 <= 5) already existed at the node.
    history.append(
        txn(9, [("r", "x", 2, 2), ("r", "y", 0, 1)], ro=True)
    )
    catalog = {
        ("x", 2): (1, 5, 100),
        ("y", 0): (0, 0, None),
        ("y", 1): (1, 3, 101),
    }
    result = check_site_order(history, catalog)
    assert not result.ok
    assert "origin 1" in result.violations[0]


def test_site_order_allows_missing_other_origins():
    history = History()
    history.append(txn(9, [("r", "x", 2, 2), ("r", "y", 0, 1)], ro=True))
    catalog = {
        ("x", 2): (1, 5, 100),
        ("y", 0): (0, 0, None),
        ("y", 1): (2, 3, 101),  # different origin: long fork, not order
    }
    assert check_site_order(history, catalog).ok


def test_site_order_ignores_versions_installed_after_the_read():
    history = History()
    # latest_vid_at_read == vid: nothing newer existed when the read ran.
    history.append(txn(9, [("r", "x", 2, 2), ("r", "y", 0, 0)], ro=True))
    catalog = {
        ("x", 2): (1, 5, 100),
        ("y", 0): (0, 0, None),
        ("y", 1): (1, 3, 101),
    }
    assert check_site_order(history, catalog).ok


def build_fork_history(*, readers_after=True):
    history = History()
    history.append(txn(1, [("w", "x", 1, None)], end=1.0))
    history.append(txn(2, [("w", "y", 1, None)], end=1.0))
    start = 2.0 if readers_after else 0.5
    history.append(
        txn(3, [("r", "x", 1, 1), ("r", "y", 0, 1)], ro=True, start=start)
    )
    history.append(
        txn(4, [("r", "x", 0, 1), ("r", "y", 1, 1)], ro=True, start=start)
    )
    return history


def test_long_fork_found_and_classified_observable():
    forks = find_long_forks(build_fork_history(readers_after=True))
    assert len(forks) == 1
    fork = forks[0]
    assert {fork.writer_x, fork.writer_y} == {1, 2}
    assert fork.observable


def test_long_fork_concurrent_not_observable():
    forks = find_long_forks(build_fork_history(readers_after=False))
    assert len(forks) == 1
    assert not forks[0].observable


def test_agreeing_readers_are_not_a_fork():
    history = History()
    history.append(txn(1, [("w", "x", 1, None)]))
    history.append(txn(2, [("w", "y", 1, None)]))
    history.append(txn(3, [("r", "x", 1, 1), ("r", "y", 1, 1)], ro=True))
    history.append(txn(4, [("r", "x", 0, 1), ("r", "y", 0, 1)], ro=True))
    assert find_long_forks(history) == []


def test_history_accessors():
    history = History()
    history.append(txn(1, [("w", "x", 1, None)]))
    history.append(txn(2, [("r", "x", 1, 1)], ro=True))
    assert len(history) == 2
    assert len(history.committed_updates()) == 1
    assert len(history.committed_read_only()) == 1
    assert history.by_id(1).wrote("x")
    assert history.by_id(2).read_of("x").vid == 1
    assert history.by_id(2).read_of("nope") is None
    try:
        history.by_id(99)
    except KeyError:
        pass
    else:  # pragma: no cover
        raise AssertionError("expected KeyError")


# ----------------------------------------------------------------------
# Crash/restart-boundary histories (durable-recovery suite)
# ----------------------------------------------------------------------
def test_crash_lost_write_fractures_reads():
    """A committed-then-lost write is flagged, not silently forgiven.

    Writer 100 committed x@1 and y@1 atomically; y's site then crashed
    durably and (without a WAL) forgot y@1.  A post-restart reader that
    sees x@1 but the resurrected y@0 has a fractured snapshot -- the
    checker must flag the merged pre/post-crash history.
    """
    history = History()
    history.append(txn(100, [("w", "x", 1, None), ("w", "y", 1, None)]))
    # Pre-crash reader: consistent snapshot, no complaint.
    history.append(txn(101, [("r", "x", 1, 1), ("r", "y", 1, 1)], ro=True))
    # Post-restart reader at the amnesiac site.
    history.append(txn(102, [("r", "x", 1, 1), ("r", "y", 0, 1)], ro=True))
    result = check_no_read_skew(history)
    assert not result.ok
    assert "fractured" in result.violations[0]


def test_recovered_write_is_not_flagged():
    """The same boundary with WAL replay: y@1 survives, history is PSI."""
    history = History()
    history.append(txn(100, [("w", "x", 1, None), ("w", "y", 1, None)]))
    history.append(txn(101, [("r", "x", 1, 1), ("r", "y", 1, 1)], ro=True))
    # Post-restart reader: the recovered site replayed y@1 from its WAL.
    history.append(txn(102, [("r", "x", 1, 1), ("r", "y", 1, 1)], ro=True))
    assert check_no_read_skew(history).ok
    catalog = {("x", 1): (0, 1, 100), ("y", 1): (0, 1, 100)}
    assert check_site_order(history, catalog).ok


def test_wiped_clock_breaks_site_order():
    """A restart that loses siteVC state serves provably-stale reads.

    The reader's snapshot includes origin 2 up to seq 6 (via x@3), so a
    y read served from a node whose wipe lost origin-2 seq 4 -- y@1
    existed when the read was served -- is a per-origin order violation.
    """
    history = History()
    history.append(txn(9, [("r", "x", 3, 3), ("r", "y", 0, 1)], ro=True))
    catalog = {("x", 3): (2, 6, 110), ("y", 1): (2, 4, 109)}
    result = check_site_order(history, catalog)
    assert not result.ok
    assert "missed" in result.violations[0]


def test_caught_up_clock_passes_site_order():
    """After anti-entropy catch-up the same snapshot shape is clean."""
    history = History()
    history.append(txn(9, [("r", "x", 3, 3), ("r", "y", 1, 1)], ro=True))
    catalog = {("x", 3): (2, 6, 110), ("y", 1): (2, 4, 109)}
    assert check_site_order(history, catalog).ok
