"""Unit tests for the metrics recorder."""

import math

import pytest

from repro.core.transaction import Transaction
from repro.metrics import MetricsRecorder, RunningStat
from repro.sim import Simulator


def make_txn(ro=False, profile=None):
    txn = Transaction(1, 0, 4, is_read_only=ro, profile=profile)
    return txn


def test_running_stat_tracks_extremes():
    stat = RunningStat()
    for value in (3.0, 1.0, 2.0):
        stat.add(value)
    assert stat.count == 3
    assert stat.mean == pytest.approx(2.0)
    assert stat.minimum == 1.0
    assert stat.maximum == 3.0
    d = stat.as_dict()
    assert d["count"] == 3 and d["mean"] == pytest.approx(2.0)


def test_running_stat_empty():
    stat = RunningStat()
    assert stat.mean == 0.0
    assert stat.as_dict() == {"count": 0, "mean": 0.0, "min": 0.0, "max": 0.0}


def test_commit_and_abort_counting():
    sim = Simulator()
    metrics = MetricsRecorder(sim)
    metrics.on_commit(make_txn(profile="p1"), latency=0.01, attempts=2)
    metrics.on_commit(make_txn(ro=True, profile="p2"), latency=0.02, attempts=1)
    metrics.on_abort(make_txn(), reason="validation")
    assert metrics.commits == 2
    assert metrics.aborts == 1
    assert metrics.abort_rate == pytest.approx(1 / 3)
    assert metrics.commits_by_profile == {"p1": 1, "p2": 1}
    assert metrics.aborts_by_reason == {"validation": 1}
    assert metrics.read_only_latency.count == 1
    assert metrics.update_latency.count == 1
    assert metrics.attempts_per_commit.mean == pytest.approx(1.5)


def test_window_excludes_events_outside():
    sim = Simulator()
    metrics = MetricsRecorder(sim)
    metrics.open_window(start=1.0, end=2.0)
    # now == 0: before the window.
    metrics.on_commit(make_txn(), latency=0.1, attempts=1)
    metrics.on_abort(make_txn(), "validation")
    metrics.on_ro_read(gap=1, first_contact=True)
    metrics.on_antidep_collected(5)
    metrics.on_read_stall(0.1)
    assert metrics.commits == 0
    assert metrics.aborts == 0
    assert metrics.ro_reads == 0
    assert metrics.antidep_collected.count == 0
    assert metrics.read_stalls == 0

    sim.call_at(1.5, lambda: metrics.on_commit(make_txn(), 0.1, 1))
    sim.run()
    assert metrics.commits == 1


def test_throughput_uses_window_duration():
    sim = Simulator()
    metrics = MetricsRecorder(sim)
    metrics.open_window(start=0.0, end=2.0)
    metrics.on_commit(make_txn(), 0.1, 1)
    sim.call_at(2.0, lambda: None)
    sim.run()
    assert metrics.window_duration == pytest.approx(2.0)
    assert metrics.throughput() == pytest.approx(0.5)


def test_freshness_accounting():
    sim = Simulator()
    metrics = MetricsRecorder(sim)
    metrics.on_ro_read(gap=0, first_contact=True)
    metrics.on_ro_read(gap=3, first_contact=True)
    metrics.on_ro_read(gap=0, first_contact=False)
    assert metrics.ro_reads == 3
    assert metrics.ro_stale_reads == 1
    assert metrics.stale_read_fraction == pytest.approx(1 / 3)
    assert metrics.first_contact_reads == 2
    assert metrics.first_contact_fresh == 1
    assert metrics.ro_read_gap.mean == pytest.approx(1.0)


def test_summary_contains_all_sections():
    sim = Simulator()
    metrics = MetricsRecorder(sim)
    summary = metrics.summary()
    for key in (
        "commits", "aborts", "abort_rate", "throughput", "latency",
        "antidep_collected", "vas_inspected", "ro_read_gap",
        "stale_read_fraction", "read_stalls", "read_stall_time",
    ):
        assert key in summary, key


def test_zero_rates_without_samples():
    sim = Simulator()
    metrics = MetricsRecorder(sim)
    assert metrics.abort_rate == 0.0
    assert metrics.stale_read_fraction == 0.0
    assert metrics.throughput() == 0.0
