"""Unit tests for reservoir sampling and percentile reporting."""

import pytest

from repro.metrics import ReservoirSample


def test_small_streams_kept_exactly():
    sample = ReservoirSample(capacity=100)
    for value in range(10):
        sample.add(float(value))
    assert sample.seen == 10
    assert sample.percentile(0.0) == 0.0
    assert sample.percentile(1.0) == 9.0
    assert sample.percentile(0.5) == 5.0


def test_percentiles_on_large_stream_are_close():
    sample = ReservoirSample(capacity=512, seed=3)
    for value in range(10_000):
        sample.add(float(value))
    assert sample.seen == 10_000
    p50 = sample.percentile(0.5)
    p99 = sample.percentile(0.99)
    assert 4000 < p50 < 6000
    assert p99 > 9000


def test_empty_sample_reports_zero():
    sample = ReservoirSample()
    assert sample.percentile(0.5) == 0.0
    assert sample.as_dict() == {"seen": 0, "p50": 0.0, "p95": 0.0, "p99": 0.0}


def test_invalid_arguments():
    with pytest.raises(ValueError):
        ReservoirSample(capacity=0)
    with pytest.raises(ValueError):
        ReservoirSample().percentile(1.5)


def test_deterministic_given_seed():
    def collect(seed):
        sample = ReservoirSample(capacity=16, seed=seed)
        for value in range(1000):
            sample.add(float(value))
        return sample.as_dict()

    assert collect(5) == collect(5)


def test_as_dict_shape():
    sample = ReservoirSample()
    sample.add(1.0)
    d = sample.as_dict()
    assert set(d) == {"seen", "p50", "p95", "p99"}
    assert d["seen"] == 1
