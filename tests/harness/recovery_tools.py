"""Crash-point tooling for the deterministic recovery test suite.

The simulator's tracer fires listeners synchronously at the emitting
node's exact protocol point, so a test can inject a fault *between* two
protocol steps -- e.g. after a coordinator's Decide/Propagate fan-out
but before the victim applies its Propagate -- with zero timing
guesswork.  The same seed reaches the same protocol point at the same
virtual instant, so every crash scenario is exactly reproducible.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.faults.schedules import CRASH_DURABLE, RESTART, FaultEvent
from repro.storage.wal import store_fingerprint


class TracePoint:
    """A one-shot action fired at the n-th matching trace emit.

    Matching is by trace ``kind`` plus optional emitting ``node`` and
    ``txn`` detail.  The tracer only notifies listeners for *enabled*
    kinds (hot protocol paths skip disabled emits entirely), so the
    hooked kind is enabled here on the caller's behalf.
    """

    def __init__(
        self,
        cluster,
        kind: str,
        action: Callable,
        *,
        node: Optional[int] = None,
        txn: Optional[int] = None,
        count: int = 1,
    ) -> None:
        if count < 1:
            raise ValueError("count must be >= 1")
        self.cluster = cluster
        self.kind = kind
        self.action = action
        self.node = node
        self.txn = txn
        self.remaining = count
        self.fired_at: Optional[float] = None
        self.record = None
        cluster.tracer.enable(kind)
        cluster.tracer.add_listener(self._on_record)

    @property
    def fired(self) -> bool:
        return self.fired_at is not None

    def _on_record(self, record) -> None:
        if record.event != self.kind:
            return
        if self.node is not None and record.node != self.node:
            return
        if self.txn is not None and record.details.get("txn") != self.txn:
            return
        self.remaining -= 1
        if self.remaining:
            return
        self.cancel()
        self.fired_at = self.cluster.sim.now
        self.record = record
        self.action(record)

    def cancel(self) -> None:
        """Detach the listener (idempotent)."""
        try:
            self.cluster.tracer.remove_listener(self._on_record)
        except ValueError:
            pass


def crash_at(
    cluster,
    nemesis,
    victim: int,
    kind: str,
    *,
    node: Optional[int] = None,
    txn: Optional[int] = None,
    count: int = 1,
) -> TracePoint:
    """Durably crash ``victim`` at the n-th matching protocol point.

    The crash applies at the emit instant, so any message already sent
    to the victim but not yet delivered is destroyed (in-flight traffic
    drops at delivery time), and the victim's WAL freezes there.
    """

    def action(_record) -> None:
        nemesis.apply(FaultEvent(cluster.sim.now, CRASH_DURABLE, victim))

    return TracePoint(cluster, kind, action, node=node, txn=txn, count=count)


def restart(cluster, nemesis, victim: int):
    """Restart ``victim`` now; returns its closed :class:`DownWindow`.

    For a durable crash the window carries the drop accounting and the
    spawned recovery process; run the cluster to quiescence afterwards
    to let recovery finish.
    """
    nemesis.apply(FaultEvent(cluster.sim.now, RESTART, victim))
    for window in reversed(nemesis.down_windows):
        if window.node == victim:
            return window
    return None


def node_fingerprint(protocol_node):
    """A comparable digest of one node's durable state.

    Captures the full version-chain contents, the ``siteVC``, and the
    next coordinator sequence number -- the exact state a recovered node
    must rebuild bit-identically to a never-crashed control.
    """
    return (
        store_fingerprint(protocol_node.store),
        protocol_node.site_vc.to_tuple(),
        protocol_node.curr_seq_no,
    )


def assert_no_lost_commits(cluster, committed_writes) -> None:
    """Every acknowledged write is installed at its key's preferred site.

    ``committed_writes`` maps txn_id -> keys whose commit the *client*
    observed; clients must record this themselves because the finalized
    history reconstructs write vids *from* the surviving stores -- a
    write a site silently dropped would simply be absent there, which is
    exactly the presumed-abort bug this assertion exists to catch.

    Requires ``gc_enabled=False``: the scan matches versions by their
    ``writer_txn`` stamp, so every version must survive the run.
    """
    missing = []
    for txn_id, keys in sorted(committed_writes.items()):
        for key in keys:
            node = cluster.nodes[cluster.directory.site(key)]
            chain = node.store.chain(key) if key in node.store else ()
            if not any(v.writer_txn == txn_id for v in chain):
                missing.append((txn_id, key))
    assert not missing, (
        f"{len(missing)} committed write(s) absent from their preferred "
        f"site: {missing[:5]}"
    )
