"""Tests for the command-line interface."""

import pytest

from repro.cli import FIGURES, build_parser, main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in FIGURES:
        assert name in out


def test_parser_rejects_unknown_figure():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["figure99"])


def test_config_command_round_trips_through_json(capsys, tmp_path):
    import json

    from repro import ClusterConfig

    assert main(["config", "--nodes", "8"]) == 0
    dumped = capsys.readouterr().out
    assert ClusterConfig.from_dict(json.loads(dumped)) == ClusterConfig(
        num_nodes=8
    )

    # A partial overlay file loads against defaults and echoes normalised.
    overlay = tmp_path / "cluster.json"
    overlay.write_text(
        '{"num_nodes": 3, "healing": {"anti_entropy_interval": 0.0004}}'
    )
    assert main(["config", "--load", str(overlay)]) == 0
    echoed = json.loads(capsys.readouterr().out)
    assert echoed["num_nodes"] == 3
    assert echoed["healing"]["anti_entropy_interval"] == 0.0004
    assert "snapshot" in echoed["healing"]  # defaults filled in

    bad = tmp_path / "bad.json"
    bad.write_text('{"num_nodes": 3, "num_shards": 7}')
    with pytest.raises(ValueError, match="unknown keys"):
        main(["config", "--load", str(bad)])


def test_config_command_covers_replication(capsys, tmp_path):
    import json

    from repro import ClusterConfig, ReplicationConfig

    # The default dump includes the (inert) replication section.
    assert main(["config", "--nodes", "4"]) == 0
    dumped = json.loads(capsys.readouterr().out)
    assert dumped["replication"] == ReplicationConfig().to_dict()
    assert dumped["replication"]["enabled"] is False

    # A replication overlay loads, validates, and echoes normalised.
    overlay = tmp_path / "replicated.json"
    overlay.write_text(
        '{"num_nodes": 3, "sharding": {"enabled": true},'
        ' "replication": {"enabled": true, "replication_factor": 3,'
        ' "mode": "async", "failover_timeout": 0.004}}'
    )
    assert main(["config", "--load", str(overlay)]) == 0
    echoed = json.loads(capsys.readouterr().out)
    assert echoed["replication"]["replication_factor"] == 3
    assert echoed["replication"]["mode"] == "async"
    assert ClusterConfig.from_dict(echoed).replication.failover_timeout == 0.004

    # Validation still bites through the CLI path.
    bad = tmp_path / "bad_mode.json"
    bad.write_text('{"num_nodes": 3, "replication": {"mode": "quorum"}}')
    with pytest.raises(ValueError, match="sync"):
        main(["config", "--load", str(bad)])


def test_figure5_tiny_run(capsys):
    code = main(
        [
            "figure5",
            "--nodes", "2",
            "--keys", "500",
            "--ro", "0.5",
            "--duration", "0.004",
            "--warmup", "0.001",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "figure5" in out
    assert "fwkv" in out and "walter" in out and "2pc" in out


def test_figure6_tiny_run(capsys):
    code = main(
        [
            "figure6",
            "--nodes", "2",
            "--keys", "500",
            "--ro", "0.5",
            "--duration", "0.004",
            "--warmup", "0.001",
        ]
    )
    assert code == 0
    assert "mean_antidep" in capsys.readouterr().out


def test_figure8_tiny_run_routes_warehouses(capsys):
    code = main(
        [
            "figure8",
            "--nodes", "2",
            "--warehouses", "1",
            "--ro", "0.5",
            "--duration", "0.006",
            "--warmup", "0.001",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "w_per_node" in out
    assert "fwkv" in out and "walter" in out


def test_chart_flag_prints_bars(capsys):
    code = main(
        [
            "figure5",
            "--nodes", "2",
            "--keys", "400",
            "--ro", "0.5",
            "--duration", "0.003",
            "--warmup", "0.001",
            "--chart",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "|#" in out, "chart bars expected"


def test_figure9a_tiny_run(capsys):
    code = main(
        [
            "figure9a",
            "--nodes", "2",
            "--warehouses", "1",
            "--ro", "0.3",
            "--duration", "0.01",
            "--warmup", "0.002",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "abort_rate" in out
