"""Tests for the command-line interface."""

import pytest

from repro.cli import FIGURES, build_parser, main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in FIGURES:
        assert name in out


def test_parser_rejects_unknown_figure():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["figure99"])


def test_figure5_tiny_run(capsys):
    code = main(
        [
            "figure5",
            "--nodes", "2",
            "--keys", "500",
            "--ro", "0.5",
            "--duration", "0.004",
            "--warmup", "0.001",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "figure5" in out
    assert "fwkv" in out and "walter" in out and "2pc" in out


def test_figure6_tiny_run(capsys):
    code = main(
        [
            "figure6",
            "--nodes", "2",
            "--keys", "500",
            "--ro", "0.5",
            "--duration", "0.004",
            "--warmup", "0.001",
        ]
    )
    assert code == 0
    assert "mean_antidep" in capsys.readouterr().out


def test_figure8_tiny_run_routes_warehouses(capsys):
    code = main(
        [
            "figure8",
            "--nodes", "2",
            "--warehouses", "1",
            "--ro", "0.5",
            "--duration", "0.006",
            "--warmup", "0.001",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "w_per_node" in out
    assert "fwkv" in out and "walter" in out


def test_chart_flag_prints_bars(capsys):
    code = main(
        [
            "figure5",
            "--nodes", "2",
            "--keys", "400",
            "--ro", "0.5",
            "--duration", "0.003",
            "--warmup", "0.001",
            "--chart",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "|#" in out, "chart bars expected"


def test_figure9a_tiny_run(capsys):
    code = main(
        [
            "figure9a",
            "--nodes", "2",
            "--warehouses", "1",
            "--ro", "0.3",
            "--duration", "0.01",
            "--warmup", "0.002",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "abort_rate" in out
