"""Tests for multi-trial averaging (the paper averages 5 trials)."""

import pytest

from repro.config import RunConfig
from repro.harness.experiments import (
    average_trials,
    figure5_ycsb_throughput,
    run_trials,
)

MICRO_RUN = RunConfig(duration=0.004, warmup=0.001)


def test_average_trials_means_numeric_fields():
    grids = [
        [{"figure": "5a", "protocol": "fwkv", "nodes": 2, "throughput_ktps": 10.0}],
        [{"figure": "5a", "protocol": "fwkv", "nodes": 2, "throughput_ktps": 20.0}],
    ]
    averaged = average_trials(grids)
    assert averaged[0]["throughput_ktps"] == pytest.approx(15.0)
    assert averaged[0]["trials"] == 2
    assert averaged[0]["protocol"] == "fwkv"
    assert averaged[0]["nodes"] == 2  # identity field untouched


def test_average_trials_single_trial_passthrough():
    grid = [[{"figure": "5a", "protocol": "fwkv", "throughput_ktps": 10.0}]]
    assert average_trials(grid) is grid[0]


def test_average_trials_detects_grid_divergence():
    grids = [
        [{"figure": "5a", "protocol": "fwkv", "throughput_ktps": 10.0}],
        [{"figure": "5a", "protocol": "walter", "throughput_ktps": 20.0}],
    ]
    with pytest.raises(AssertionError, match="diverged"):
        average_trials(grids)


def test_run_trials_end_to_end():
    rows = run_trials(
        figure5_ycsb_throughput,
        trials=2,
        seed=1,
        nodes=(2,),
        key_counts=(300,),
        ro_fracs=(0.5,),
        protocols=("fwkv",),
        run=MICRO_RUN,
    )
    assert len(rows) == 1
    assert rows[0]["trials"] == 2
    assert rows[0]["throughput_ktps"] > 0


def test_run_trials_validates_count():
    with pytest.raises(ValueError):
        run_trials(figure5_ycsb_throughput, trials=0, seed=1)
