"""Smoke tests for every figure's experiment function (micro scale)."""

import pytest

from repro.config import RunConfig
from repro.harness import experiments
from repro.workloads.tpcc import TPCCConfig

MICRO_RUN = RunConfig(duration=0.004, warmup=0.001)
MICRO_TPCC = TPCCConfig(
    num_warehouses=1,
    districts_per_warehouse=2,
    customers_per_district=8,
    num_items=30,
    initial_orders_per_district=2,
    min_order_lines=2,
    max_order_lines=3,
    stock_level_orders=2,
)


def test_figure5_row_schema():
    rows = experiments.figure5_ycsb_throughput(
        nodes=(2,), key_counts=(300,), ro_fracs=(0.5,), run=MICRO_RUN
    )
    assert len(rows) == 3  # one per protocol
    for row in rows:
        assert set(row) >= {"figure", "ro", "keys", "nodes", "protocol",
                            "throughput_ktps", "abort_rate"}
        assert row["throughput_ktps"] > 0


def test_figure6_row_schema():
    rows = experiments.figure6_antidep(
        ro_fracs=(0.5,), key_counts=(300,), num_nodes=2, run=MICRO_RUN
    )
    assert len(rows) == 1
    assert rows[0]["samples"] > 0
    assert rows[0]["mean_antidep"] >= 0


def test_figure7_rows_cover_both_protocols():
    rows = experiments.figure7_ycsb_abort_delay(
        key_counts=(300,), ro_fracs=(0.5,), num_nodes=2, run=MICRO_RUN
    )
    assert {row["protocol"] for row in rows} == {"fwkv", "walter"}
    assert all(row["delayed"] for row in rows)


def test_figure7_can_include_undelayed_baseline():
    rows = experiments.figure7_ycsb_abort_delay(
        key_counts=(300,), ro_fracs=(0.5,), num_nodes=2, run=MICRO_RUN,
        include_undelayed=True,
    )
    assert {row["delayed"] for row in rows} == {True, False}


def test_figure8_row_schema():
    rows = experiments.figure8_tpcc_throughput(
        nodes=(2,), warehouses_per_node=(1,), ro_fracs=(0.5,),
        run=MICRO_RUN, tpcc_sizing=MICRO_TPCC,
    )
    assert len(rows) == 3
    for row in rows:
        assert row["w_per_node"] == 1
        assert row["throughput_ktps"] > 0


def test_figure9a_row_schema():
    rows = experiments.figure9a_tpcc_abort_delay(
        warehouses_per_node=(1,), num_nodes=2, run=MICRO_RUN,
        tpcc_sizing=MICRO_TPCC,
    )
    assert {row["protocol"] for row in rows} == {"fwkv", "walter"}


def test_figure9b_computes_slowdown():
    rows = experiments.figure9b_slowdown(
        warehouses_per_node=(1,), num_nodes=2, ro_fracs=(0.5,),
        run=MICRO_RUN, tpcc_sizing=MICRO_TPCC,
    )
    assert len(rows) == 1
    row = rows[0]
    expected = 100.0 * (row["walter_ktps"] - row["fwkv_ktps"]) / row["walter_ktps"]
    assert row["slowdown_pct"] == pytest.approx(expected)
