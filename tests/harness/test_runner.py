"""Integration tests for the experiment harness."""

import pytest

from repro import ClusterConfig, RunConfig
from repro.harness import run_experiment
from repro.harness.report import format_table, group_series, relative_gap
from repro.workloads import YCSBConfig, YCSBWorkload


def small_run(protocol="fwkv", seed=1, **cluster_kwargs):
    workload = YCSBWorkload(YCSBConfig(num_keys=500, read_only_fraction=0.5))
    return run_experiment(
        protocol,
        workload,
        ClusterConfig(num_nodes=3, clients_per_node=2, seed=seed, **cluster_kwargs),
        RunConfig(duration=0.01, warmup=0.003),
        params={"tag": "unit"},
    )


def test_runner_produces_commits_and_metrics():
    result = small_run()
    assert result.protocol == "fwkv"
    assert result.workload == "ycsb"
    assert result.params == {"tag": "unit"}
    assert result.metrics["commits"] > 10
    assert result.throughput_ktps > 0
    assert 0.0 <= result.abort_rate < 1.0
    assert result.wall_seconds > 0


def test_runner_is_deterministic():
    first = small_run(seed=9)
    second = small_run(seed=9)
    assert first.metrics["commits"] == second.metrics["commits"]
    assert first.metrics["aborts"] == second.metrics["aborts"]


def test_different_seeds_differ():
    # Not guaranteed in principle, but overwhelmingly likely.
    a = small_run(seed=1).metrics["commits"]
    b = small_run(seed=2).metrics["commits"]
    c = small_run(seed=3).metrics["commits"]
    assert len({a, b, c}) > 1


def test_measurement_window_excludes_warmup():
    workload = YCSBWorkload(YCSBConfig(num_keys=500))
    result = run_experiment(
        "fwkv",
        workload,
        ClusterConfig(num_nodes=2, clients_per_node=1, seed=4),
        RunConfig(duration=0.004, warmup=0.004),
    )
    # Roughly half the executed transactions fall inside the window.
    window = result.cluster.metrics
    assert window.window_start == pytest.approx(0.004)
    assert result.metrics["commits"] > 0


def test_all_protocols_run_under_harness():
    for protocol in ("fwkv", "walter", "2pc"):
        result = small_run(protocol=protocol)
        assert result.metrics["commits"] > 0, protocol


def test_max_retries_caps_attempts():
    """With max_retries=0 a client gives up after the first abort."""
    workload = YCSBWorkload(YCSBConfig(num_keys=4, read_only_fraction=0.0))
    result = run_experiment(
        "fwkv",
        workload,
        ClusterConfig(num_nodes=2, clients_per_node=3, seed=5),
        RunConfig(duration=0.01, warmup=0.0, max_retries=0),
    )
    # Tiny key space forces conflicts; attempts per commit stay at 1.
    assert result.metrics["aborts"] > 0
    assert result.metrics["commits"] > 0
    assert result.metrics["latency"]["count"] == result.metrics["commits"]


def test_cpu_utilization_reported():
    result = small_run()
    util = result.metrics["mean_cpu_utilization"]
    assert 0.0 < util < 1.0


def test_format_table_alignment():
    rows = [
        {"a": 1, "b": 2.34567, "c": "xy"},
        {"a": 10, "b": 0.5, "c": "z"},
    ]
    text = format_table(rows, ["a", "b", "c"], title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "a" in lines[1] and "b" in lines[1]
    assert "2.346" in text
    assert format_table([], ["a"]) == "(no rows)"


def test_group_series_sorts_by_x():
    rows = [
        {"x": 2, "y": 20, "p": "w"},
        {"x": 1, "y": 10, "p": "w"},
        {"x": 1, "y": 5, "p": "f"},
    ]
    series = group_series(rows, "x", "y", group=lambda r: r["p"])
    assert series == {"w": [(1, 10), (2, 20)], "f": [(1, 5)]}


def test_ascii_chart_scales_bars_to_peak():
    from repro.harness import ascii_chart

    series = {
        "walter": [(5, 100.0), (10, 200.0)],
        "2pc": [(5, 50.0)],
    }
    chart = ascii_chart(series, width=10, title="T")
    lines = chart.splitlines()
    assert lines[0] == "T"
    bars = {line.split()[0] + line.split()[1]: line.count("#") for line in lines[1:]}
    assert bars["walter10"] == 10  # peak fills the width
    assert bars["walter5"] == 5
    assert bars["2pc5"] == 2  # round(50/200 * 10), banker's rounding


def test_ascii_chart_empty():
    from repro.harness import ascii_chart

    assert "(no data)" in ascii_chart({})


def test_relative_gap():
    assert relative_gap(100, 80) == pytest.approx(0.2)
    assert relative_gap(100, 120) == 0.0
    assert relative_gap(0, 10) == 0.0
