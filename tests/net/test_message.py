"""Unit tests for message envelopes and the protocol vocabulary."""

from repro.net.message import Envelope, MessageType


def test_envelope_latency():
    env = Envelope("Ping", 0, 1, None, send_time=1.0, deliver_time=1.5)
    assert env.latency == 0.5


def test_background_channel_membership():
    assert MessageType.PROPAGATE in MessageType.BACKGROUND
    assert MessageType.REMOVE in MessageType.BACKGROUND
    for foreground in (
        MessageType.READ_REQUEST,
        MessageType.PREPARE,
        MessageType.VOTE,
        MessageType.DECIDE,
        MessageType.RPC_REPLY,
    ):
        assert foreground not in MessageType.BACKGROUND


def test_envelope_repr_mentions_route():
    env = Envelope("Decide", 2, 5, None, send_time=0.0, deliver_time=0.0)
    assert "Decide" in repr(env)
    assert "2->5" in repr(env)
