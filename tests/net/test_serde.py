"""Fuzz tests for the canonical wire serde.

Every registered wire message class gets a Hypothesis strategy derived
from its field type hints, and the suite asserts the serde's two core
contracts over them:

* **round trip**: ``decode(encode(msg)) == msg`` with types preserved;
* **canonical**: ``encode(decode(b)) == b`` -- one value, one encoding
  (dict entries and set elements are sorted by encoded bytes).

Plus targeted coverage for the formats the protocols lean on hardest
(dynamic-width vector clocks, dropped-origin frozensets), the framing
layer under arbitrary chunking, and the failure modes (unknown tags,
truncation, version mismatch, unregistered payload types).
"""

import dataclasses
import struct
import typing

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import wire
from repro.net.message import Envelope
from repro.net.serde import (
    MAX_FRAME_BYTES,
    REGISTRY,
    WIRE_VERSION,
    FrameDecoder,
    WireDecodeError,
    WireEncodeError,
    decode_envelope,
    decode_value,
    encode_envelope,
    encode_frame,
    encode_value,
)

# ----------------------------------------------------------------------
# Strategies derived from the wire classes' type hints
# ----------------------------------------------------------------------

#: Keys travel as Hashable; protocols use strings and ints.
keys_st = st.one_of(
    st.text(max_size=8),
    st.integers(-(10**6), 10**6),
    st.tuples(st.text(max_size=4), st.integers(0, 99)),
)

#: Opaque stored values (``object``-typed fields).
values_st = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(-(2**70), 2**70),
    st.floats(allow_nan=False),
    st.text(max_size=12),
    st.binary(max_size=12),
    st.tuples(st.integers(), st.text(max_size=4)),
)


def resolve(hint):
    """A Hypothesis strategy generating values of the given type hint."""
    if hint is int:
        return st.integers(-(2**48), 2**48)
    if hint is bool:
        return st.booleans()
    if hint is float:
        return st.floats(allow_nan=False)
    if hint is str:
        return st.text(max_size=12)
    if hint is typing.Any or hint is object:
        return values_st
    if hint is typing.Hashable:
        return keys_st
    if dataclasses.is_dataclass(hint):
        return message_strategy(hint)
    origin = typing.get_origin(hint)
    args = typing.get_args(hint)
    if origin is tuple:
        if not args:  # bare Tuple: opaque payload rows
            return st.lists(values_st, max_size=3).map(tuple)
        if len(args) == 2 and args[1] is Ellipsis:
            return st.lists(resolve(args[0]), max_size=5).map(tuple)
        return st.tuples(*(resolve(arg) for arg in args))
    if origin is typing.Union:  # Optional[X] and friends
        return st.one_of(
            *(
                st.none() if arg is type(None) else resolve(arg)
                for arg in args
            )
        )
    if origin is dict:
        return st.dictionaries(resolve(args[0]), resolve(args[1]), max_size=4)
    if origin is frozenset:
        return st.frozensets(resolve(args[0]), max_size=5)
    raise NotImplementedError(f"no strategy for field type {hint!r}")


def message_strategy(cls):
    hints = typing.get_type_hints(cls)
    return st.builds(
        cls,
        **{
            field.name: resolve(hints[field.name])
            for field in dataclasses.fields(cls)
        },
    )


WIRE_CLASSES = sorted(REGISTRY.items())


# ----------------------------------------------------------------------
# The two core contracts, over every registered message class
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "cls", [cls for _code, cls in WIRE_CLASSES],
    ids=[cls.__name__ for _code, cls in WIRE_CLASSES],
)
@settings(max_examples=40, deadline=None)
@given(data=st.data())
def test_every_wire_message_round_trips(cls, data):
    message = data.draw(message_strategy(cls))
    encoded = encode_value(message)
    decoded = decode_value(encoded)
    assert decoded == message
    assert type(decoded) is cls
    # Canonical: re-encoding the decoded message is byte-identical.
    assert encode_value(decoded) == encoded


@settings(max_examples=60, deadline=None)
@given(value=st.recursive(
    values_st,
    lambda inner: st.one_of(
        st.lists(inner, max_size=3),
        st.lists(inner, max_size=3).map(tuple),
        st.dictionaries(keys_st, inner, max_size=3),
        st.frozensets(st.one_of(st.integers(), st.text(max_size=4)), max_size=3),
    ),
    max_leaves=12,
))
def test_arbitrary_nested_values_round_trip(value):
    encoded = encode_value(value)
    decoded = decode_value(encoded)
    assert decoded == value
    assert type(decoded) is type(value)
    assert encode_value(decoded) == encoded


def test_registry_codes_are_stable_and_dense_enough():
    # Codes are append-only wire contract: catching an accidental
    # renumber is the whole point of pinning them here.
    assert REGISTRY[3] is wire.ReadRequestBody
    assert REGISTRY[5] is wire.PrepareBody
    assert REGISTRY[23] is wire.HeartbeatBody
    assert len(set(REGISTRY)) == len(REGISTRY)
    for cls in REGISTRY.values():
        assert dataclasses.is_dataclass(cls)


# ----------------------------------------------------------------------
# Vector clocks: dynamic width and dropped-origin sets
# ----------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(
    vc=st.lists(st.integers(0, 2**40), min_size=0, max_size=12).map(tuple),
    has_read=st.lists(st.booleans(), max_size=12).map(tuple),
)
def test_dynamic_width_vector_clocks_round_trip(vc, has_read):
    body = wire.ReadRequestBody(
        txn_id=7, is_read_only=False, key="k", vc=vc, has_read=has_read
    )
    assert decode_value(encode_value(body)) == body


@settings(max_examples=60, deadline=None)
@given(collected=st.frozensets(st.integers(0, 2**40), max_size=16))
def test_dropped_origin_sets_round_trip_canonically(collected):
    body = wire.DecideBody(
        txn_id=1, outcome=True, origin=0, seq_no=4,
        commit_vc=(1, 2), collected=collected,
    )
    encoded = encode_value(body)
    decoded = decode_value(encoded)
    assert decoded == body
    assert decoded.collected == collected
    assert isinstance(decoded.collected, frozenset)
    # Set elements are sorted by encoded bytes, so insertion order
    # cannot leak into the encoding.
    shuffled = wire.DecideBody(
        txn_id=1, outcome=True, origin=0, seq_no=4,
        commit_vc=(1, 2), collected=frozenset(sorted(collected, reverse=True)),
    )
    assert encode_value(shuffled) == encoded


def test_dict_encoding_is_insertion_order_independent():
    forward = wire.PrepareBody(
        txn_id=1, coordinator=0, writes={"a": 1, "b": 2}, vc=(0,),
    )
    backward = wire.PrepareBody(
        txn_id=1, coordinator=0, writes={"b": 2, "a": 1}, vc=(0,),
    )
    assert encode_value(forward) == encode_value(backward)


# ----------------------------------------------------------------------
# Envelopes and framing
# ----------------------------------------------------------------------
@settings(max_examples=40, deadline=None)
@given(data=st.data())
def test_envelope_round_trip(data):
    payload = data.draw(message_strategy(wire.ReadReturnBody))
    envelope = Envelope(
        msg_type="ReadReturn", src=data.draw(st.integers(0, 63)),
        dst=data.draw(st.integers(0, 63)), payload=payload,
        send_time=data.draw(st.floats(0, 1e6, allow_nan=False)),
        deliver_time=123.0, msg_id=data.draw(st.integers(0, 2**40)),
    )
    decoded = decode_envelope(encode_envelope(envelope))
    assert decoded.msg_type == envelope.msg_type
    assert decoded.src == envelope.src
    assert decoded.dst == envelope.dst
    assert decoded.payload == payload
    assert decoded.send_time == envelope.send_time
    assert decoded.msg_id == envelope.msg_id
    # Delivery is stamped by the receiving transport, never carried.
    assert decoded.deliver_time == 0.0


@settings(max_examples=30, deadline=None)
@given(
    chunk_sizes=st.lists(st.integers(1, 17), min_size=1, max_size=40),
    count=st.integers(1, 6),
)
def test_frame_decoder_handles_arbitrary_chunking(chunk_sizes, count):
    envelopes = [
        Envelope("Heartbeat", 0, 1, wire.HeartbeatBody(site_vc=(i,)), 0.0, 0.0, i)
        for i in range(count)
    ]
    stream = b"".join(encode_frame(e) for e in envelopes)
    decoder = FrameDecoder()
    frames = []
    pos = 0
    sizes = iter(chunk_sizes)
    while pos < len(stream):
        size = next(sizes, 17)
        frames.extend(decoder.feed(stream[pos:pos + size]))
        pos += size
    assert [decode_envelope(f).payload.site_vc for f in frames] == [
        (i,) for i in range(count)
    ]
    assert decoder.pending_bytes == 0


# ----------------------------------------------------------------------
# Failure modes
# ----------------------------------------------------------------------
def test_unregistered_payload_type_raises_encode_error():
    class NotOnTheWire:
        pass

    with pytest.raises(WireEncodeError):
        encode_value(NotOnTheWire())
    with pytest.raises(WireEncodeError):
        encode_value(wire.HeartbeatBody(site_vc=(NotOnTheWire(),)))


def test_unknown_tag_and_truncation_raise_decode_error():
    with pytest.raises(WireDecodeError):
        decode_value(b"\xfe")
    encoded = encode_value(wire.HeartbeatBody(site_vc=(1, 2, 3)))
    for cut in range(len(encoded)):
        with pytest.raises(WireDecodeError):
            decode_value(encoded[:cut])
    with pytest.raises(WireDecodeError):
        decode_value(encoded + b"\x00")  # trailing garbage


def test_version_mismatch_is_refused():
    envelope = Envelope("Heartbeat", 0, 1, wire.HeartbeatBody((1,)), 0.0, 0.0, 0)
    data = encode_envelope(envelope)
    assert data[0] == WIRE_VERSION
    with pytest.raises(WireDecodeError):
        decode_envelope(bytes([WIRE_VERSION + 1]) + data[1:])


def test_oversized_frame_length_poisons_the_stream():
    decoder = FrameDecoder()
    with pytest.raises(WireDecodeError):
        decoder.feed(struct.pack(">I", MAX_FRAME_BYTES + 1) + b"x")
