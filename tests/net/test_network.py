"""Unit tests for the simulated network fabric."""

import pytest

from repro.config import NetworkConfig
from repro.net import Network
from repro.net.message import MessageType
from repro.sim import Simulator


def make_network(sim, **kwargs):
    config = NetworkConfig(jitter=0.0, **kwargs)
    net = Network(sim, config)
    return net


def test_delivery_after_base_latency():
    sim = Simulator()
    net = make_network(sim, base_latency=20e-6)
    received = []
    net.register(0, lambda env: None)
    net.register(1, lambda env: received.append((sim.now, env.payload)))
    net.send(0, 1, "Ping", "hello")
    sim.run()
    assert received == [(pytest.approx(20e-6), "hello")]


def test_self_messages_use_loopback_latency():
    sim = Simulator()
    net = make_network(sim, base_latency=20e-6, self_latency=1e-6)
    received = []
    net.register(0, lambda env: received.append(sim.now))
    net.send(0, 0, "Ping", None)
    sim.run()
    assert received == [pytest.approx(1e-6)]


def test_unknown_destination_degrades_to_drop():
    # Consistent with the crash path: a retry against a node that was
    # never registered (or has been removed) must not crash the sender.
    sim = Simulator()
    net = make_network(sim)
    net.register(0, lambda env: None)
    envelope = net.send(0, 5, "Ping", None)
    sim.run()
    assert envelope.msg_type == "Ping"
    assert net.stats.messages_dropped == 1
    assert net.stats.drops_by_reason["unknown_dst"] == 1


def test_duplicate_registration_rejected():
    sim = Simulator()
    net = make_network(sim)
    net.register(0, lambda env: None)
    with pytest.raises(ValueError):
        net.register(0, lambda env: None)


def test_fifo_order_per_pair():
    sim = Simulator()
    net = make_network(sim, base_latency=10e-6)
    received = []
    net.register(0, lambda env: None)
    net.register(1, lambda env: received.append(env.payload))
    for i in range(5):
        net.send(0, 1, "Seq", i)
    sim.run()
    assert received == [0, 1, 2, 3, 4]


def test_jitter_is_deterministic_per_seed():
    def run(seed):
        sim = Simulator()
        net = Network(sim, NetworkConfig(jitter=10e-6), seed=seed)
        times = []
        net.register(0, lambda env: None)
        net.register(1, lambda env: times.append(sim.now))
        for _ in range(3):
            net.send(0, 1, "Ping", None)
        sim.run()
        return times

    assert run(1) == run(1)
    assert run(1) != run(2)


def test_message_delay_injection_only_affects_that_type():
    sim = Simulator()
    config = NetworkConfig(
        base_latency=20e-6, jitter=0.0, message_delays={"Propagate": 1e-3}
    )
    net = Network(sim, config)
    received = []
    net.register(0, lambda env: None)
    net.register(1, lambda env: received.append((env.msg_type, sim.now)))
    net.send(0, 1, MessageType.PROPAGATE, None)
    net.send(0, 1, "Decide", None)
    sim.run()
    # Decide is foreground; the delayed Propagate is background and must
    # not hold it up.
    assert received[0] == ("Decide", pytest.approx(20e-6))
    assert received[1] == ("Propagate", pytest.approx(1e-3 + 20e-6))


def test_background_channel_keeps_fifo_within_itself():
    sim = Simulator()
    net = make_network(sim, base_latency=10e-6)
    received = []
    net.register(0, lambda env: None)
    net.register(1, lambda env: received.append(env.payload))
    net.send(0, 1, MessageType.PROPAGATE, "p1")
    net.send(0, 1, MessageType.PROPAGATE, "p2")
    sim.run()
    assert received == ["p1", "p2"]


def test_stats_count_messages_by_type():
    sim = Simulator()
    net = make_network(sim)
    net.register(0, lambda env: None)
    net.register(1, lambda env: None)
    net.send(0, 1, "A", None)
    net.send(0, 1, "A", None)
    net.send(1, 0, "B", None)
    sim.run()
    assert net.stats.messages_sent == 3
    assert net.stats.messages_by_type == {"A": 2, "B": 1}
