"""Unit tests for RPC request/reply matching over the simulated network."""

import pytest

from repro.cluster import Node
from repro.config import NetworkConfig, RpcConfig
from repro.net import Network, RpcTimeoutError
from repro.sim import Simulator


def build_pair(rpc=None, seed=0):
    sim = Simulator()
    net = Network(sim, NetworkConfig(jitter=0.0, rpc=rpc or RpcConfig()), seed=seed)
    client = Node(sim, 0, net)
    server = Node(sim, 1, net)
    return sim, client, server


def test_request_reply_round_trip():
    sim, client, server = build_pair()

    def handle(envelope):
        body = server.rpc.body_of(envelope)
        server.rpc.reply(envelope, body * 2)

    server.on("Echo", handle)

    def proc():
        result = yield client.rpc.request(1, "Echo", 21)
        return result

    assert sim.run_process(proc()) == 42
    assert client.rpc.pending_count == 0


def test_concurrent_requests_match_correct_replies():
    sim, client, server = build_pair()

    def handle(envelope):
        body = server.rpc.body_of(envelope)

        def delayed():
            # Later requests answer sooner, exercising id matching.
            yield sim.timeout((10 - body) * 1e-6)
            server.rpc.reply(envelope, f"reply-{body}")

        sim.spawn(delayed())

    server.on("Slow", handle)

    def proc():
        first = client.rpc.request(1, "Slow", 1)
        second = client.rpc.request(1, "Slow", 2)
        a = yield first
        b = yield second
        return a, b

    assert sim.run_process(proc()) == ("reply-1", "reply-2")


def test_generator_handler_is_spawned():
    sim, client, server = build_pair()

    def handle(envelope):
        yield sim.timeout(5e-6)
        server.rpc.reply(envelope, "done")

    server.on("Work", handle)

    def proc():
        result = yield client.rpc.request(1, "Work", None)
        return result, sim.now

    result, finished = sim.run_process(proc())
    assert result == "done"
    assert finished > 5e-6


def test_unhandled_message_type_raises():
    sim, client, server = build_pair()

    def proc():
        yield client.rpc.request(1, "Nope", None)

    with pytest.raises(Exception):
        sim.run_process(proc())


def test_duplicate_handler_registration_rejected():
    sim, client, server = build_pair()
    server.on("X", lambda env: None)
    with pytest.raises(ValueError):
        server.on("X", lambda env: None)


def test_reply_requires_rpc_envelope():
    sim, client, server = build_pair()
    received = []

    def handle(envelope):
        received.append(envelope)

    server.on("Fire", handle)
    client.send(1, "Fire", "payload")
    sim.run()
    assert len(received) == 1
    with pytest.raises(TypeError):
        server.rpc.reply(received[0], "oops")


# ----------------------------------------------------------------------
# Timeouts, retries, and backoff (RpcEndpoint.call)
# ----------------------------------------------------------------------
RETRY_CONFIG = RpcConfig(
    request_timeout=1e-3,
    max_attempts=3,
    backoff_base=100e-6,
    backoff_cap=400e-6,
)


def flaky_server(server, fail_first):
    """A handler that ignores the first ``fail_first`` requests."""
    calls = []

    def handle(envelope):
        calls.append(server.rpc.body_of(envelope))
        if len(calls) > fail_first:
            server.rpc.reply(envelope, "pong")

    server.on("Ping", handle)
    return calls


def test_call_without_timeout_is_single_attempt():
    sim, client, server = build_pair()
    calls = flaky_server(server, fail_first=0)

    def proc():
        reply = yield from client.rpc.call(1, "Ping", "hello")
        return reply

    assert sim.run_process(proc()) == "pong"
    assert calls == ["hello"]
    assert client.rpc.network.stats.rpc_timeouts == 0


def test_timed_out_request_is_retried_until_success():
    sim, client, server = build_pair(rpc=RETRY_CONFIG)
    calls = flaky_server(server, fail_first=2)

    def proc():
        reply = yield from client.rpc.call(1, "Ping", "hello")
        return reply, sim.now

    reply, finished = sim.run_process(proc())
    assert reply == "pong"
    assert len(calls) == 3
    # Two attempts timed out, two retries happened, the third succeeded;
    # total time covers two full timeouts plus backoff.
    stats = client.rpc.network.stats
    assert stats.rpc_timeouts == 2
    assert stats.rpc_retries == 2
    assert finished > 2 * RETRY_CONFIG.request_timeout
    assert client.rpc.pending_count == 0


def test_exhausted_retries_raise_rpc_timeout_error():
    sim, client, server = build_pair(rpc=RETRY_CONFIG)
    flaky_server(server, fail_first=10)

    def proc():
        try:
            yield from client.rpc.call(1, "Ping", "hello")
        except RpcTimeoutError as exc:
            return exc
        return None

    exc = sim.run_process(proc())
    assert isinstance(exc, RpcTimeoutError)
    assert exc.dst == 1
    assert exc.msg_type == "Ping"
    assert exc.attempts == RETRY_CONFIG.max_attempts
    stats = client.rpc.network.stats
    assert stats.rpc_timeouts == 3
    assert stats.rpc_retries == 2  # the last timeout gives up, not retries
    assert client.rpc.pending_count == 0


def test_call_settled_returns_flag_instead_of_raising():
    sim, client, server = build_pair(rpc=RETRY_CONFIG)
    flaky_server(server, fail_first=10)

    def proc():
        outcome = yield from client.rpc.call_settled(1, "Ping", "hello")
        return outcome

    assert sim.run_process(proc()) == (False, None)


def test_late_reply_after_timeout_is_dropped_as_stale():
    sim, client, server = build_pair(rpc=RETRY_CONFIG)

    def handle(envelope):
        # Reply well after the client's per-attempt deadline: each reply
        # races a retired request slot and must be dropped, not matched
        # (and certainly not KeyError-crash the dispatch loop).
        yield sim.timeout(5 * RETRY_CONFIG.request_timeout)
        server.rpc.reply(envelope, "too-late")

    server.on("Ping", handle)

    def proc():
        try:
            yield from client.rpc.call(1, "Ping", "hello")
        except RpcTimeoutError:
            return "timed-out"
        return "replied"

    assert sim.run_process(proc()) == "timed-out"
    sim.run()  # let the straggler replies arrive
    stats = client.rpc.network.stats
    assert stats.stale_replies == RETRY_CONFIG.max_attempts
    assert client.rpc.pending_count == 0


def retry_trace(seed):
    """(attempt times, outcome, finish time) of one flaky exchange."""
    sim, client, server = build_pair(rpc=RETRY_CONFIG, seed=seed)
    times = []

    def handle(envelope):
        times.append(sim.now)
        if len(times) > 2:
            server.rpc.reply(envelope, "pong")

    server.on("Ping", handle)

    def proc():
        reply = yield from client.rpc.call(1, "Ping", "hello")
        return reply

    result = sim.run_process(proc())
    return times, result, sim.now


def test_retry_backoff_is_seed_deterministic():
    first = retry_trace(seed=7)
    second = retry_trace(seed=7)
    assert first == second
    # Jitter is drawn from the seeded stream, so a different seed shifts
    # the retry schedule while leaving the outcome intact.
    other = retry_trace(seed=8)
    assert other[1] == first[1]
    assert other[0] != first[0]


# ----------------------------------------------------------------------
# Hard deadlines on bare requests (request(deadline=...))
# ----------------------------------------------------------------------
def test_bare_request_to_silent_peer_never_resolves():
    # The documented footnote: the reliable-channel primitive hangs
    # forever when nobody replies -- the deadline parameter exists
    # because of exactly this.
    sim, client, server = build_pair()
    server.on("Void", lambda envelope: None)
    event = client.rpc.request(1, "Void", None)
    sim.run()
    assert not event.triggered
    assert client.rpc.pending_count == 1


def test_request_deadline_fails_event_and_retires_slot():
    sim, client, server = build_pair()
    server.on("Void", lambda envelope: None)

    def proc():
        try:
            yield client.rpc.request(1, "Void", None, deadline=1e-3)
        except RpcTimeoutError as exc:
            return exc, sim.now
        return None, sim.now

    exc, finished = sim.run_process(proc())
    assert isinstance(exc, RpcTimeoutError)
    assert exc.dst == 1
    assert exc.msg_type == "Void"
    assert finished == pytest.approx(1e-3)
    assert client.rpc.pending_count == 0
    assert client.rpc.network.stats.rpc_timeouts == 1


def test_late_reply_after_request_deadline_is_stale():
    sim, client, server = build_pair()

    def handle(envelope):
        yield sim.timeout(5e-3)
        server.rpc.reply(envelope, "too-late")

    server.on("Slow", handle)

    def proc():
        try:
            yield client.rpc.request(1, "Slow", None, deadline=1e-3)
        except RpcTimeoutError:
            return "timed-out"
        return "replied"

    assert sim.run_process(proc()) == "timed-out"
    sim.run()
    assert client.rpc.network.stats.stale_replies == 1
    assert client.rpc.pending_count == 0


def test_reply_within_deadline_cancels_the_timer():
    sim, client, server = build_pair()

    def handle(envelope):
        server.rpc.reply(envelope, "pong")

    server.on("Ping", handle)

    def proc():
        reply = yield client.rpc.request(1, "Ping", None, deadline=1.0)
        return reply

    assert sim.run_process(proc()) == "pong"
    # The deadline timer must not linger: quiescence is reached at the
    # reply, not a virtual second later.
    assert sim.now < 1.0
    assert client.rpc.network.stats.rpc_timeouts == 0
    assert client.rpc.pending_count == 0
