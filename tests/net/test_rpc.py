"""Unit tests for RPC request/reply matching over the simulated network."""

import pytest

from repro.cluster import Node
from repro.config import NetworkConfig
from repro.net import Network
from repro.sim import Simulator


def build_pair():
    sim = Simulator()
    net = Network(sim, NetworkConfig(jitter=0.0))
    client = Node(sim, 0, net)
    server = Node(sim, 1, net)
    return sim, client, server


def test_request_reply_round_trip():
    sim, client, server = build_pair()

    def handle(envelope):
        body = server.rpc.body_of(envelope)
        server.rpc.reply(envelope, body * 2)

    server.on("Echo", handle)

    def proc():
        result = yield client.rpc.request(1, "Echo", 21)
        return result

    assert sim.run_process(proc()) == 42
    assert client.rpc.pending_count == 0


def test_concurrent_requests_match_correct_replies():
    sim, client, server = build_pair()

    def handle(envelope):
        body = server.rpc.body_of(envelope)

        def delayed():
            # Later requests answer sooner, exercising id matching.
            yield sim.timeout((10 - body) * 1e-6)
            server.rpc.reply(envelope, f"reply-{body}")

        sim.spawn(delayed())

    server.on("Slow", handle)

    def proc():
        first = client.rpc.request(1, "Slow", 1)
        second = client.rpc.request(1, "Slow", 2)
        a = yield first
        b = yield second
        return a, b

    assert sim.run_process(proc()) == ("reply-1", "reply-2")


def test_generator_handler_is_spawned():
    sim, client, server = build_pair()

    def handle(envelope):
        yield sim.timeout(5e-6)
        server.rpc.reply(envelope, "done")

    server.on("Work", handle)

    def proc():
        result = yield client.rpc.request(1, "Work", None)
        return result, sim.now

    result, finished = sim.run_process(proc())
    assert result == "done"
    assert finished > 5e-6


def test_unhandled_message_type_raises():
    sim, client, server = build_pair()

    def proc():
        yield client.rpc.request(1, "Nope", None)

    with pytest.raises(Exception):
        sim.run_process(proc())


def test_duplicate_handler_registration_rejected():
    sim, client, server = build_pair()
    server.on("X", lambda env: None)
    with pytest.raises(ValueError):
        server.on("X", lambda env: None)


def test_reply_requires_rpc_envelope():
    sim, client, server = build_pair()
    received = []

    def handle(envelope):
        received.append(envelope)

    server.on("Fire", handle)
    client.send(1, "Fire", "payload")
    sim.run()
    assert len(received) == 1
    with pytest.raises(TypeError):
        server.rpc.reply(received[0], "oops")
