"""Property-based tests for network delivery ordering."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import NetworkConfig
from repro.net import Network
from repro.net.message import MessageType
from repro.sim import Simulator

NODES = 3

send_plans = st.lists(
    st.tuples(
        st.integers(0, NODES - 1),  # src
        st.integers(0, NODES - 1),  # dst
        st.sampled_from(["Data", MessageType.PROPAGATE]),
        st.integers(0, 3),  # send-time step
    ),
    min_size=1,
    max_size=30,
)


@given(send_plans, st.integers(0, 2**16))
@settings(max_examples=100, deadline=None)
def test_fifo_per_channel_under_jitter(plan, seed):
    """Messages on one (src, dst, channel) arrive in send order, always."""
    sim = Simulator()
    net = Network(sim, NetworkConfig(jitter=30e-6), seed=seed)
    received = []
    for node in range(NODES):
        net.register(
            node,
            lambda env, node=node: received.append(
                (env.src, env.dst, env.msg_type, env.payload)
            ),
        )

    sequence = {"n": 0}

    def send(src, dst, msg_type):
        net.send(src, dst, msg_type, sequence["n"])
        sequence["n"] += 1

    for src, dst, msg_type, step in plan:
        sim.call_at(step * 10e-6, send, src, dst, msg_type)
    sim.run()

    assert len(received) == len(plan)
    # Per (src, dst, channel): payload sequence numbers are increasing.
    channels = {}
    for src, dst, msg_type, payload in received:
        channel = "bg" if msg_type in MessageType.BACKGROUND else "fg"
        history = channels.setdefault((src, dst, channel), [])
        if history:
            assert payload > history[-1], (
                f"out-of-order delivery on {(src, dst, channel)}"
            )
        history.append(payload)


@given(send_plans, st.integers(0, 2**16))
@settings(max_examples=50, deadline=None)
def test_no_message_lost_or_duplicated(plan, seed):
    sim = Simulator()
    net = Network(sim, NetworkConfig(jitter=50e-6), seed=seed)
    received = []
    for node in range(NODES):
        net.register(node, lambda env: received.append(env.msg_id))
    for i, (src, dst, msg_type, _step) in enumerate(plan):
        net.send(src, dst, msg_type, i)
    sim.run()
    assert sorted(received) == list(range(len(plan)))
