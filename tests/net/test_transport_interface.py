"""The transport seam: contract tests for Transport/Endpoint backends.

The seam's promise is that everything above construction is
backend-agnostic: the simulated :class:`Network` and the socket backend
are both :class:`Transport`\\ s, :class:`RpcEndpoint` is built through
the transport's factory, fault injection refuses cleanly off the sim
backend, and :func:`build_transport` is the single selection point.
"""

import pytest

from repro.config import ClusterConfig, NetworkConfig, TransportConfig
from repro.net import (
    Endpoint,
    Network,
    RpcEndpoint,
    Transport,
    TransportError,
    build_transport,
)
from repro.net.message import Envelope
from repro.sim import Simulator


class MinimalTransport(Transport):
    """The smallest conforming backend: direct immediate dispatch."""

    kind = "minimal"

    def __init__(self, sim, config=None, seed=0):
        self.sim = sim
        self.config = config or NetworkConfig()
        self.seed = seed
        from repro.net.network import NetworkStats

        self.stats = NetworkStats()
        self._nodes = {}

    def register(self, node_id, deliver):
        self._nodes[node_id] = deliver

    def send(self, src, dst, msg_type, payload):
        envelope = Envelope(msg_type, src, dst, payload, self.sim.now, self.sim.now, 0)
        self.sim._post_soon(self._nodes[dst], envelope)
        return envelope


def test_network_is_a_transport_and_rpc_is_an_endpoint():
    sim = Simulator()
    net = Network(sim)
    assert isinstance(net, Transport)
    assert Network.kind == "sim"
    endpoint = net.endpoint(0)
    assert isinstance(endpoint, RpcEndpoint)
    assert isinstance(endpoint, Endpoint)


def test_endpoint_factory_matches_direct_construction():
    sim = Simulator()
    net = Network(sim, NetworkConfig(), seed=3)
    via_factory = net.endpoint(1)
    direct = RpcEndpoint(sim, net, 1)
    assert via_factory.node_id == direct.node_id
    assert via_factory.config is direct.config
    assert via_factory.network is direct.network
    # Same seeded jitter stream: the factory changes nothing.
    assert [via_factory._rng.random() for _ in range(4)] == [
        direct._rng.random() for _ in range(4)
    ]


def test_base_pump_is_exactly_sim_run():
    sim = Simulator()
    transport = MinimalTransport(sim)
    fired = []
    sim.call_at(5e-3, fired.append, "x")
    assert transport.pump(until=1e-3) == 1e-3
    assert fired == []
    assert transport.pump() == 5e-3
    assert fired == ["x"]
    transport.close()  # base close is a no-op


def test_default_fault_surface_probes_healthy_and_refuses_mutation():
    transport = MinimalTransport(Simulator())
    assert transport.is_crashed(0) is False
    assert transport.is_partitioned(0, 1) is False
    assert transport.last_send_horizon(0, 1) == 0.0
    for mutate in (
        lambda: transport.crash(0),
        lambda: transport.restart(0),
        lambda: transport.partition(0, 1),
        lambda: transport.heal(0, 1),
        lambda: transport.heal_all(),
    ):
        with pytest.raises(TransportError):
            mutate()


def test_rpc_round_trip_over_a_non_sim_backend():
    # The endpoint must consume only the Transport surface, so it works
    # over the minimal backend verbatim.
    sim = Simulator()
    transport = MinimalTransport(sim)
    from repro.cluster import Node

    client = Node(sim, 0, transport)
    server = Node(sim, 1, transport)
    server.on("Echo", lambda env: server.rpc.reply(env, server.rpc.body_of(env) + 1))

    def proc():
        reply = yield client.rpc.request(1, "Echo", 41)
        return reply

    assert sim.run_process(proc()) == 42


def test_build_transport_selects_by_kind():
    sim = Simulator()
    net = build_transport(sim, ClusterConfig(num_nodes=2))
    assert isinstance(net, Network)
    assert net.kind == "sim"

    bad = ClusterConfig(num_nodes=2)
    bad.transport.kind = "carrier-pigeon"  # skip __post_init__ validation
    with pytest.raises(ValueError):
        build_transport(sim, bad)


def test_build_transport_socket_kind():
    from repro.net.socket_transport import SocketTransport

    sim = Simulator()
    transport = build_transport(
        sim, ClusterConfig(num_nodes=2, transport=TransportConfig(kind="socket"))
    )
    try:
        assert isinstance(transport, SocketTransport)
        assert transport.kind == "socket"
        assert isinstance(transport, Transport)
    finally:
        transport.close()


def test_sim_transport_config_is_bit_identical_to_default():
    # TransportConfig(kind="sim") must change nothing: same network
    # object shape, same seeded streams, same stats after a run.
    from repro import Cluster

    def run(config):
        cluster = Cluster("fwkv", config)
        cluster.load("x", 0)

        def bump(txn):
            value = yield from txn.read("x")
            txn.write("x", value + 1)

        for _ in range(3):
            assert cluster.run_txn(bump)
        stats = cluster.network.stats
        return (
            cluster.sim.now,
            cluster.sim.executed_count,
            stats.messages_sent,
            dict(stats.messages_by_type),
        )

    default = run(ClusterConfig(num_nodes=3, seed=5))
    explicit = run(
        ClusterConfig(
            num_nodes=3, seed=5, transport=TransportConfig(kind="sim")
        )
    )
    assert default == explicit
