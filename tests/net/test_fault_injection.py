"""Tests for fault injection in the network: crashes, partitions, loss."""

from repro.config import NetworkConfig
from repro.net import Network
from repro.sim import Simulator


def build(config=None, seed=0):
    sim = Simulator()
    net = Network(sim, config or NetworkConfig(jitter=0.0), seed=seed)
    received = []
    net.register(0, lambda env: received.append((0, env.payload)))
    net.register(1, lambda env: received.append((1, env.payload)))
    return sim, net, received


def test_messages_to_crashed_node_drop():
    sim, net, received = build()
    net.crash(1)
    net.send(0, 1, "Ping", "lost")
    sim.run()
    assert received == []
    assert net.stats.messages_dropped == 1


def test_messages_from_crashed_node_drop():
    sim, net, received = build()
    net.crash(0)
    net.send(0, 1, "Ping", "lost")
    sim.run()
    assert received == []


def test_in_flight_messages_drop_on_crash():
    sim, net, received = build()
    net.send(0, 1, "Ping", "in-flight")
    net.crash(1)  # crash after send, before delivery
    sim.run()
    assert received == []


def test_restart_restores_delivery():
    sim, net, received = build()
    net.crash(1)
    net.send(0, 1, "Ping", "lost")
    sim.run()
    net.restart(1)
    net.send(0, 1, "Ping", "delivered")
    sim.run()
    assert received == [(1, "delivered")]
    assert not net.is_crashed(1)


def test_crash_is_idempotent():
    sim, net, _received = build()
    net.crash(1)
    net.crash(1)
    assert net.is_crashed(1)
    net.restart(1)
    net.restart(1)
    assert not net.is_crashed(1)


def test_crash_drops_count_by_reason():
    sim, net, received = build()
    net.crash(1)
    net.send(0, 1, "Ping", "lost")
    sim.run()
    assert net.stats.drops_by_reason["crash"] == 1


# ----------------------------------------------------------------------
# Partitions
# ----------------------------------------------------------------------
def test_partition_is_directed():
    sim, net, received = build()
    net.partition(0, 1)
    net.send(0, 1, "Ping", "cut")
    net.send(1, 0, "Ping", "open")
    sim.run()
    assert received == [(0, "open")]
    assert net.stats.drops_by_reason["partition"] == 1
    assert net.is_partitioned(0, 1)
    assert not net.is_partitioned(1, 0)


def test_in_flight_messages_drop_on_partition():
    sim, net, received = build()
    net.send(0, 1, "Ping", "in-flight")
    net.partition(0, 1)  # cut after send, before delivery
    sim.run()
    assert received == []


def test_heal_restores_directed_link():
    sim, net, received = build()
    net.partition(0, 1)
    net.send(0, 1, "Ping", "lost")
    sim.run()
    net.heal(0, 1)
    net.send(0, 1, "Ping", "delivered")
    sim.run()
    assert received == [(1, "delivered")]


def test_heal_all_clears_every_partition_but_not_crashes():
    sim, net, _received = build()
    net.partition(0, 1)
    net.partition(1, 0)
    net.crash(0)
    net.heal_all()
    assert not net.is_partitioned(0, 1)
    assert not net.is_partitioned(1, 0)
    assert net.is_crashed(0)


# ----------------------------------------------------------------------
# Probabilistic loss and duplication
# ----------------------------------------------------------------------
def test_certain_loss_drops_everything():
    sim, net, received = build(NetworkConfig(jitter=0.0, loss_rate=1.0))
    for i in range(5):
        net.send(0, 1, "Ping", i)
    sim.run()
    assert received == []
    assert net.stats.messages_dropped == 5
    assert net.stats.drops_by_reason["loss"] == 5


def test_loss_spares_loopback_messages():
    sim, net, received = build(NetworkConfig(jitter=0.0, loss_rate=1.0))
    net.send(0, 0, "Ping", "self")
    sim.run()
    assert received == [(0, "self")]


def test_certain_duplication_delivers_twice():
    sim, net, received = build(NetworkConfig(jitter=0.0, duplicate_rate=1.0))
    net.send(0, 1, "Ping", "echo")
    sim.run()
    assert received == [(1, "echo"), (1, "echo")]
    assert net.stats.messages_duplicated == 1


def delivery_trace(seed, loss_rate=0.5):
    sim = Simulator()
    net = Network(sim, NetworkConfig(jitter=5e-6, loss_rate=loss_rate), seed=seed)
    received = []
    net.register(0, lambda env: received.append(env.payload))
    net.register(1, lambda env: received.append((env.payload, sim.now)))
    for i in range(40):
        net.send(0, 1, "Ping", i)
    sim.run()
    return received, net.stats.messages_dropped


def test_probabilistic_loss_is_seed_deterministic():
    first = delivery_trace(seed=11)
    second = delivery_trace(seed=11)
    assert first == second
    assert 0 < first[1] < 40  # some but not all messages dropped
    # A different seed draws a different loss pattern.
    assert delivery_trace(seed=12) != first
