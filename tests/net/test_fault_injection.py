"""Tests for crash-stop fault injection in the network."""

from repro.config import NetworkConfig
from repro.net import Network
from repro.sim import Simulator


def build():
    sim = Simulator()
    net = Network(sim, NetworkConfig(jitter=0.0))
    received = []
    net.register(0, lambda env: received.append((0, env.payload)))
    net.register(1, lambda env: received.append((1, env.payload)))
    return sim, net, received


def test_messages_to_crashed_node_drop():
    sim, net, received = build()
    net.crash(1)
    net.send(0, 1, "Ping", "lost")
    sim.run()
    assert received == []
    assert net.stats.messages_dropped == 1


def test_messages_from_crashed_node_drop():
    sim, net, received = build()
    net.crash(0)
    net.send(0, 1, "Ping", "lost")
    sim.run()
    assert received == []


def test_in_flight_messages_drop_on_crash():
    sim, net, received = build()
    net.send(0, 1, "Ping", "in-flight")
    net.crash(1)  # crash after send, before delivery
    sim.run()
    assert received == []


def test_restart_restores_delivery():
    sim, net, received = build()
    net.crash(1)
    net.send(0, 1, "Ping", "lost")
    sim.run()
    net.restart(1)
    net.send(0, 1, "Ping", "delivered")
    sim.run()
    assert received == [(1, "delivered")]
    assert not net.is_crashed(1)


def test_crash_is_idempotent():
    sim, net, _received = build()
    net.crash(1)
    net.crash(1)
    assert net.is_crashed(1)
    net.restart(1)
    net.restart(1)
    assert not net.is_crashed(1)
