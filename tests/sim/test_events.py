"""Unit tests for events, combinators, and processes."""

import pytest

from repro.sim import AllOf, AnyOf, Event, Simulator


def test_event_succeed_delivers_value():
    sim = Simulator()
    ev = sim.event()
    ev.succeed(7)
    assert ev.triggered and ev.ok
    assert ev.value == 7


def test_event_fail_raises_on_value_access():
    sim = Simulator()
    ev = sim.event()
    ev.fail(KeyError("nope"))
    assert ev.triggered and not ev.ok
    with pytest.raises(KeyError):
        _ = ev.value


def test_event_cannot_trigger_twice():
    sim = Simulator()
    ev = sim.event()
    ev.succeed(1)
    with pytest.raises(RuntimeError):
        ev.succeed(2)
    with pytest.raises(RuntimeError):
        ev.fail(ValueError())


def test_fail_requires_exception_instance():
    sim = Simulator()
    with pytest.raises(TypeError):
        sim.event().fail("not an exception")  # type: ignore[arg-type]


def test_pending_value_access_is_an_error():
    sim = Simulator()
    with pytest.raises(RuntimeError):
        _ = sim.event().value


def test_callback_on_already_triggered_event_still_fires():
    sim = Simulator()
    ev = sim.event()
    ev.succeed("v")
    seen = []
    ev.add_callback(lambda e: seen.append(e.value))
    sim.run()
    assert seen == ["v"]


def test_process_waits_on_events():
    sim = Simulator()
    gate = sim.event()
    trace = []

    def proc():
        trace.append(("start", sim.now))
        value = yield gate
        trace.append(("resumed", sim.now, value))
        return "done"

    p = sim.spawn(proc())
    sim.call_later(4.0, gate.succeed, "opened")
    sim.run()
    assert p.value == "done"
    assert trace == [("start", 0.0), ("resumed", 4.0, "opened")]


def test_process_join_another_process():
    sim = Simulator()

    def child():
        yield sim.timeout(3.0)
        return "child-result"

    def parent():
        result = yield sim.spawn(child())
        return result

    assert sim.run_process(parent()) == "child-result"


def test_exception_propagates_into_waiting_process():
    sim = Simulator()
    gate = sim.event()

    def proc():
        try:
            yield gate
        except RuntimeError as exc:
            return f"caught {exc}"

    p = sim.spawn(proc())
    sim.call_later(1.0, gate.fail, RuntimeError("boom"))
    sim.run()
    assert p.value == "caught boom"


def test_yield_from_subroutine_composes():
    sim = Simulator()

    def wait_twice(delay):
        yield sim.timeout(delay)
        yield sim.timeout(delay)
        return delay * 2

    def proc():
        total = yield from wait_twice(1.5)
        return total

    assert sim.run_process(proc()) == 3.0
    assert sim.now == 3.0


def test_yielding_non_event_is_an_error():
    sim = Simulator()

    def bad():
        yield 42

    def parent():
        yield sim.spawn(bad())

    with pytest.raises(TypeError):
        sim.run_process(parent())


def test_spawn_requires_generator():
    sim = Simulator()
    with pytest.raises(TypeError):
        sim.spawn(lambda: None)  # type: ignore[arg-type]


def test_allof_collects_values_in_order():
    sim = Simulator()
    events = [sim.timeout(3.0, "c"), sim.timeout(1.0, "a"), sim.timeout(2.0, "b")]

    def proc():
        values = yield AllOf(sim, events)
        return values

    assert sim.run_process(proc()) == ["c", "a", "b"]
    assert sim.now == 3.0


def test_allof_empty_succeeds_immediately():
    sim = Simulator()

    def proc():
        values = yield AllOf(sim, [])
        return values

    assert sim.run_process(proc()) == []


def test_allof_fails_on_child_failure():
    sim = Simulator()
    bad = sim.event()
    sim.call_later(1.0, bad.fail, ValueError("x"))

    def proc():
        try:
            yield AllOf(sim, [sim.timeout(5.0), bad])
        except ValueError:
            return "failed"

    assert sim.run_process(proc()) == "failed"


def test_anyof_returns_first_completion():
    sim = Simulator()
    events = [sim.timeout(5.0, "slow"), sim.timeout(1.0, "fast")]

    def proc():
        index, value = yield AnyOf(sim, events)
        return index, value

    assert sim.run_process(proc()) == (1, "fast")


def test_anyof_requires_children():
    sim = Simulator()
    with pytest.raises(ValueError):
        AnyOf(sim, [])


def test_event_repr_mentions_state():
    sim = Simulator()
    ev = Event(sim, name="my-event")
    assert "my-event" in repr(ev)
    assert "pending" in repr(ev)
