"""Unit tests for condition variables and predicate waits."""

from repro.sim import ConditionVariable, Simulator, wait_until


def test_notify_all_wakes_every_waiter():
    sim = Simulator()
    cv = ConditionVariable(sim)
    woken = []

    def waiter(name):
        yield cv.wait()
        woken.append((name, sim.now))

    sim.spawn(waiter("a"))
    sim.spawn(waiter("b"))
    sim.call_later(3.0, cv.notify_all)
    sim.run()
    assert woken == [("a", 3.0), ("b", 3.0)]


def test_wait_until_rechecks_predicate():
    sim = Simulator()
    cv = ConditionVariable(sim)
    state = {"value": 0}
    done = []

    def bump(value):
        state["value"] = value
        cv.notify_all()

    def waiter():
        yield from wait_until(cv, lambda: state["value"] >= 3)
        done.append(sim.now)

    sim.spawn(waiter())
    sim.call_later(1.0, bump, 1)
    sim.call_later(2.0, bump, 2)
    sim.call_later(3.0, bump, 3)
    sim.run()
    assert done == [3.0]


def test_wait_until_returns_immediately_when_true():
    sim = Simulator()
    cv = ConditionVariable(sim)

    def waiter():
        result = yield from wait_until(cv, lambda: "ready")
        return result

    assert sim.run_process(waiter()) == "ready"
    assert sim.now == 0.0


def test_waiter_count_tracks_registrations():
    sim = Simulator()
    cv = ConditionVariable(sim)

    def waiter():
        yield cv.wait()

    sim.spawn(waiter())
    sim.spawn(waiter())
    sim.run(until=0.5)
    assert cv.waiter_count == 2
    cv.notify_all()
    sim.run()
    assert cv.waiter_count == 0


def test_notify_with_no_waiters_is_noop():
    sim = Simulator()
    cv = ConditionVariable(sim)
    cv.notify_all()
    assert cv.waiter_count == 0
