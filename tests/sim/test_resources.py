"""Unit tests for the finite-CPU resource."""

import pytest

from repro.sim import CpuResource, Simulator


def test_infinite_cores_is_plain_delay():
    sim = Simulator()
    cpu = CpuResource(sim, cores=None)

    def job():
        yield from cpu.consume(5.0)
        return sim.now

    assert sim.run_process(job()) == 5.0
    assert cpu.busy_time == 5.0


def test_zero_cost_consumes_nothing():
    sim = Simulator()
    cpu = CpuResource(sim, cores=1)

    def job():
        yield from cpu.consume(0.0)
        return sim.now

    assert sim.run_process(job()) == 0.0


def test_parallelism_up_to_core_count():
    sim = Simulator()
    cpu = CpuResource(sim, cores=2)
    finished = []

    def job(name):
        yield from cpu.consume(4.0)
        finished.append((name, sim.now))

    for name in ("a", "b", "c"):
        sim.spawn(job(name))
    sim.run()
    # Two jobs run in parallel; the third queues behind them.
    assert finished == [("a", 4.0), ("b", 4.0), ("c", 8.0)]


def test_fifo_queueing_order():
    sim = Simulator()
    cpu = CpuResource(sim, cores=1)
    finished = []

    def job(name, cost, delay):
        yield sim.timeout(delay)
        yield from cpu.consume(cost)
        finished.append(name)

    sim.spawn(job("first", 3.0, 0.0))
    sim.spawn(job("second", 1.0, 0.5))
    sim.spawn(job("third", 1.0, 1.0))
    sim.run()
    assert finished == ["first", "second", "third"]


def test_no_overcommit_under_churn():
    """The busy count never exceeds the core count, and drains to zero."""
    sim = Simulator()
    cpu = CpuResource(sim, cores=3)

    def tracked_job(delay, cost):
        yield sim.timeout(delay)
        assert cpu._busy <= 3
        yield from cpu.consume(cost)
        assert cpu._busy <= 3

    for i in range(20):
        sim.spawn(tracked_job(i * 0.3, 1.0))
    sim.run()
    assert cpu._busy == 0
    assert cpu.queue_length == 0


def test_utilization_accounting():
    sim = Simulator()
    cpu = CpuResource(sim, cores=2)

    def job():
        yield from cpu.consume(3.0)

    sim.spawn(job())
    sim.spawn(job())
    sim.run()
    assert cpu.busy_time == 6.0
    assert cpu.utilization(elapsed=3.0) == pytest.approx(1.0)
    assert cpu.utilization(elapsed=6.0) == pytest.approx(0.5)
    assert cpu.utilization(elapsed=0.0) == 0.0


def test_invalid_core_count_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        CpuResource(sim, cores=0)
