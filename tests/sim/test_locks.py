"""Unit tests for simulated mutexes and readers/writer locks."""

import pytest

from repro.sim import Mutex, RWLock, Simulator
from repro.sim.locks import LockError


def acquire_now(lock_method, owner, timeout=None):
    """Helper: acquire and assert the grant resolved within the run."""
    event = lock_method(owner, timeout)
    return event


def test_mutex_grants_free_lock_immediately():
    sim = Simulator()
    mutex = Mutex(sim)

    def proc():
        granted = yield mutex.acquire("t1")
        return granted

    assert sim.run_process(proc()) is True
    assert mutex.held_by("t1")


def test_mutex_blocks_second_owner_until_release():
    sim = Simulator()
    mutex = Mutex(sim)
    order = []

    def first():
        yield mutex.acquire("t1")
        order.append(("t1-acquired", sim.now))
        yield sim.timeout(5.0)
        mutex.release("t1")

    def second():
        yield sim.timeout(1.0)
        granted = yield mutex.acquire("t2")
        order.append(("t2-acquired", sim.now, granted))
        mutex.release("t2")

    sim.spawn(first())
    sim.spawn(second())
    sim.run()
    assert order == [("t1-acquired", 0.0), ("t2-acquired", 5.0, True)]


def test_mutex_timeout_returns_false():
    sim = Simulator()
    mutex = Mutex(sim)
    results = {}

    def holder():
        yield mutex.acquire("t1")
        yield sim.timeout(10.0)
        mutex.release("t1")

    def contender():
        granted = yield mutex.acquire("t2", timeout=2.0)
        results["granted"] = granted
        results["when"] = sim.now

    sim.spawn(holder())
    sim.spawn(contender())
    sim.run()
    assert results == {"granted": False, "when": 2.0}
    assert not mutex.held_by("t2")


def test_mutex_reentrant_same_owner():
    sim = Simulator()
    mutex = Mutex(sim)

    def proc():
        yield mutex.acquire("t1")
        granted = yield mutex.acquire("t1")
        mutex.release("t1")
        assert mutex.held_by("t1")
        mutex.release("t1")
        return granted

    assert sim.run_process(proc()) is True
    assert not mutex.is_locked


def test_release_without_hold_is_an_error():
    sim = Simulator()
    mutex = Mutex(sim)
    with pytest.raises(LockError):
        mutex.release("ghost")


def test_rwlock_readers_share():
    sim = Simulator()
    lock = RWLock(sim)

    def proc():
        first = yield lock.acquire_read("r1")
        second = yield lock.acquire_read("r2")
        return first, second

    assert sim.run_process(proc()) == (True, True)
    assert lock.held_by("r1") == "r"
    assert lock.held_by("r2") == "r"


def test_rwlock_writer_excludes_readers():
    sim = Simulator()
    lock = RWLock(sim)
    order = []

    def writer():
        yield lock.acquire_write("w")
        order.append(("w", sim.now))
        yield sim.timeout(3.0)
        lock.release("w")

    def reader():
        yield sim.timeout(1.0)
        yield lock.acquire_read("r")
        order.append(("r", sim.now))
        lock.release("r")

    sim.spawn(writer())
    sim.spawn(reader())
    sim.run()
    assert order == [("w", 0.0), ("r", 3.0)]


def test_rwlock_fifo_prevents_writer_starvation():
    """A read queued behind a write waits even while other reads hold."""
    sim = Simulator()
    lock = RWLock(sim)
    order = []

    def early_reader():
        yield lock.acquire_read("r1")
        order.append(("r1", sim.now))
        yield sim.timeout(4.0)
        lock.release("r1")

    def writer():
        yield sim.timeout(1.0)
        yield lock.acquire_write("w")
        order.append(("w", sim.now))
        yield sim.timeout(2.0)
        lock.release("w")

    def late_reader():
        yield sim.timeout(2.0)
        yield lock.acquire_read("r2")
        order.append(("r2", sim.now))
        lock.release("r2")

    sim.spawn(early_reader())
    sim.spawn(writer())
    sim.spawn(late_reader())
    sim.run()
    assert order == [("r1", 0.0), ("w", 4.0), ("r2", 6.0)]


def test_rwlock_upgrade_attempt_rejected():
    sim = Simulator()
    lock = RWLock(sim)

    def proc():
        yield lock.acquire_read("t")
        yield lock.acquire_write("t")

    with pytest.raises(LockError):
        sim.run_process(proc())


def test_rwlock_timeout_of_queued_writer_unblocks_readers():
    sim = Simulator()
    lock = RWLock(sim)
    order = []

    def holder():
        yield lock.acquire_read("r1")
        yield sim.timeout(10.0)
        lock.release("r1")

    def impatient_writer():
        yield sim.timeout(1.0)
        granted = yield lock.acquire_write("w", timeout=2.0)
        order.append(("w", granted, sim.now))

    def queued_reader():
        yield sim.timeout(2.0)
        granted = yield lock.acquire_read("r2")
        order.append(("r2", granted, sim.now))
        lock.release("r2")

    sim.spawn(holder())
    sim.spawn(impatient_writer())
    sim.spawn(queued_reader())
    sim.run()
    # Writer times out at t=3; the reader queued behind it is then granted.
    assert order == [("w", False, 3.0), ("r2", True, 3.0)]


def test_rwlock_queue_length_reporting():
    sim = Simulator()
    lock = RWLock(sim)

    def holder():
        yield lock.acquire_write("w1")
        yield sim.timeout(5.0)
        lock.release("w1")

    def waiter(name):
        yield sim.timeout(1.0)
        yield lock.acquire_write(name)
        lock.release(name)

    sim.spawn(holder())
    sim.spawn(waiter("w2"))
    sim.spawn(waiter("w3"))
    sim.run(until=2.0)
    assert lock.queue_length == 2
    sim.run()
    assert lock.queue_length == 0
    assert not lock.is_locked
