"""Unit tests for deterministic seed derivation."""

from repro.sim import derive_seed, make_rng


def test_derive_seed_is_deterministic():
    assert derive_seed(1, "clients", 3) == derive_seed(1, "clients", 3)


def test_derive_seed_varies_with_stream():
    seeds = {
        derive_seed(1, "clients", 0),
        derive_seed(1, "clients", 1),
        derive_seed(1, "network"),
        derive_seed(2, "clients", 0),
    }
    assert len(seeds) == 4


def test_make_rng_streams_are_independent():
    a = make_rng(7, "a")
    b = make_rng(7, "b")
    assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


def test_make_rng_reproducible():
    first = [make_rng(7, "x").random() for _ in range(3)]
    second = [make_rng(7, "x").random() for _ in range(3)]
    assert first == second
