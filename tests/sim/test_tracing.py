"""Tests for the structured tracing facility."""

import pytest

from repro.sim import Simulator, Tracer
from tests.integration.scenario_tools import (
    make_cluster,
    read_only_txn,
    update_txn,
)


def test_disabled_tracer_records_nothing():
    sim = Simulator()
    tracer = Tracer(sim)
    tracer.emit(0, "commit", txn=1)
    assert tracer.records == []
    assert not tracer.active


def test_enable_selects_kinds():
    sim = Simulator()
    tracer = Tracer(sim)
    tracer.enable("commit", "abort")
    tracer.emit(0, "commit", txn=1)
    tracer.emit(0, "read", txn=1, key="x")
    assert len(tracer.records) == 1
    assert tracer.records[0].event == "commit"
    assert tracer.wants("abort") and not tracer.wants("read")


def test_enable_everything_and_disable():
    sim = Simulator()
    tracer = Tracer(sim)
    tracer.enable()
    assert tracer.wants("propagate")
    tracer.disable("propagate")
    assert not tracer.wants("propagate")
    tracer.disable()
    assert not tracer.active


def test_unknown_kind_rejected():
    tracer = Tracer(Simulator())
    with pytest.raises(ValueError):
        tracer.enable("warp-speed")


def test_record_cap_counts_drops():
    sim = Simulator()
    tracer = Tracer(sim, max_records=2)
    tracer.enable("commit")
    for i in range(5):
        tracer.emit(0, "commit", txn=i)
    assert len(tracer.records) == 2
    assert tracer.dropped == 3


def test_cluster_tracing_end_to_end():
    cluster = make_cluster("fwkv", 2, {"x": 1}, initial={"x": 0})
    cluster.tracer.enable("begin", "read", "commit", "prepare", "decide")

    cluster.run_process(update_txn(cluster, 0, writes={"x": 1}, reads=["x"]))
    cluster.run_process(read_only_txn(cluster, 1, ["x"]))

    kinds = [record.event for record in cluster.tracer.records]
    assert "begin" in kinds and "read" in kinds and "commit" in kinds
    assert "prepare" in kinds and "decide" in kinds

    # Per-transaction filtering reconstructs a lifecycle.
    first_txn = cluster.tracer.records[0].details["txn"]
    lifecycle = [r.event for r in cluster.tracer.for_txn(first_txn)]
    assert lifecycle[0] == "begin"
    assert lifecycle[-1] in ("commit", "decide")

    # Formatting is human-readable.
    line = cluster.tracer.format(cluster.tracer.records[0])
    assert "begin" in line and "ms]" in line
    dump = cluster.tracer.dump(limit=3)
    assert len(dump.splitlines()) == 3


def test_stall_events_traced():
    cluster = make_cluster(
        "fwkv", 3, {"x": 1, "y": 0}, propagate_delay=3e-3,
        initial={"x": "x0", "y": "y0"},
    )
    cluster.tracer.enable("stall")

    def writer():
        ok, _ = yield from update_txn(cluster, 0, writes={"y": "y1"})
        assert ok

    def reader():
        yield cluster.sim.timeout(0.5e-3)
        node = cluster.node(0)
        txn = node.begin(is_read_only=True)
        yield from node.read(txn, "x")
        yield from node.commit(txn)

    cluster.spawn(writer())
    cluster.spawn(reader())
    cluster.run()
    stalls = cluster.tracer.of_kind("stall")
    assert stalls
    assert stalls[0].details["waited"] > 0
