"""Unit tests for the discrete-event scheduler."""

import pytest

from repro.sim import Simulator
from repro.sim.simulator import SimulationCrash


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0


def test_call_later_advances_clock():
    sim = Simulator()
    seen = []
    sim.call_later(5.0, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [5.0]
    assert sim.now == 5.0


def test_call_at_schedules_absolute_time():
    sim = Simulator()
    seen = []
    sim.call_at(3.0, lambda: seen.append("a"))
    sim.call_at(1.0, lambda: seen.append("b"))
    sim.run()
    assert seen == ["b", "a"]


def test_same_time_callbacks_run_in_fifo_order():
    sim = Simulator()
    seen = []
    for label in "abcde":
        sim.call_later(1.0, seen.append, label)
    sim.run()
    assert seen == list("abcde")


def test_cannot_schedule_in_the_past():
    sim = Simulator()
    sim.call_later(2.0, lambda: None)
    sim.run()
    with pytest.raises(ValueError):
        sim.call_at(1.0, lambda: None)


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.call_later(-1.0, lambda: None)


def test_run_until_stops_before_later_events():
    sim = Simulator()
    seen = []
    sim.call_later(1.0, seen.append, "early")
    sim.call_later(10.0, seen.append, "late")
    sim.run(until=5.0)
    assert seen == ["early"]
    assert sim.now == 5.0
    sim.run()
    assert seen == ["early", "late"]


def test_timer_cancel_prevents_callback():
    sim = Simulator()
    seen = []
    timer = sim.call_later(1.0, seen.append, "x")
    timer.cancel()
    sim.run()
    assert seen == []


def test_run_until_skips_cancelled_head():
    sim = Simulator()
    seen = []
    timer = sim.call_later(1.0, seen.append, "cancelled")
    sim.call_later(8.0, seen.append, "late")
    timer.cancel()
    sim.run(until=5.0)
    assert seen == []
    assert sim.now == 5.0


def test_nested_scheduling_from_callback():
    sim = Simulator()
    seen = []

    def outer():
        seen.append(("outer", sim.now))
        sim.call_later(2.0, inner)

    def inner():
        seen.append(("inner", sim.now))

    sim.call_later(1.0, outer)
    sim.run()
    assert seen == [("outer", 1.0), ("inner", 3.0)]


def test_unjoined_process_crash_raises():
    sim = Simulator()

    def boom():
        yield sim.timeout(1.0)
        raise ValueError("kaput")

    sim.spawn(boom())
    with pytest.raises(SimulationCrash):
        sim.run()


def test_run_process_returns_value():
    sim = Simulator()

    def work():
        yield sim.timeout(2.0)
        return 42

    assert sim.run_process(work()) == 42
    assert sim.now == 2.0


def test_run_process_detects_deadlock():
    sim = Simulator()

    def stuck():
        yield sim.event()  # never triggered

    with pytest.raises(RuntimeError, match="deadlock"):
        sim.run_process(stuck())
