"""Property-based (stateful) tests for the readers/writer lock."""

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)
from hypothesis import strategies as st

from repro.sim import RWLock, Simulator

OWNERS = [f"o{i}" for i in range(4)]


class LockMachine(RuleBasedStateMachine):
    """Random acquire/release sequences preserve the lock invariants.

    Requests are issued through processes without timeouts; the model
    tracks, per owner, granted mode counts, and checks mutual exclusion
    after every step.
    """

    def __init__(self):
        super().__init__()
        self.sim = Simulator()
        self.lock = RWLock(self.sim)
        self.granted = {}  # owner -> (mode, count)
        self.outstanding = set()  # owners with a pending request

    def _settle(self):
        self.sim.run()

    def _request(self, owner, mode):
        results = {}

        def proc():
            if mode == "r":
                ok = yield self.lock.acquire_read(owner)
            else:
                ok = yield self.lock.acquire_write(owner)
            results["ok"] = ok
            current = self.granted.get(owner, (mode, 0))
            self.granted[owner] = (mode, current[1] + 1)
            self.outstanding.discard(owner)

        self.outstanding.add(owner)
        self.sim.spawn(proc())

    @rule(owner=st.sampled_from(OWNERS))
    def acquire_read(self, owner):
        held = self.granted.get(owner)
        if owner in self.outstanding or (held and held[0] != "r"):
            return  # avoid upgrade errors and double-pending requests
        self._request(owner, "r")
        self._settle()

    @rule(owner=st.sampled_from(OWNERS))
    def acquire_write(self, owner):
        held = self.granted.get(owner)
        if owner in self.outstanding or (held and held[0] != "w"):
            return
        self._request(owner, "w")
        self._settle()

    @rule(owner=st.sampled_from(OWNERS))
    def release(self, owner):
        held = self.granted.get(owner)
        if not held or held[1] == 0:
            return
        self.lock.release(owner)
        mode, count = held
        if count == 1:
            del self.granted[owner]
        else:
            self.granted[owner] = (mode, count - 1)
        self._settle()

    @invariant()
    def writers_are_exclusive(self):
        holders = {
            owner: mode for owner, (mode, count) in self.granted.items()
            if count > 0
        }
        writers = [o for o, m in holders.items() if m == "w"]
        readers = [o for o, m in holders.items() if m == "r"]
        if writers:
            assert len(writers) == 1, f"two writers hold: {writers}"
            assert not readers, f"writer {writers} coexists with {readers}"

    @invariant()
    def model_matches_lock_state(self):
        for owner, (mode, count) in self.granted.items():
            if count > 0:
                assert self.lock.held_by(owner) == mode


TestLockProperties = LockMachine.TestCase
TestLockProperties.settings = settings(
    max_examples=40, stateful_step_count=30, deadline=None
)
