"""Unit tests for the accrual failure detector.

The detector is pure state over ``sim.now``, so these tests drive it
with a stub clock: arrivals and RPC-timeout strikes at chosen instants,
assertions on the resulting classification, phi score, and retry-budget
caps.  No simulator, no network.
"""

import pytest

from repro.config import HealingConfig
from repro.healing import ALIVE, DEAD, SUSPECT, FailureDetector


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now


class SpyMetrics:
    def __init__(self):
        self.raised = 0
        self.cleared = 0

    def on_suspicion(self, raised):
        if raised:
            self.raised += 1
        else:
            self.cleared += 1


N = 4
ME = 0
PEER = 2


def build(clock=None, metrics=None, **overrides):
    config = HealingConfig(**overrides)
    return FailureDetector(
        clock or FakeClock(), ME, N, config, metrics=metrics
    )


# ----------------------------------------------------------------------
# Passive evidence: consecutive RPC-timeout strikes
# ----------------------------------------------------------------------
def test_strike_thresholds():
    detector = build()  # suspect_after_timeouts=2, dead_after_timeouts=5
    assert detector.state(PEER) == ALIVE
    detector.on_rpc_timeout(PEER)
    assert detector.state(PEER) == ALIVE
    detector.on_rpc_timeout(PEER)
    assert detector.state(PEER) == SUSPECT
    assert detector.is_suspect(PEER) and not detector.is_dead(PEER)
    for _ in range(3):
        detector.on_rpc_timeout(PEER)
    assert detector.state(PEER) == DEAD
    assert detector.is_dead(PEER) and detector.is_suspect(PEER)


def test_arrival_clears_strikes_and_suspicion():
    metrics = SpyMetrics()
    detector = build(metrics=metrics)
    for _ in range(5):
        detector.on_rpc_timeout(PEER)
    assert detector.state(PEER) == DEAD
    detector.on_arrival(PEER)
    assert detector.state(PEER) == ALIVE
    # One fresh strike after the arrival is not suspicion again.
    detector.on_rpc_timeout(PEER)
    assert detector.state(PEER) == ALIVE
    # Strikes climbed ALIVE -> SUSPECT -> DEAD, then one clear.
    assert metrics.raised == 2
    assert metrics.cleared == 1


def test_strikes_are_per_peer():
    detector = build()
    for _ in range(5):
        detector.on_rpc_timeout(PEER)
    assert detector.state(PEER) == DEAD
    assert all(
        detector.state(peer) == ALIVE for peer in range(N) if peer != PEER
    )


def test_self_evidence_is_ignored():
    detector = build()
    for _ in range(10):
        detector.on_rpc_timeout(ME)
    detector.on_arrival(ME)
    assert detector.state(ME) == ALIVE
    assert detector.phi(ME) == 0.0


# ----------------------------------------------------------------------
# Accrual evidence: phi over the observed inter-arrival mean
# ----------------------------------------------------------------------
def test_phi_needs_two_arrivals():
    clock = FakeClock()
    detector = build(clock, heartbeat_interval=1.0)
    assert detector.phi(PEER) == 0.0
    detector.on_arrival(PEER)
    clock.now = 100.0  # one arrival fixes no mean interval yet
    assert detector.phi(PEER) == 0.0
    assert detector.state(PEER) == ALIVE


def test_phi_scores_silence_in_mean_intervals():
    clock = FakeClock()
    detector = build(clock, heartbeat_interval=1.0)
    for tick in range(4):  # arrivals at 0, 1, 2, 3: mean interval 1.0
        clock.now = float(tick)
        detector.on_arrival(PEER)
    clock.now = 5.0
    assert detector.phi(PEER) == pytest.approx(2.0)
    assert detector.state(PEER) == ALIVE
    clock.now = 3.0 + 4.0  # phi = 4 >= phi_suspect (3)
    assert detector.state(PEER) == SUSPECT
    clock.now = 3.0 + 9.0  # phi = 9 >= phi_dead (8)
    assert detector.state(PEER) == DEAD
    # The next arrival restores trust and re-seeds the mean.
    detector.on_arrival(PEER)
    assert detector.state(PEER) == ALIVE


def test_phi_disarmed_without_heartbeats():
    """Purely passive configs never accrue time-based suspicion."""
    clock = FakeClock()
    detector = build(clock)  # heartbeat_interval=None
    clock.now = 1.0
    detector.on_arrival(PEER)
    clock.now = 2.0
    detector.on_arrival(PEER)
    clock.now = 1e9  # an eternity of silence
    assert detector.state(PEER) == ALIVE


def test_slow_but_alive_peer_adapts():
    """The accrual mean tracks a consistently slow peer, so the silence
    a fixed timeout would misread as death scores as normal."""
    clock = FakeClock()
    detector = build(clock, heartbeat_interval=1.0)
    # A peer that beacons every 10 time units, not every 1.
    for tick in range(0, 40, 10):
        clock.now = float(tick)
        detector.on_arrival(PEER)
    clock.now = 30.0 + 15.0  # silence of 1.5 mean intervals
    assert detector.phi(PEER) == pytest.approx(1.5)
    assert detector.state(PEER) == ALIVE


# ----------------------------------------------------------------------
# Consumers: the RPC retry-budget cap
# ----------------------------------------------------------------------
def test_attempts_budget_by_state():
    detector = build(suspect_max_attempts=2)
    assert detector.attempts_budget(PEER, 5) == 5
    detector.on_rpc_timeout(PEER)
    detector.on_rpc_timeout(PEER)  # SUSPECT
    assert detector.attempts_budget(PEER, 5) == 2
    assert detector.attempts_budget(PEER, 1) == 1
    for _ in range(3):
        detector.on_rpc_timeout(PEER)  # DEAD
    assert detector.attempts_budget(PEER, 5) == 1
    detector.on_arrival(PEER)
    assert detector.attempts_budget(PEER, 5) == 5
