"""Lag-biased gossip peer selection (seeded, deterministic).

``NodeHealing.pick_gossip_peer`` weights each peer by ``1 + lag_bias *
lag`` where ``lag`` is the peer's own-origin digest gap; the suite pins
the three contractual properties: same seed => same pick sequence, the
bias concentrates rounds on the peer that is actually behind, and the
equal-lag / zero-bias paths fall back to the historical uniform draw
*consuming the RNG stream identically* -- a converged biased run stays
bit-compatible with an unbiased one.
"""

import pytest

from repro import (
    Cluster,
    ClusterConfig,
    HealingConfig,
    SnapshotTransferConfig,
)

pytestmark = pytest.mark.healing


def make_healing(seed, lag_bias, *, own=0, frontiers=None):
    config = ClusterConfig(
        num_nodes=4,
        seed=seed,
        healing=HealingConfig(
            snapshot=SnapshotTransferConfig(lag_bias=lag_bias)
        ),
    )
    healing = Cluster("fwkv", config).nodes[0].healing
    healing.owner.site_vc[0] = own
    if frontiers:
        healing.peer_frontiers.update(frontiers)
    return healing


def picks(healing, n=100):
    return [healing.pick_gossip_peer() for _ in range(n)]


def test_selection_is_seeded_and_deterministic():
    frontiers = {1: 10, 2: 2, 3: 7}
    for bias in (0.0, 4.0):
        a = make_healing(17, bias, own=10, frontiers=frontiers)
        b = make_healing(17, bias, own=10, frontiers=frontiers)
        assert picks(a) == picks(b)
    assert picks(
        make_healing(17, 0.0, own=10, frontiers=frontiers)
    ) != picks(make_healing(18, 0.0, own=10, frontiers=frontiers))


def test_bias_concentrates_on_the_most_lagging_peer():
    # Peer 2 trails by 8, the others are caught up: with a strong bias
    # nearly every round goes to the peer that actually needs repair.
    chosen = picks(
        make_healing(5, 50.0, own=10, frontiers={1: 10, 2: 2, 3: 10}),
        n=200,
    )
    assert chosen.count(2) / len(chosen) > 0.9
    # Unbiased, the same digest state spreads rounds evenly.
    uniform = picks(
        make_healing(5, 0.0, own=10, frontiers={1: 10, 2: 2, 3: 10}),
        n=200,
    )
    assert max(uniform.count(p) for p in (1, 2, 3)) / len(uniform) < 0.5


def test_never_heard_peer_counts_as_maximally_lagging():
    # Peer 3 has reported nothing: its frontier counts as 0, the widest
    # gap on the board, so the bias turns toward it.
    chosen = picks(
        make_healing(9, 50.0, own=10, frontiers={1: 10, 2: 10}), n=200
    )
    assert chosen.count(3) / len(chosen) > 0.9


def test_equal_lag_falls_back_to_the_uniform_rng_draw():
    # All lags equal (converged steady state): a biased instance must
    # consume its RNG stream exactly like an unbiased one, pick for pick.
    for frontiers in ({}, {1: 9, 2: 9, 3: 9}):
        own = 0 if not frontiers else 10
        biased = make_healing(23, 3.0, own=own, frontiers=dict(frontiers))
        unbiased = make_healing(23, 0.0, own=own, frontiers=dict(frontiers))
        assert picks(biased) == picks(unbiased)
