"""Unit tests for key placement directories."""

from collections import Counter

import pytest

from repro.cluster import (
    CallableDirectory,
    ConsistentHashDirectory,
    ExplicitDirectory,
    ModuloDirectory,
)


def test_consistent_hash_is_stable():
    directory = ConsistentHashDirectory(range(5))
    sites = [directory.site(f"key{i}") for i in range(100)]
    again = [ConsistentHashDirectory(range(5)).site(f"key{i}") for i in range(100)]
    assert sites == again


def test_consistent_hash_spreads_keys_roughly_evenly():
    directory = ConsistentHashDirectory(range(10), virtual_nodes=128)
    counts = Counter(directory.site(f"key{i}") for i in range(20000))
    assert set(counts) == set(range(10))
    share = [count / 20000 for count in counts.values()]
    assert min(share) > 0.04  # within ~2.5x of the 10% ideal
    assert max(share) < 0.25


def test_consistent_hash_minimal_movement_on_node_add():
    before = ConsistentHashDirectory(range(5), virtual_nodes=128)
    after = ConsistentHashDirectory(range(6), virtual_nodes=128)
    keys = [f"key{i}" for i in range(5000)]
    moved = sum(1 for k in keys if before.site(k) != after.site(k))
    # Adding 1 of 6 nodes should move roughly 1/6 of keys, not reshuffle all.
    assert moved / len(keys) < 0.35


def test_consistent_hash_validates_arguments():
    with pytest.raises(ValueError):
        ConsistentHashDirectory([])
    with pytest.raises(ValueError):
        ConsistentHashDirectory([0], virtual_nodes=0)


def test_explicit_directory_and_fallback():
    fallback = ModuloDirectory(4)
    directory = ExplicitDirectory({"x": 2}, fallback=fallback)
    assert directory.site("x") == 2
    assert directory.site("other") == fallback.site("other")


def test_explicit_directory_without_fallback_raises():
    directory = ExplicitDirectory({"x": 0})
    with pytest.raises(KeyError):
        directory.site("unknown")


def test_callable_directory():
    directory = CallableDirectory(lambda key: len(str(key)) % 3)
    assert directory.site("ab") == 2
    assert directory.is_local("ab", 2)
    assert not directory.is_local("ab", 0)


def test_modulo_directory_covers_all_nodes():
    directory = ModuloDirectory(7)
    sites = {directory.site(f"key{i}") for i in range(500)}
    assert sites == set(range(7))
    with pytest.raises(ValueError):
        ModuloDirectory(0)
