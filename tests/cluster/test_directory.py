"""Unit tests for key placement directories."""

from collections import Counter

import pytest

from repro.cluster import (
    CallableDirectory,
    ConsistentHashDirectory,
    ExplicitDirectory,
    ModuloDirectory,
)


def test_consistent_hash_is_stable():
    directory = ConsistentHashDirectory(range(5))
    sites = [directory.site(f"key{i}") for i in range(100)]
    again = [ConsistentHashDirectory(range(5)).site(f"key{i}") for i in range(100)]
    assert sites == again


def test_consistent_hash_spreads_keys_roughly_evenly():
    directory = ConsistentHashDirectory(range(10), virtual_nodes=128)
    counts = Counter(directory.site(f"key{i}") for i in range(20000))
    assert set(counts) == set(range(10))
    share = [count / 20000 for count in counts.values()]
    assert min(share) > 0.04  # within ~2.5x of the 10% ideal
    assert max(share) < 0.25


def test_consistent_hash_minimal_movement_on_node_add():
    before = ConsistentHashDirectory(range(5), virtual_nodes=128)
    after = ConsistentHashDirectory(range(6), virtual_nodes=128)
    keys = [f"key{i}" for i in range(5000)]
    moved = sum(1 for k in keys if before.site(k) != after.site(k))
    # Adding 1 of 6 nodes should move roughly 1/6 of keys, not reshuffle all.
    assert moved / len(keys) < 0.35


def test_consistent_hash_validates_arguments():
    with pytest.raises(ValueError):
        ConsistentHashDirectory([])
    with pytest.raises(ValueError):
        ConsistentHashDirectory([0], virtual_nodes=0)


def test_explicit_directory_and_fallback():
    fallback = ModuloDirectory(4)
    directory = ExplicitDirectory({"x": 2}, fallback=fallback)
    assert directory.site("x") == 2
    assert directory.site("other") == fallback.site("other")


def test_explicit_directory_without_fallback_raises():
    directory = ExplicitDirectory({"x": 0})
    with pytest.raises(KeyError):
        directory.site("unknown")


def test_callable_directory():
    directory = CallableDirectory(lambda key: len(str(key)) % 3)
    assert directory.site("ab") == 2
    assert directory.is_local("ab", 2)
    assert not directory.is_local("ab", 0)


def test_modulo_directory_covers_all_nodes():
    directory = ModuloDirectory(7)
    sites = {directory.site(f"key{i}") for i in range(500)}
    assert sites == set(range(7))
    with pytest.raises(ValueError):
        ModuloDirectory(0)


# ----------------------------------------------------------------------
# Incremental reconfiguration (elastic membership)
# ----------------------------------------------------------------------
KEYS = [f"key{i}" for i in range(2000)]


def placements(directory):
    return [directory.site(k) for k in KEYS]


def test_incremental_add_matches_fresh_build():
    directory = ConsistentHashDirectory(range(4))
    directory.add_node(4)
    assert placements(directory) == placements(ConsistentHashDirectory(range(5)))


def test_incremental_remove_matches_fresh_build():
    directory = ConsistentHashDirectory(range(5))
    directory.remove_node(2)
    assert placements(directory) == placements(
        ConsistentHashDirectory([0, 1, 3, 4])
    )


def test_incremental_add_remove_round_trips():
    directory = ConsistentHashDirectory(range(4))
    before = placements(directory)
    directory.add_node(4)
    directory.remove_node(4)
    assert placements(directory) == before


def test_incremental_ops_only_move_keys_for_the_changed_node():
    directory = ConsistentHashDirectory(range(4))
    before = placements(directory)
    directory.add_node(4)
    after = placements(directory)
    # Every key that changed owner moved *to* the new node; the rest of
    # the ring is untouched (the consistent-hash minimal-movement pledge).
    assert all(b == a or a == 4 for b, a in zip(before, after))
    directory.remove_node(4)
    restored = placements(directory)
    assert all(a == 4 or r == a for a, r in zip(after, restored))


def test_incremental_ops_validate_arguments():
    directory = ConsistentHashDirectory(range(3))
    with pytest.raises(ValueError):
        directory.add_node(1)  # already on the ring
    with pytest.raises(ValueError):
        directory.remove_node(7)  # not on the ring
    solo = ConsistentHashDirectory([0])
    with pytest.raises(ValueError):
        solo.remove_node(0)  # never drop the last owner


def test_with_nodes_previews_without_mutating():
    directory = ConsistentHashDirectory(range(4))
    before = placements(directory)
    preview = directory.with_nodes([0, 1, 2, 3, 4])
    assert placements(preview) == placements(ConsistentHashDirectory(range(5)))
    assert placements(directory) == before  # the original is untouched
